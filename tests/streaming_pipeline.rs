//! Integration tests for the streaming ingestion architecture:
//!
//! 1. `ec pipeline` on a generated ~100k-row flat CSV produces output files
//!    **bit-identical** to running `ec resolve` followed by `ec consolidate`
//!    through an intermediate clustered CSV;
//! 2. the streaming flat-CSV reader never materializes its input: a metering
//!    wrapper shows the bytes buffered ahead of the consumed records stay
//!    below a fixed cap that does not grow with the row count.

mod common;

use ec_cli::memio::MemFiles;
use ec_cli::{parse, run, CliError, CommandOutput};
use entity_consolidation::data::{FlatCsvReader, RecordStream};
use std::io::Read;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Deterministic flat-record workload.
//
// Rows come in clusters of three: most clusters repeat one exact record (they
// exercise resolution plumbing only), every `VARIANT_EVERY`-th cluster holds
// three spelling variants of one street name (they exercise transformation
// learning). Each cluster gets two independent pseudo-random tags so
// sorted-neighborhood blocking does not chain unrelated clusters together.
// The variant-cluster rate is deliberately sparse: pivot-path grouping over
// one structure partition is quadratic in the candidate count, and this suite
// measures streaming bit-identity, not grouping throughput.
// ---------------------------------------------------------------------------

/// One cluster in this many holds spelling variants instead of exact
/// duplicates.
const VARIANT_EVERY: u64 = 5000;

/// splitmix64, hex-encoded: a cheap deterministic tag generator.
fn tag(x: u64) -> String {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    format!("{:08x}", (z ^ (z >> 31)) as u32)
}

/// The CSV line (with trailing newline) of flat record `i`.
fn row_line(i: usize) -> String {
    let base = (i / 3) as u64;
    let which = i % 3;
    let t1 = tag(base * 2 + 1);
    let t2 = tag(base * 2 + 2);
    let name = if base % VARIANT_EVERY == 0 {
        match which {
            0 => format!("{t1} Street"),
            1 => format!("{t1} St"),
            _ => format!("{t1} Str"),
        }
    } else {
        format!("{t1} Entity")
    };
    format!("{which},{name},{t2} Town\n")
}

const HEADER: &str = "source,Name,City\n";

fn flat_csv(rows: usize) -> String {
    let mut out = String::with_capacity(rows * 32 + HEADER.len());
    out.push_str(HEADER);
    for i in 0..rows {
        out.push_str(&row_line(i));
    }
    out
}

/// Drives `parse` + `run` with an in-memory filesystem, returning the
/// command output plus the namespace holding any streamed output files.
fn run_cli(argv: &[&str], inputs: &[(&str, &str)]) -> Result<(CommandOutput, MemFiles), CliError> {
    let args: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let parsed = parse(&args)?;
    let fs = MemFiles::new();
    for (path, text) in inputs {
        fs.insert(path, text);
    }
    let mut stdin = std::io::Cursor::new(Vec::new());
    let mut prompts = Vec::new();
    let output = run(
        &parsed,
        &fs.input_opener(),
        &fs.output_opener(),
        &mut stdin,
        &mut prompts,
    )?;
    Ok((output, fs))
}

#[test]
fn pipeline_is_bit_identical_to_two_pass_on_a_100k_row_flat_csv() {
    let rows = common::scaled(100_000);
    let flat = flat_csv(rows);

    // Pass 1: resolve to an intermediate clustered CSV.
    let (_, resolve_fs) = run_cli(
        &[
            "resolve",
            "--input",
            "flat.csv",
            "--threshold",
            "0.95",
            "--output",
            "clustered.csv",
        ],
        &[("flat.csv", &flat)],
    )
    .expect("resolve succeeds");
    let clustered = resolve_fs.get("clustered.csv").expect("clustered written");

    // Pass 2: consolidate the intermediate file.
    let (_, two_pass_fs) = run_cli(
        &[
            "consolidate",
            "--input",
            "clustered.csv",
            "--budget",
            "20",
            "--mode",
            "approve-all",
            "--output",
            "std.csv",
            "--golden",
            "golden.csv",
        ],
        &[("clustered.csv", &clustered)],
    )
    .expect("consolidate succeeds");

    // Fused: same flags, no intermediate file.
    let (fused, fused_fs) = run_cli(
        &[
            "pipeline",
            "--input",
            "flat.csv",
            "--threshold",
            "0.95",
            "--budget",
            "20",
            "--mode",
            "approve-all",
            "--output",
            "std.csv",
            "--golden",
            "golden.csv",
        ],
        &[("flat.csv", &flat)],
    )
    .expect("pipeline succeeds");

    for file in ["std.csv", "golden.csv"] {
        assert_eq!(
            fused_fs.get(file),
            two_pass_fs.get(file),
            "fused {file} must be bit-identical to the two-pass flow"
        );
    }

    // The workload actually exercised both stages: triplet clusters merged,
    // and the street-variant clusters produced approved transformation work.
    let clusters = clustered
        .lines()
        .skip(1)
        .map(|l| l.split(',').next().unwrap().to_string())
        .collect::<std::collections::HashSet<_>>()
        .len();
    assert!(
        clusters <= rows / 2,
        "resolution must merge the record triplets: {clusters} clusters from {rows} rows"
    );
    assert!(
        fused.stdout.contains("golden records"),
        "pipeline printed the consolidation summary"
    );
    let std_csv = fused_fs.get("std.csv").unwrap();
    assert!(
        std_csv.contains(" Street") || std_csv.contains(" St"),
        "the street-variant families survived into the standardized output"
    );
}

// ---------------------------------------------------------------------------
// Bounded-memory proof.
// ---------------------------------------------------------------------------

/// Generates the flat CSV on the fly (so the test itself never holds the
/// whole document either) while counting every byte handed downstream.
struct MeteredRowSource {
    rows: usize,
    next_row: usize,
    pending: Vec<u8>,
    offset: usize,
    delivered: Arc<AtomicUsize>,
}

impl MeteredRowSource {
    fn new(rows: usize, delivered: Arc<AtomicUsize>) -> Self {
        MeteredRowSource {
            rows,
            next_row: 0,
            pending: HEADER.as_bytes().to_vec(),
            offset: 0,
            delivered,
        }
    }
}

impl Read for MeteredRowSource {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.offset == self.pending.len() {
            if self.next_row == self.rows {
                return Ok(0);
            }
            self.pending = row_line(self.next_row).into_bytes();
            self.offset = 0;
            self.next_row += 1;
        }
        let n = buf.len().min(self.pending.len() - self.offset);
        buf[..n].copy_from_slice(&self.pending[self.offset..self.offset + n]);
        self.offset += n;
        self.delivered.fetch_add(n, Ordering::Relaxed);
        Ok(n)
    }
}

/// The reader's lookahead — bytes pulled from the source beyond the records
/// already handed to the caller — must stay under a fixed cap, independent of
/// the total row count. A whole-document reader would fail immediately: it
/// pulls all N rows before yielding the first record.
const LOOKAHEAD_CAP: usize = 64 * 1024;

fn max_lookahead(rows: usize) -> usize {
    let delivered = Arc::new(AtomicUsize::new(0));
    let source = MeteredRowSource::new(rows, Arc::clone(&delivered));
    let mut stream = FlatCsvReader::new(source).expect("header parses");
    let mut consumed = HEADER.len();
    let mut worst = delivered.load(Ordering::Relaxed) - consumed;
    let mut count = 0usize;
    while let Some(record) = stream.next_record() {
        let record = record.expect("rows parse");
        assert_eq!(record.fields.len(), 2);
        consumed += row_line(count).len();
        count += 1;
        let lookahead = delivered.load(Ordering::Relaxed).saturating_sub(consumed);
        worst = worst.max(lookahead);
    }
    assert_eq!(count, rows, "every row was streamed");
    worst
}

#[test]
fn streaming_reader_never_materializes_the_whole_input() {
    let small = common::scaled(10_000);
    let large = common::scaled(100_000);
    let worst_small = max_lookahead(small);
    let worst_large = max_lookahead(large);
    assert!(
        worst_small < LOOKAHEAD_CAP,
        "lookahead {worst_small} bytes at {small} rows exceeds the {LOOKAHEAD_CAP}-byte cap"
    );
    assert!(
        worst_large < LOOKAHEAD_CAP,
        "lookahead {worst_large} bytes at {large} rows exceeds the {LOOKAHEAD_CAP}-byte cap"
    );
    // The cap is independent of the input size: ten times the rows must not
    // buy even double the buffered bytes.
    assert!(
        worst_large < 2 * worst_small.max(8 * 1024),
        "lookahead grew with the row count: {worst_small} -> {worst_large}"
    );
}
