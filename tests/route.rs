//! Integration tests for `ec serve --route`, the scale-out shard router:
//!
//! 1. `/pipeline` and `/apply` responses through a router over two backends
//!    are **byte-identical** to a single-node `ec serve` — which the serve
//!    suite already pins to the `ec pipeline` CLI's files — so the whole
//!    chain `router ≡ single node ≡ CLI` holds for the same input and flags;
//! 2. a pipeline run that learns replicates the library to *every* backend,
//!    so `/apply` answers identically no matter which backend a column
//!    shards to;
//! 3. stopping a backend re-routes around it (fail open) without changing a
//!    single response byte.
//!
//! Workload sizes respect `EC_TEST_SCALE` like every root suite.

mod common;

use common::scaled;
use ec_cli::memio::MemFiles;
use ec_cli::{parse, run};
use entity_consolidation::serve::http;
use entity_consolidation::serve::{
    Router, RouterConfig, RouterHandle, ServeConfig, Server, ServerHandle,
};
use std::time::Duration;

/// Runs one `ec` subcommand in-process against an in-memory namespace.
fn run_cli(argv: &[&str], inputs: &[(&str, &str)]) -> (String, MemFiles) {
    let args: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let parsed = parse(&args).expect("argv parses");
    let fs = MemFiles::new();
    for (path, text) in inputs {
        fs.insert(path, text);
    }
    let mut stdin = std::io::Cursor::new(Vec::new());
    let mut prompts = Vec::new();
    let output = run(
        &parsed,
        &fs.input_opener(),
        &fs.output_opener(),
        &mut stdin,
        &mut prompts,
    )
    .expect("command succeeds");
    (output.stdout, fs)
}

/// A generated flat-record workload with transformation families.
fn flat_workload() -> String {
    let clusters = scaled(14).to_string();
    let (stdout, _) = run_cli(
        &[
            "generate",
            "--dataset",
            "address",
            "--clusters",
            &clusters,
            "--seed",
            "23",
            "--flat",
        ],
        &[],
    );
    stdout
}

const PIPELINE_FLAGS: &str = "threshold=0.9&budget=12";

fn start_server() -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (handle, join)
}

fn start_router(backends: Vec<String>) -> (RouterHandle, std::thread::JoinHandle<()>) {
    let mut config = RouterConfig::new("127.0.0.1:0", backends);
    // Fast probes so the failover test converges quickly.
    config.probe_interval = Duration::from_millis(100);
    let router = Router::bind(config).expect("bind an ephemeral router port");
    let handle = router.handle();
    let join = std::thread::spawn(move || router.run().expect("router run"));
    (handle, join)
}

#[test]
fn routed_responses_are_byte_identical_to_a_single_node() {
    let flat = flat_workload();

    // Reference: one single-node server learning and applying alone.
    let (single, single_join) = start_server();
    // Topology under test: a router in front of two backends.
    let (backend_a, join_a) = start_server();
    let (backend_b, join_b) = start_server();
    let (router, router_join) = start_router(vec![
        backend_a.addr().to_string(),
        backend_b.addr().to_string(),
    ]);

    let health = http::request(router.addr(), "GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200, "{:?}", health.body);
    assert_eq!(health.header("x-ec-router-backends"), Some("2"));
    assert_eq!(health.header("x-ec-router-healthy"), Some("2"));

    // Plain pipeline (standardized and golden outputs): router ≡ single.
    for output in ["", "&output=golden"] {
        let path = format!("/pipeline?{PIPELINE_FLAGS}{output}");
        let direct = http::request(single.addr(), "POST", &path, flat.as_bytes()).unwrap();
        let routed = http::request(router.addr(), "POST", &path, flat.as_bytes()).unwrap();
        assert_eq!(routed.status, 200, "{:?}", routed.body);
        assert_eq!(
            routed.body, direct.body,
            "routed pipeline bytes (output={output:?}) diverge from single-node"
        );
        assert_eq!(routed.trailers, direct.trailers, "trailers diverge");
    }

    // A learning pass through the router replicates the library everywhere.
    let learn_path = format!("/pipeline?{PIPELINE_FLAGS}&mode=approve-all");
    let direct = http::request(single.addr(), "POST", &learn_path, flat.as_bytes()).unwrap();
    let routed = http::request(router.addr(), "POST", &learn_path, flat.as_bytes()).unwrap();
    assert_eq!(routed.status, 200);
    assert_eq!(routed.body, direct.body, "learning pipeline bytes diverge");
    let approved: usize = routed
        .header("x-ec-groups-approved")
        .unwrap()
        .parse()
        .unwrap();
    assert!(approved > 0, "the workload must approve some groups");
    // Snapshot version counters legitimately differ (one backend learned
    // entry by entry, the other merged once), so compare the entries.
    let entries = |body: &[u8]| -> String {
        String::from_utf8(body.to_vec())
            .unwrap()
            .lines()
            .filter(|line| !line.starts_with("version "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let snapshot_a = http::request(backend_a.addr(), "GET", "/library", b"").unwrap();
    let snapshot_b = http::request(backend_b.addr(), "GET", "/library", b"").unwrap();
    assert_eq!(
        entries(&snapshot_a.body),
        entries(&snapshot_b.body),
        "replication must leave both backends with the same library entries"
    );
    assert!(snapshot_a.body.len() > 30, "the library learned entries");

    // /apply shards by column across both backends, and the zip-merged
    // response still matches the single node byte for byte.
    let direct = http::request(single.addr(), "POST", "/apply", flat.as_bytes()).unwrap();
    let routed = http::request(router.addr(), "POST", "/apply", flat.as_bytes()).unwrap();
    assert_eq!(routed.status, 200, "{:?}", routed.body);
    assert_eq!(routed.body, direct.body, "routed apply bytes diverge");
    assert_eq!(routed.trailers, direct.trailers, "apply trailers diverge");

    // Fail open: stop one backend, wait for the probes to notice, and the
    // router keeps answering — with the same bytes, because the surviving
    // backend holds the replicated library.
    backend_b.stop();
    join_b.join().expect("backend thread");
    for i in 0..600 {
        if router.healthy_backends() == 1 {
            eprintln!("probe saw the stop after ~{}ms", i * 20);
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(router.healthy_backends(), 1, "probe never saw the stop");
    let rerouted = http::request(router.addr(), "POST", "/apply", flat.as_bytes()).unwrap();
    assert_eq!(rerouted.status, 200, "{:?}", rerouted.body);
    assert_eq!(
        rerouted.body, direct.body,
        "failover must not change a response byte"
    );
    let path = format!("/pipeline?{PIPELINE_FLAGS}");
    let single_pipeline = http::request(single.addr(), "POST", &path, flat.as_bytes()).unwrap();
    let rerouted_pipeline = http::request(router.addr(), "POST", &path, flat.as_bytes()).unwrap();
    assert_eq!(rerouted_pipeline.status, 200);
    assert_eq!(rerouted_pipeline.body, single_pipeline.body);

    assert!(router.requests() >= 7);
    router.stop();
    router_join.join().expect("router thread");
    for (handle, join) in [(single, single_join), (backend_a, join_a)] {
        handle.stop();
        join.join().expect("server thread");
    }
}

#[test]
fn shard_key_pins_a_pipeline_and_router_rejects_what_it_cannot_serve() {
    let (backend, join) = start_server();
    let (router, router_join) = start_router(vec![backend.addr().to_string()]);

    // An explicit shard-key overrides the derived blocking key; the backend
    // ignores the extra parameter, so bytes are unaffected.
    let body = "source,Name\n0,\"Lee, Mary\"\n1,Mary Lee\n2,\"Lee, Mary\"\n";
    let path = format!("/pipeline?{PIPELINE_FLAGS}&shard-key=tenant-7");
    let pinned = http::request(router.addr(), "POST", &path, body.as_bytes()).unwrap();
    assert_eq!(pinned.status, 200, "{:?}", pinned.body);
    let direct = http::request(
        backend.addr(),
        "POST",
        &format!("/pipeline?{PIPELINE_FLAGS}"),
        body.as_bytes(),
    )
    .unwrap();
    assert_eq!(pinned.body, direct.body);

    // Backend-side rejections come back through the router unchanged in
    // meaning (400, not a router-made 5xx).
    let bad = http::request(
        router.addr(),
        "POST",
        "/pipeline?threshold=7",
        body.as_bytes(),
    )
    .unwrap();
    assert_eq!(bad.status, 400);
    // Unknown endpoints 404 at the router itself.
    let missing = http::request(router.addr(), "GET", "/nope", b"").unwrap();
    assert_eq!(missing.status, 404);

    router.stop();
    router_join.join().expect("router thread");
    backend.stop();
    join.join().expect("server thread");
}
