//! Workspace-level integration tests: the whole pipeline, spanning every crate.
//!
//! Workload sizes respect the `EC_TEST_SCALE` multiplier (see
//! [`common::scaled`]): the defaults keep tier-1 fast, larger factors restore
//! soak-sized runs.

mod common;

use common::scaled;
use entity_consolidation::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's running example (Table 1 → Table 2): after learning and
/// approving groups, every cluster's Name values agree.
#[test]
fn table1_to_table2_standardization() {
    let clusters: Vec<Vec<String>> = vec![
        vec!["Mary Lee".into(), "M. Lee".into(), "Lee, Mary".into()],
        vec![
            "Smith, James".into(),
            "James Smith".into(),
            "J. Smith".into(),
        ],
    ];
    let candidates = generate_candidates(&clusters, &CandidateConfig::full_value_only());
    assert_eq!(candidates.len(), 12, "Section 3: 12 candidate replacements");

    let mut grouper = StructuredGrouper::new(&candidates.replacements, GroupingConfig::default());
    let groups = grouper.all_groups();
    assert_eq!(groups.iter().map(|g| g.size()).sum::<usize>(), 12);

    // Approve every group whose right-hand sides are in canonical "First Last"
    // form, as the paper's expert would.
    let mut engine = ReplacementEngine::new(clusters, &CandidateConfig::full_value_only());
    for group in &groups {
        let canonical = group
            .members()
            .iter()
            .all(|r| !r.rhs().contains(',') && !r.rhs().contains('.'));
        if canonical {
            engine.apply_group(group.members(), Direction::Forward);
        }
    }
    let values = engine.into_values();
    assert!(values[0].iter().all(|v| v == "Mary Lee"), "{values:?}");
    assert!(values[1].iter().all(|v| v == "James Smith"), "{values:?}");
}

/// Every learned group's program really maps each member's lhs to its rhs —
/// the core soundness invariant across DSL, graphs, index and grouping.
#[test]
fn learned_programs_are_sound_on_generated_data() {
    let dataset = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: scaled(20),
        seed: 13,
        num_sources: 4,
    });
    let candidates = generate_candidates(&dataset.column_values(0), &CandidateConfig::default());
    let mut grouper = StructuredGrouper::new(&candidates.replacements, GroupingConfig::default());
    let groups = grouper.top_groups(25);
    assert!(!groups.is_empty());
    for group in &groups {
        if let Some(program) = group.program() {
            for member in group.members() {
                let ctx = StrCtx::new(member.lhs());
                assert!(
                    program.consistent_with(&ctx, member.rhs()),
                    "group program {program} is inconsistent with member {member}"
                );
            }
        }
    }
    // Groups come out largest-first.
    for w in groups.windows(2) {
        assert!(w[0].size() >= w[1].size());
    }
}

/// The full pipeline on all three paper datasets: precision stays high, recall
/// becomes non-trivial, and majority-consensus golden records improve.
#[test]
fn full_pipeline_improves_all_three_datasets() {
    for kind in PaperDataset::ALL {
        let config = GeneratorConfig {
            num_clusters: match kind {
                PaperDataset::AuthorList => scaled(15),
                PaperDataset::Address => scaled(40),
                PaperDataset::JournalTitle => scaled(80),
            },
            seed: 31,
            num_sources: 5,
        };
        let mut dataset = kind.generate(&config);
        let truth: Vec<String> = dataset
            .clusters
            .iter()
            .map(|c| c.golden[0].clone())
            .collect();
        let mut rng = StdRng::seed_from_u64(7);
        let sample = dataset.sample_labeled_pairs(0, 500, &mut rng);

        let pipeline = Pipeline::new(ConsolidationConfig {
            budget: 50,
            ..Default::default()
        });
        let before_goldens =
            pipeline.discover_golden_records(&dataset, TruthMethod::MajorityConsensus);
        let before_mc = golden_record_precision(
            &before_goldens
                .iter()
                .map(|g| g[0].clone())
                .collect::<Vec<_>>(),
            &truth,
        );

        let mut oracle = SimulatedOracle::for_column(&dataset, 0, 17);
        let report = pipeline.standardize_column(&mut dataset, 0, &mut oracle);
        assert!(
            report.groups_approved > 0,
            "{}: nothing approved",
            kind.name()
        );

        let counts = evaluate_standardization(&sample, &dataset.column_values(0));
        assert!(
            counts.precision() > 0.9,
            "{}: precision too low: {counts:?}",
            kind.name()
        );
        assert!(
            counts.recall() > 0.2,
            "{}: recall too low: {counts:?}",
            kind.name()
        );

        let after_goldens =
            pipeline.discover_golden_records(&dataset, TruthMethod::MajorityConsensus);
        let after_mc = golden_record_precision(
            &after_goldens
                .iter()
                .map(|g| g[0].clone())
                .collect::<Vec<_>>(),
            &truth,
        );
        assert!(
            after_mc >= before_mc,
            "{}: MC precision regressed: {before_mc} -> {after_mc}",
            kind.name()
        );
    }
}

/// The affix ablation (Figure 10): with affix labels enabled, recall at a fixed
/// budget is at least as high as without them.
#[test]
fn affix_functions_do_not_hurt_recall() {
    let dataset = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: scaled(30),
        seed: 23,
        num_sources: 4,
    });
    let mut rng = StdRng::seed_from_u64(5);
    let sample = dataset.sample_labeled_pairs(0, 400, &mut rng);
    let budget = 40;

    let mut recalls = Vec::new();
    for grouping in [GroupingConfig::default(), GroupingConfig::without_affix()] {
        let mut ds = dataset.clone();
        let pipeline = Pipeline::new(ConsolidationConfig {
            budget,
            grouping,
            ..Default::default()
        });
        let mut oracle = SimulatedOracle::for_column(&ds, 0, 3);
        pipeline.standardize_column(&mut ds, 0, &mut oracle);
        recalls.push(evaluate_standardization(&sample, &ds.column_values(0)).recall());
    }
    assert!(
        recalls[0] >= recalls[1],
        "affix recall {} must be >= no-affix recall {}",
        recalls[0],
        recalls[1]
    );
}

/// Incremental and one-shot grouping agree on the group-size profile for a
/// realistic workload (Theorem 6.4 at system level).
#[test]
fn incremental_and_one_shot_agree_on_generated_data() {
    let dataset = PaperDataset::JournalTitle.generate(&GeneratorConfig {
        num_clusters: scaled(60),
        seed: 37,
        num_sources: 4,
    });
    let candidates = generate_candidates(&dataset.column_values(0), &CandidateConfig::default());
    let incremental: usize =
        StructuredGrouper::new(&candidates.replacements, GroupingConfig::default())
            .all_groups()
            .iter()
            .map(|g| g.size())
            .sum();
    let one_shot: usize =
        StructuredGrouper::one_shot_all(&candidates.replacements, GroupingConfig::default())
            .iter()
            .map(|g| g.size())
            .sum();
    assert_eq!(
        incremental, one_shot,
        "both cover every replacement exactly once"
    );

    let incr_first = StructuredGrouper::new(&candidates.replacements, GroupingConfig::default())
        .next_group()
        .unwrap()
        .size();
    let oneshot_first =
        StructuredGrouper::one_shot_all(&candidates.replacements, GroupingConfig::default())[0]
            .size();
    assert_eq!(
        incr_first, oneshot_first,
        "the largest group has the same size either way"
    );
}

/// The simulated oracle is robust to small error rates: a noisy oracle still
/// yields usable precision (the paper's "robust to small numbers of errors").
#[test]
fn pipeline_is_robust_to_oracle_noise() {
    let dataset = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: scaled(25),
        seed: 41,
        num_sources: 4,
    });
    let mut rng = StdRng::seed_from_u64(11);
    let sample = dataset.sample_labeled_pairs(0, 300, &mut rng);
    let mut ds = dataset.clone();
    let pipeline = Pipeline::new(ConsolidationConfig {
        budget: 40,
        ..Default::default()
    });
    let mut noisy = SimulatedOracle::for_column(&ds, 0, 19).with_error_rate(0.05);
    pipeline.standardize_column(&mut ds, 0, &mut noisy);
    let counts = evaluate_standardization(&sample, &ds.column_values(0));
    assert!(
        counts.precision() > 0.8,
        "noisy oracle precision too low: {counts:?}"
    );
}
