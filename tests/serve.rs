//! Integration tests for `ec serve`, the online consolidation service:
//!
//! 1. `POST /pipeline` responses are **byte-identical** to the `ec pipeline`
//!    CLI's `--output` / `--golden` files for the same input and flags, under
//!    *concurrent* std-`TcpStream` clients, with the serve `--threads` knob
//!    at 1 and at N — the shard width never leaks into the bytes;
//! 2. the apply path standardizes new records through a library learned by a
//!    pipeline run (`learn once, apply forever`), reporting unmatched values
//!    through chunked trailers.
//!
//! Workload sizes respect `EC_TEST_SCALE` like every root suite.

mod common;

use common::scaled;
use ec_cli::memio::MemFiles;
use ec_cli::{parse, run};
use entity_consolidation::serve::http;
use entity_consolidation::serve::{ServeConfig, Server, ServerHandle};
use std::net::SocketAddr;

/// Runs one `ec` subcommand in-process against an in-memory namespace.
fn run_cli(argv: &[&str], inputs: &[(&str, &str)]) -> (String, MemFiles) {
    let args: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let parsed = parse(&args).expect("argv parses");
    let fs = MemFiles::new();
    for (path, text) in inputs {
        fs.insert(path, text);
    }
    let mut stdin = std::io::Cursor::new(Vec::new());
    let mut prompts = Vec::new();
    let output = run(
        &parsed,
        &fs.input_opener(),
        &fs.output_opener(),
        &mut stdin,
        &mut prompts,
    )
    .expect("command succeeds");
    (output.stdout, fs)
}

/// A generated flat-record workload with transformation families.
fn flat_workload() -> String {
    let clusters = scaled(14).to_string();
    let (stdout, _) = run_cli(
        &[
            "generate",
            "--dataset",
            "address",
            "--clusters",
            &clusters,
            "--seed",
            "23",
            "--flat",
        ],
        &[],
    );
    stdout
}

fn start_server(threads: usize) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (handle, join)
}

const PIPELINE_FLAGS: &str = "threshold=0.9&budget=12";

fn expected_outputs(flat: &str) -> (String, String) {
    let (_, fs) = run_cli(
        &[
            "pipeline",
            "--input",
            "flat.csv",
            "--threshold",
            "0.9",
            "--budget",
            "12",
            "--output",
            "std.csv",
            "--golden",
            "golden.csv",
        ],
        &[("flat.csv", flat)],
    );
    (fs.get("std.csv").unwrap(), fs.get("golden.csv").unwrap())
}

#[test]
fn concurrent_pipeline_responses_match_the_cli_at_one_and_many_threads() {
    let flat = flat_workload();
    let (expected_std, expected_golden) = expected_outputs(&flat);
    assert!(expected_std.starts_with("cluster,source,"));
    assert!(expected_golden.starts_with("cluster,"));

    // One server sharding sequentially, one sharding wide; both run on the
    // process-shared worker pool, and neither the shard width nor client
    // concurrency may leak into the response bytes.
    let (narrow, narrow_join) = start_server(1);
    let (wide, wide_join) = start_server(4);

    let mut clients = Vec::new();
    for i in 0..6usize {
        let addr: SocketAddr = if i % 2 == 0 {
            narrow.addr()
        } else {
            wide.addr()
        };
        let golden = i % 3 == 0;
        let flat = flat.clone();
        let expected = if golden {
            expected_golden.clone()
        } else {
            expected_std.clone()
        };
        clients.push(std::thread::spawn(move || {
            let path = if golden {
                format!("/pipeline?{PIPELINE_FLAGS}&output=golden")
            } else {
                format!("/pipeline?{PIPELINE_FLAGS}")
            };
            let response =
                http::request(addr, "POST", &path, flat.as_bytes()).expect("request succeeds");
            assert_eq!(response.status, 200, "client {i}");
            assert!(
                response.header("x-ec-clusters").is_some(),
                "client {i} sees the cluster-count header"
            );
            let body = String::from_utf8(response.body).expect("CSV body is UTF-8");
            assert_eq!(
                body, expected,
                "client {i} (golden={golden}) must get bytes identical to the CLI"
            );
        }));
    }
    for client in clients {
        client.join().expect("client thread");
    }

    for (handle, join) in [(narrow, narrow_join), (wide, wide_join)] {
        assert!(handle.requests() >= 3, "each server served clients");
        handle.stop();
        join.join().expect("server thread");
    }
}

#[test]
fn pipeline_learns_a_library_that_apply_reuses_on_new_records() {
    let flat = flat_workload();
    let (handle, join) = start_server(2);

    // Learning pass: a pipeline run populates the server's library. (The
    // resolver sets truth = observed on flat input, so the simulated expert
    // sees only conflicts; approve-all is the mode that actually learns.)
    let before = http::request(handle.addr(), "GET", "/library", b"").unwrap();
    let response = http::request(
        handle.addr(),
        "POST",
        &format!("/pipeline?{PIPELINE_FLAGS}&mode=approve-all"),
        flat.as_bytes(),
    )
    .unwrap();
    assert_eq!(response.status, 200);
    let approved: usize = response
        .header("x-ec-groups-approved")
        .unwrap()
        .parse()
        .unwrap();
    assert!(approved > 0, "the workload must approve some groups");
    let after = http::request(handle.addr(), "GET", "/library", b"").unwrap();
    assert!(
        after.body.len() > before.body.len(),
        "the library snapshot grew with the learned programs"
    );

    // Apply pass: the same records standardize through the library with no
    // re-learning; every record comes back and the trailers report totals.
    let applied = http::request(handle.addr(), "POST", "/apply", flat.as_bytes()).unwrap();
    assert_eq!(applied.status, 200);
    let body = String::from_utf8(applied.body.clone()).unwrap();
    assert_eq!(
        body.lines().count(),
        flat.lines().count(),
        "apply is record-in, record-out"
    );
    assert!(body.starts_with("source,"));
    let records: usize = applied.trailer("x-ec-records").unwrap().parse().unwrap();
    assert_eq!(records, flat.lines().count() - 1);
    let rewritten: usize = applied
        .trailer("x-ec-cells-rewritten")
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        rewritten > 0,
        "the learned programs standardize the variant records"
    );

    // /healthz reflects the library version moving.
    let health = http::request(handle.addr(), "GET", "/healthz", b"").unwrap();
    assert_eq!(health.body, b"ok\n");
    let version: u64 = health
        .header("x-ec-library-version")
        .unwrap()
        .parse()
        .unwrap();
    assert!(version > 0);

    handle.stop();
    join.join().expect("server thread");
}
