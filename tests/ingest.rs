//! Differential suite for the library-first incremental ingest path: after
//! ANY sequence of delta batches, the [`DeltaPipeline`]'s standardized
//! dataset and golden records must be **byte-identical** to a one-shot
//! pipeline run over the union of all inputs — at any thread count.
//!
//! The batch boundaries are drawn at random (seeded) so every run exercises
//! different split shapes: many tiny batches, a giant head batch, single
//! trailing records. Workload sizes respect `EC_TEST_SCALE` like every root
//! suite.

mod common;

use common::scaled;
use entity_consolidation::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Flattens a generated clustered dataset into raw records, shuffled with
/// the given rng so cluster members arrive interleaved across batches.
fn raw_records(dataset: &Dataset, rng: &mut StdRng) -> Vec<RawRecord> {
    let mut records: Vec<RawRecord> = dataset
        .clusters
        .iter()
        .flat_map(|cluster| cluster.rows.iter())
        .map(|row| {
            RawRecord::new(
                row.source,
                row.cells
                    .iter()
                    .map(|c| c.observed.clone())
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    // Fisher–Yates with the seeded rng: deterministic but interleaved.
    for i in (1..records.len()).rev() {
        let j = rng.gen_range(0..=i);
        records.swap(i, j);
    }
    records
}

/// Draws random batch boundaries: each record has a chance to start a new
/// batch, so shapes range from singletons to large runs.
fn random_boundaries(len: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut boundaries = Vec::new();
    for i in 1..len {
        if rng.gen_range(0..4) == 0 {
            boundaries.push(i);
        }
    }
    boundaries
}

/// The one-shot pipeline over `records` — exactly what `ec pipeline` runs.
fn one_shot(
    records: &[RawRecord],
    threads: usize,
    mode: AutoMode,
) -> (Dataset, Vec<u8>, ProgramLibrary) {
    let resolver = Resolver::new(ResolverConfig::default());
    let mut stream = VecRecordStream::new(
        vec!["Address".to_string()],
        records
            .iter()
            .map(|r| FlatRecord {
                source: r.source,
                fields: r.fields.clone(),
            })
            .collect(),
    );
    let mut dataset = resolver.resolve_stream("ingest-diff", &mut stream).unwrap();
    let pipeline = Pipeline::new(ConsolidationConfig::default().with_threads(threads));
    let mut library = ProgramLibrary::new();
    let cols: Vec<usize> = (0..dataset.columns.len()).collect();
    standardize_columns(
        &pipeline,
        &mut dataset,
        &cols,
        mode,
        true,
        Some(&mut library),
    );
    let golden = pipeline.discover_golden_records(&dataset, TruthMethod::MajorityConsensus);
    let mut csv = Vec::new();
    write_golden_records_csv(&dataset.columns.clone(), &golden, &mut csv).unwrap();
    (dataset, csv, library)
}

/// Streams `records` through a [`DeltaPipeline`] split at `boundaries`,
/// returning the final standardized dataset and golden CSV.
fn delta_over(
    records: &[RawRecord],
    boundaries: &[usize],
    threads: usize,
    mode: AutoMode,
) -> (Dataset, Vec<u8>, usize) {
    let mut delta = DeltaPipeline::new(
        "ingest-diff",
        vec!["Address".to_string()],
        ResolverConfig::default(),
        ConsolidationConfig::default().with_threads(threads),
        mode,
        TruthMethod::MajorityConsensus,
    );
    let mut start = 0;
    for &end in boundaries.iter().chain(std::iter::once(&records.len())) {
        let report = delta.ingest_batch(records[start..end].to_vec());
        assert_eq!(report.batch_records, end - start);
        assert_eq!(report.total_records, end);
        start = end;
    }
    let mut csv = Vec::new();
    delta.write_golden_csv(&mut csv).unwrap();
    let library_len = delta.library().len();
    (
        delta
            .standardized()
            .expect("at least one batch ran")
            .clone(),
        csv,
        library_len,
    )
}

#[test]
fn random_batch_splits_replay_the_one_shot_pipeline_byte_for_byte() {
    let generated = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: scaled(10),
        seed: 4242,
        num_sources: 3,
    });
    let mut rng = StdRng::seed_from_u64(77);
    let records = raw_records(&generated, &mut rng);
    for threads in [1usize, 4] {
        let (expected, expected_csv, expected_library) =
            one_shot(&records, threads, AutoMode::ApproveAll);
        for round in 0..3 {
            let boundaries = random_boundaries(records.len(), &mut rng);
            let (standardized, csv, library_len) =
                delta_over(&records, &boundaries, threads, AutoMode::ApproveAll);
            assert_eq!(
                standardized,
                expected,
                "standardized dataset diverged (threads {threads}, round {round}, \
                 {} batches)",
                boundaries.len() + 1
            );
            assert_eq!(
                csv, expected_csv,
                "golden CSV diverged (threads {threads}, round {round})"
            );
            // The delta library accumulates programs approved in *every*
            // batch, including intermediate cluster states, so it is a
            // superset of the one-shot run's.
            assert!(
                library_len >= expected_library.len(),
                "delta library lost programs (threads {threads}, round {round}): \
                 {library_len} < {}",
                expected_library.len()
            );
        }
    }
}

#[test]
fn simulated_oracle_mode_is_also_replayed_exactly() {
    // Auto mode re-runs the simulated oracle every batch; verdicts depend on
    // live cluster contents, so this pins the subtler replay path.
    let generated = PaperDataset::AuthorList.generate(&GeneratorConfig {
        num_clusters: scaled(8),
        seed: 99,
        num_sources: 3,
    });
    let mut rng = StdRng::seed_from_u64(13);
    let records = raw_records(&generated, &mut rng);
    let (expected, expected_csv, _) = one_shot(&records, 1, AutoMode::Auto);
    for _ in 0..2 {
        let boundaries = random_boundaries(records.len(), &mut rng);
        let (standardized, csv, _) = delta_over(&records, &boundaries, 1, AutoMode::Auto);
        assert_eq!(standardized, expected);
        assert_eq!(csv, expected_csv);
    }
}

#[test]
fn reingesting_the_same_corpus_rides_the_fast_path() {
    let generated = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: scaled(6),
        seed: 7,
        num_sources: 3,
    });
    let mut rng = StdRng::seed_from_u64(5);
    let records = raw_records(&generated, &mut rng);
    let mut delta = DeltaPipeline::new(
        "ingest-diff",
        vec!["Address".to_string()],
        ResolverConfig::default(),
        ConsolidationConfig::default(),
        AutoMode::ApproveAll,
        TruthMethod::MajorityConsensus,
    );
    let first = delta.ingest_batch(records.clone());
    assert_eq!(first.library_hits, 0);
    assert_eq!(first.residue, records.len());
    let second = delta.ingest_batch(records.clone());
    assert_eq!(
        second.library_hits,
        records.len(),
        "every re-ingested record must ride the fast path"
    );
    assert_eq!(second.residue, 0);
    assert_eq!(
        second.replayed_columns, 1,
        "unchanged candidates must replay the cached group sequence"
    );
}
