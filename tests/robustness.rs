//! Robustness and failure-injection tests: noisy oracles, degenerate inputs,
//! unicode values, and pathological configurations must not panic and must
//! degrade gracefully.

mod common;

use common::scaled;
use entity_consolidation::data::{Cell, Cluster, Dataset, Row};
use entity_consolidation::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cell(observed: &str, truth: &str) -> Cell {
    Cell {
        observed: observed.to_string(),
        truth: truth.to_string(),
    }
}

fn dataset_with_clusters(clusters: Vec<Vec<(&str, &str)>>) -> Dataset {
    let mut d = Dataset::new("adhoc", vec!["v".to_string()]);
    for rows in clusters {
        let golden = rows.first().map(|(_, t)| t.to_string()).unwrap_or_default();
        d.clusters.push(Cluster {
            rows: rows
                .into_iter()
                .enumerate()
                .map(|(i, (o, t))| Row {
                    source: i,
                    cells: vec![cell(o, t)],
                })
                .collect(),
            golden: vec![golden],
        });
    }
    d
}

#[test]
fn empty_dataset_and_empty_clusters_do_not_panic() {
    let mut empty = Dataset::new("empty", vec!["v".to_string()]);
    let pipeline = Pipeline::default();
    let report = pipeline.golden_records(
        &mut empty,
        &mut ApproveAllOracle,
        TruthMethod::MajorityConsensus,
    );
    assert!(report.golden_records.is_empty());

    let mut degenerate = dataset_with_clusters(vec![vec![], vec![("only", "only")]]);
    let report = pipeline.golden_records(
        &mut degenerate,
        &mut ApproveAllOracle,
        TruthMethod::MajorityConsensus,
    );
    assert_eq!(report.golden_records.len(), 2);
    assert_eq!(report.golden_records[1][0].as_deref(), Some("only"));
}

#[test]
fn clusters_with_identical_values_generate_no_candidates() {
    let mut d = dataset_with_clusters(vec![
        vec![("same", "same"), ("same", "same"), ("same", "same")],
        vec![("also same", "also same"), ("also same", "also same")],
    ]);
    let pipeline = Pipeline::default();
    let report = pipeline.standardize_column(&mut d, 0, &mut ApproveAllOracle);
    assert_eq!(report.candidates, 0);
    assert_eq!(report.groups_reviewed, 0);
    assert_eq!(report.cells_updated, 0);
}

#[test]
fn unicode_values_are_handled() {
    let mut d = dataset_with_clusters(vec![
        vec![
            ("Müller, Jürgen", "Jürgen Müller"),
            ("Jürgen Müller", "Jürgen Müller"),
        ],
        vec![("東京 大学", "東京大学"), ("東京大学", "東京大学")],
        vec![("naïve café", "naïve café"), ("naive cafe", "naïve café")],
    ]);
    let pipeline = Pipeline::new(ConsolidationConfig {
        budget: 20,
        ..Default::default()
    });
    // Must not panic on multi-byte characters anywhere in the DSL/graph stack.
    let report = pipeline.standardize_column(&mut d, 0, &mut ApproveAllOracle);
    assert!(report.candidates > 0);
}

#[test]
fn zero_budget_changes_nothing() {
    let mut d = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: 10,
        seed: 2,
        num_sources: 3,
    });
    let before = d.clone();
    let pipeline = Pipeline::new(ConsolidationConfig {
        budget: 0,
        ..Default::default()
    });
    let report = pipeline.standardize_column(&mut d, 0, &mut ApproveAllOracle);
    assert_eq!(report.groups_reviewed, 0);
    assert_eq!(d, before);
}

#[test]
fn noisy_oracle_degrades_gracefully() {
    // The paper: "our method is robust to small numbers of errors". With a 10%
    // verdict-flip rate the precision must stay high and recall must stay well
    // above the do-nothing baseline.
    let dataset = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: scaled(25),
        seed: 8,
        num_sources: 4,
    });
    let mut rng = StdRng::seed_from_u64(4);
    let sample = dataset.sample_labeled_pairs(0, 400, &mut rng);
    let pipeline = Pipeline::new(ConsolidationConfig {
        budget: 40,
        ..Default::default()
    });

    let mut clean = dataset.clone();
    let mut clean_oracle = SimulatedOracle::for_column(&clean, 0, 5);
    pipeline.standardize_column(&mut clean, 0, &mut clean_oracle);
    let clean_counts = evaluate_standardization(&sample, &clean.column_values(0));

    let mut noisy = dataset.clone();
    let mut noisy_oracle = SimulatedOracle::for_column(&noisy, 0, 5).with_error_rate(0.1);
    pipeline.standardize_column(&mut noisy, 0, &mut noisy_oracle);
    let noisy_counts = evaluate_standardization(&sample, &noisy.column_values(0));

    assert!(
        noisy_counts.recall() >= clean_counts.recall() * 0.5,
        "10% oracle noise should not halve recall: clean {clean_counts:?}, noisy {noisy_counts:?}"
    );
    assert!(
        noisy_counts.precision() >= 0.8,
        "precision should stay high under noise: {noisy_counts:?}"
    );
}

#[test]
fn hostile_oracle_cannot_corrupt_more_than_it_approves() {
    // With full-value replacements, even an approve-everything oracle can only
    // rewrite cells to values that already exist in the same cluster
    // (Section 7.1), so the set of values per cluster never grows. (Token-level
    // replacements legitimately synthesize new renderings, so they are not part
    // of this closure property.)
    let dataset = PaperDataset::JournalTitle.generate(&GeneratorConfig {
        num_clusters: scaled(15),
        seed: 77,
        num_sources: 4,
    });
    let mut standardized = dataset.clone();
    let pipeline = Pipeline::new(ConsolidationConfig {
        budget: 30,
        candidates: CandidateConfig::full_value_only(),
        ..Default::default()
    });
    pipeline.standardize_column(&mut standardized, 0, &mut ApproveAllOracle);
    for (before, after) in dataset.clusters.iter().zip(&standardized.clusters) {
        let before_values: std::collections::HashSet<&str> = before
            .rows
            .iter()
            .map(|r| r.cells[0].observed.as_str())
            .collect();
        for row in &after.rows {
            assert!(
                before_values.contains(row.cells[0].observed.as_str()),
                "cell was rewritten to a value that never existed in its cluster: {}",
                row.cells[0].observed
            );
        }
    }
}

#[test]
fn approval_threshold_and_direction_are_respected() {
    // An oracle with threshold 1.0 only approves groups whose every member is
    // a variant pair; precision must then be essentially perfect.
    let dataset = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: scaled(20),
        seed: 55,
        num_sources: 4,
    });
    let mut rng = StdRng::seed_from_u64(6);
    let sample = dataset.sample_labeled_pairs(0, 300, &mut rng);
    let mut working = dataset.clone();
    let pipeline = Pipeline::new(ConsolidationConfig {
        budget: 40,
        ..Default::default()
    });
    let mut strict = SimulatedOracle::for_column(&working, 0, 9).with_approval_threshold(1.0);
    pipeline.standardize_column(&mut working, 0, &mut strict);
    let counts = evaluate_standardization(&sample, &working.column_values(0));
    assert!(counts.precision() > 0.97, "{counts:?}");
}

#[test]
fn single_record_clusters_are_inert() {
    let mut d = dataset_with_clusters(vec![
        vec![("lonely", "lonely")],
        vec![("also lonely", "also lonely")],
    ]);
    let pipeline = Pipeline::default();
    let report = pipeline.golden_records(
        &mut d,
        &mut ApproveAllOracle,
        TruthMethod::MajorityConsensus,
    );
    assert_eq!(report.columns[0].candidates, 0);
    assert_eq!(report.golden_records[0][0].as_deref(), Some("lonely"));
}
