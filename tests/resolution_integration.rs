//! Integration tests spanning entity resolution (ec-resolution) and the
//! consolidation pipeline: raw records in, golden records out.

mod common;

use common::scaled;
use entity_consolidation::prelude::*;
use entity_consolidation::resolution::{BlockingConfig, BlockingScheme, ColumnRule};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Flattens a generated (clustered) dataset into raw records, shuffles them,
/// and returns the records together with their ground-truth values.
fn flatten_and_shuffle(
    dataset: &entity_consolidation::data::Dataset,
    seed: u64,
) -> (Vec<RawRecord>, Vec<Vec<String>>) {
    let mut rows: Vec<(RawRecord, Vec<String>)> = dataset
        .clusters
        .iter()
        .flat_map(|cluster| {
            cluster.rows.iter().map(|row| {
                (
                    RawRecord {
                        source: row.source,
                        fields: row.cells.iter().map(|c| c.observed.clone()).collect(),
                    },
                    row.cells
                        .iter()
                        .map(|c| c.truth.clone())
                        .collect::<Vec<_>>(),
                )
            })
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    rows.shuffle(&mut rng);
    rows.into_iter().unzip()
}

#[test]
fn resolver_rebuilds_clusters_for_table1_style_records() {
    let records = vec![
        RawRecord::new(0, ["Mary Lee", "9 St, 02141 Wisconsin"]),
        RawRecord::new(1, ["M. Lee", "9th St, 02141 WI"]),
        RawRecord::new(2, ["Lee, Mary", "9 Street, 02141 WI"]),
        RawRecord::new(0, ["Smith, James", "5th St, 22701 California"]),
        RawRecord::new(1, ["James Smith", "3rd E Ave, 33990 California"]),
        RawRecord::new(2, ["J. Smith", "3 E Avenue, 33990 CA"]),
    ];
    let resolver = Resolver::new(ResolverConfig {
        rules: vec![
            ColumnRule {
                column: 0,
                measure: SimilarityMeasure::Jaccard,
                weight: 1.0,
            },
            ColumnRule {
                column: 1,
                measure: SimilarityMeasure::QgramCosine(2),
                weight: 1.0,
            },
        ],
        threshold: 0.5,
        ..ResolverConfig::default()
    });
    let clusters = resolver.resolve(&records);
    assert_eq!(
        clusters.len(),
        2,
        "exactly the Lee and Smith entities: {clusters:?}"
    );
    assert!(clusters
        .iter()
        .any(|c| c.contains(&0) && c.contains(&1) && c.contains(&2)));
    assert!(clusters
        .iter()
        .any(|c| c.contains(&3) && c.contains(&4) && c.contains(&5)));
}

#[test]
fn raw_records_to_golden_records_end_to_end() {
    // Start from a generated Address dataset but throw the clustering away.
    let reference = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: scaled(18),
        seed: 41,
        num_sources: 4,
    });
    let (records, truths) = flatten_and_shuffle(&reference, 9);

    // Addresses of the same entity share street/zip tokens; match on q-grams.
    let resolver = Resolver::new(ResolverConfig {
        rules: vec![ColumnRule {
            column: 0,
            measure: SimilarityMeasure::QgramCosine(2),
            weight: 1.0,
        }],
        threshold: 0.62,
        scheme: BlockingScheme::Both,
        blocking: BlockingConfig::default(),
    });
    let mut dataset = resolver.resolve_to_dataset(
        "resolved-address",
        vec!["Address".to_string()],
        &records,
        Some(&truths),
    );
    assert_eq!(
        dataset.num_records(),
        records.len(),
        "resolution must not drop records"
    );

    // Consolidate whatever clustering resolution produced.
    let pipeline = Pipeline::new(ConsolidationConfig {
        budget: 40,
        ..Default::default()
    });
    let mut oracle = SimulatedOracle::for_column(&dataset, 0, 3);
    let report = pipeline.golden_records(&mut dataset, &mut oracle, TruthMethod::MajorityConsensus);
    assert_eq!(report.golden_records.len(), dataset.clusters.len());
    // Standardization must have done something on a dataset full of variants.
    assert!(report.columns[0].cells_updated > 0);
}

#[test]
fn resolution_quality_pair_level() {
    // Pairwise precision/recall of the resolver against the generator's
    // entity assignment, using the Name-free Address dataset.
    let reference = PaperDataset::AuthorList.generate(&GeneratorConfig {
        num_clusters: scaled(14),
        seed: 17,
        num_sources: 3,
    });
    // Record the true entity of each flattened record.
    let mut records = Vec::new();
    let mut entity_of = Vec::new();
    for (entity, cluster) in reference.clusters.iter().enumerate() {
        for row in &cluster.rows {
            records.push(RawRecord {
                source: row.source,
                fields: vec![row.cells[0].observed.clone()],
            });
            entity_of.push(entity);
        }
    }
    let resolver = Resolver::new(ResolverConfig {
        rules: vec![ColumnRule {
            column: 0,
            measure: SimilarityMeasure::Jaccard,
            weight: 1.0,
        }],
        threshold: 0.55,
        ..ResolverConfig::default()
    });
    let clusters = resolver.resolve(&records);
    // Compute pairwise true/false positives over all intra-cluster pairs.
    let mut tp = 0usize;
    let mut fp = 0usize;
    for cluster in &clusters {
        for (i, &a) in cluster.iter().enumerate() {
            for &b in cluster.iter().skip(i + 1) {
                if entity_of[a] == entity_of[b] {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
    }
    if tp + fp > 0 {
        let precision = tp as f64 / (tp + fp) as f64;
        assert!(precision > 0.8, "pairwise precision too low: {precision}");
    }
    assert!(
        tp > 0,
        "the resolver must link at least some true duplicates"
    );
}

#[test]
fn resolver_is_deterministic() {
    let reference = PaperDataset::JournalTitle.generate(&GeneratorConfig {
        num_clusters: scaled(10),
        seed: 5,
        num_sources: 3,
    });
    let (records, _) = flatten_and_shuffle(&reference, 1);
    let resolver = Resolver::default();
    assert_eq!(resolver.resolve(&records), resolver.resolve(&records));
}
