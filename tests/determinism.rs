//! Determinism of the sharded stages: candidate generation, one-shot and
//! incremental grouping must produce **bit-identical** output at every
//! parallelism setting — the `Parallelism` knob only trades wall-clock time
//! for cores, never results.

mod common;

use common::scaled;
use entity_consolidation::prelude::*;

/// The seeded workload the comparisons run on: realistic Address candidates
/// with several transformation families — big enough to shard, small enough
/// that repeated full groupings keep tier-1 fast.
fn seeded_candidates() -> Vec<Replacement> {
    let dataset = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: scaled(12),
        seed: 91,
        num_sources: 4,
    });
    let candidates = generate_candidates(
        &dataset.column_values(0),
        &CandidateConfig {
            parallelism: Parallelism::SEQUENTIAL,
            ..CandidateConfig::default()
        },
    );
    assert!(
        candidates.len() > 50,
        "the workload must be big enough to shard: {} candidates",
        candidates.len()
    );
    candidates.replacements
}

fn config_with_threads(threads: usize) -> GroupingConfig {
    GroupingConfig::with_threads(threads)
}

#[test]
fn candidate_generation_is_identical_at_any_parallelism() {
    let dataset = PaperDataset::JournalTitle.generate(&GeneratorConfig {
        num_clusters: scaled(25),
        seed: 12,
        num_sources: 5,
    });
    let values = dataset.column_values(0);
    let sequential = generate_candidates(
        &values,
        &CandidateConfig {
            parallelism: Parallelism::SEQUENTIAL,
            ..CandidateConfig::default()
        },
    );
    for threads in [2usize, 4, 8] {
        let sharded = generate_candidates(
            &values,
            &CandidateConfig {
                parallelism: Parallelism::fixed(threads),
                ..CandidateConfig::default()
            },
        );
        assert_eq!(
            sequential.replacements, sharded.replacements,
            "candidate order differs at {threads} threads"
        );
        assert_eq!(
            sequential, sharded,
            "replacement sets differ at {threads} threads"
        );
    }
}

#[test]
fn oneshot_grouping_is_identical_at_any_parallelism() {
    let replacements = seeded_candidates();
    let sequential: Vec<Group> =
        StructuredGrouper::one_shot_all(&replacements, config_with_threads(1));
    for threads in [2usize, 4] {
        let sharded: Vec<Group> =
            StructuredGrouper::one_shot_all(&replacements, config_with_threads(threads));
        assert_eq!(
            sequential, sharded,
            "one-shot groups differ at {threads} threads"
        );
    }
}

#[test]
fn incremental_grouping_is_identical_at_any_parallelism() {
    let replacements = seeded_candidates();
    let sequential: Vec<Group> =
        StructuredGrouper::new(&replacements, config_with_threads(1)).all_groups();
    assert!(!sequential.is_empty());
    let sharded: Vec<Group> =
        StructuredGrouper::new(&replacements, config_with_threads(4)).all_groups();
    assert_eq!(
        sequential, sharded,
        "incremental groups differ at 4 threads"
    );
}

#[test]
fn plain_incremental_grouper_is_identical_at_any_parallelism() {
    // Without the structure refinement everything sits in one partition, so
    // this exercises the batched speculative scan of `IncrementalGrouper`
    // directly and over many invocations. The unpartitioned scan is the
    // slowest configuration in the repo, so it runs on a trimmed workload.
    let mut replacements = seeded_candidates();
    replacements.truncate(80);
    let sequential: Vec<Group> =
        IncrementalGrouper::new(&replacements, config_with_threads(1)).all_groups();
    for threads in [3usize, 4] {
        let sharded: Vec<Group> =
            IncrementalGrouper::new(&replacements, config_with_threads(threads)).all_groups();
        assert_eq!(
            sequential, sharded,
            "plain incremental groups differ at {threads} threads"
        );
    }
}

/// One cluster, many variants — the mega-group shape real columns produce
/// when sorted-neighborhood resolution false-merges a pile of lookalikes.
/// Candidates concentrate in a handful of structure partitions, so the
/// incremental ramp's early batches search one or two huge graphs at a time:
/// exactly where `threads > graphs` engages the frontier engine's parallel
/// wave scheduling inside a single search.
fn mega_group_candidates() -> Vec<Replacement> {
    // Systematic variant spellings of one journal title: the base form, each
    // word abbreviated on its own, and growing abbreviated prefixes. With
    // every value in one cluster, candidate generation produces the full
    // quadratic pair pile over closely related graphs.
    let words = ["International", "Journal", "Advanced", "Data", "Systems"];
    let abbreviate = |w: &str| format!("{}.", w.chars().next().unwrap());
    let mut values = vec![words.join(" ")];
    for i in 0..words.len() {
        let mut variant: Vec<String> = words.iter().map(|w| w.to_string()).collect();
        variant[i] = abbreviate(words[i]);
        values.push(variant.join(" "));
    }
    for upto in 2..=words.len() {
        let variant: Vec<String> = words
            .iter()
            .enumerate()
            .map(|(i, w)| {
                if i < upto {
                    abbreviate(w)
                } else {
                    w.to_string()
                }
            })
            .collect();
        values.push(variant.join(" "));
    }
    let candidates = generate_candidates(
        &[values],
        &CandidateConfig {
            parallelism: Parallelism::SEQUENTIAL,
            ..CandidateConfig::default()
        },
    );
    assert!(
        candidates.len() > 50,
        "the mega cluster must yield a searchable candidate pile: {}",
        candidates.len()
    );
    candidates.replacements
}

#[test]
fn single_mega_group_grouping_is_identical_at_any_parallelism() {
    let replacements = mega_group_candidates();
    let base: Vec<Group> =
        StructuredGrouper::new(&replacements, config_with_threads(1)).all_groups();
    assert!(!base.is_empty());
    for threads in [2usize, 4] {
        let sharded: Vec<Group> =
            StructuredGrouper::new(&replacements, config_with_threads(threads)).all_groups();
        assert_eq!(
            base, sharded,
            "mega-group grouping differs at {threads} threads"
        );
    }
}

#[test]
fn single_mega_group_grouping_is_identical_when_the_step_budget_binds() {
    // A starved step budget forces every frontier task to its private
    // slice's truncation point; intra-search sharding (on by default) must
    // keep those points — and with them the groups — thread-count
    // independent.
    let replacements = mega_group_candidates();
    let drain = |threads: usize| {
        let config = GroupingConfig {
            max_search_steps: 200,
            parallelism: Parallelism::fixed(threads),
            ..GroupingConfig::default()
        };
        assert!(config.intra_search_sharding);
        StructuredGrouper::new(&replacements, config).all_groups()
    };
    let base = drain(1);
    for threads in [2usize, 4] {
        assert_eq!(base, drain(threads), "threads={threads}");
    }
}

#[test]
fn oneshot_and_incremental_cover_the_same_replacements_in_parallel() {
    // Cross-driver sanity at a parallel setting: both drivers partition the
    // same replacement multiset (Theorem 6.4 still holds under sharding).
    let replacements = seeded_candidates();
    let config = config_with_threads(4);
    let mut oneshot: Vec<Replacement> =
        StructuredGrouper::one_shot_all(&replacements, config.clone())
            .iter()
            .flat_map(|g| g.members().to_vec())
            .collect();
    let mut incremental: Vec<Replacement> = StructuredGrouper::new(&replacements, config)
        .all_groups()
        .iter()
        .flat_map(|g| g.members().to_vec())
        .collect();
    oneshot.sort();
    incremental.sort();
    assert_eq!(oneshot, incremental);
}
