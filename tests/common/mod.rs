//! Shared helpers for the root integration suites.

/// Scales an integration-suite workload size (cluster counts, mostly) by the
/// `EC_TEST_SCALE` environment variable.
///
/// The suites default to workloads small enough that tier-1 (`cargo test`)
/// finishes in seconds; `EC_TEST_SCALE` is a float multiplier restoring
/// heavier soak workloads, e.g. `EC_TEST_SCALE=4 cargo test --release`.
/// Invalid or non-positive values fall back to 1.
pub fn scaled(base: usize) -> usize {
    let factor = std::env::var("EC_TEST_SCALE")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|f| f.is_finite() && *f > 0.0)
        .unwrap_or(1.0);
    ((base as f64 * factor).round() as usize).max(2)
}
