//! Integration tests for the CSV dataset formats: generated datasets survive a
//! serialize/parse round trip and the loaded copy consolidates identically.

use entity_consolidation::data::{
    dataset_from_csv, dataset_to_csv, raw_records_from_csv, GeneratorConfig, PaperDataset,
};
use entity_consolidation::prelude::*;

#[test]
fn every_paper_dataset_round_trips() {
    for paper in [
        PaperDataset::AuthorList,
        PaperDataset::Address,
        PaperDataset::JournalTitle,
    ] {
        let original = paper.generate(&GeneratorConfig {
            num_clusters: 15,
            seed: 23,
            num_sources: 3,
        });
        let text = dataset_to_csv(&original);
        let parsed = dataset_from_csv(&original.name, &text).unwrap();
        assert_eq!(parsed.columns, original.columns, "{paper:?}");
        assert_eq!(parsed.num_records(), original.num_records(), "{paper:?}");
        assert_eq!(parsed.clusters.len(), original.clusters.len(), "{paper:?}");
        // Observed and truth values survive; compare cluster-by-cluster as
        // multisets keyed by their sorted contents.
        let normalize = |d: &entity_consolidation::data::Dataset| {
            let mut clusters: Vec<Vec<(String, String)>> = d
                .clusters
                .iter()
                .map(|c| {
                    let mut rows: Vec<(String, String)> = c
                        .rows
                        .iter()
                        .map(|r| (r.cells[0].observed.clone(), r.cells[0].truth.clone()))
                        .collect();
                    rows.sort();
                    rows
                })
                .collect();
            clusters.sort();
            clusters
        };
        assert_eq!(normalize(&parsed), normalize(&original), "{paper:?}");
    }
}

#[test]
fn consolidating_the_loaded_copy_matches_the_original() {
    let original = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: 30,
        seed: 99,
        num_sources: 4,
    });
    let text = dataset_to_csv(&original);
    let loaded = dataset_from_csv(&original.name, &text).unwrap();

    let run = |mut dataset: entity_consolidation::data::Dataset| {
        let pipeline = Pipeline::new(ConsolidationConfig {
            budget: 30,
            ..Default::default()
        });
        let mut oracle = SimulatedOracle::for_column(&dataset, 0, 12);
        let report = pipeline.standardize_column(&mut dataset, 0, &mut oracle);
        (report.groups_approved, report.cells_updated)
    };
    // The loaded dataset may order clusters differently, but the learned
    // groups and the amount of standardization must be the same.
    assert_eq!(run(original), run(loaded));
}

#[test]
fn quoted_values_with_commas_survive() {
    let text = "cluster,source,Name\n0,0,\"Lee, Mary\"\n0,1,Mary Lee\n";
    let dataset = dataset_from_csv("quoted", text).unwrap();
    let values = dataset.column_values(0);
    assert!(values[0].contains(&"Lee, Mary".to_string()));
    // And writing it back re-quotes the comma field.
    let out = dataset_to_csv(&dataset);
    assert!(out.contains("\"Lee, Mary\""));
}

#[test]
fn raw_record_csv_feeds_the_resolver() {
    let text = "source,Name\n0,Mary Lee\n1,\"Lee, Mary\"\n0,James Smith\n1,\"Smith, James\"\n";
    let (columns, raw) = raw_records_from_csv(text).unwrap();
    assert_eq!(columns, vec!["Name"]);
    let records: Vec<RawRecord> = raw
        .into_iter()
        .map(|(source, fields)| RawRecord { source, fields })
        .collect();
    let resolver = Resolver::new(ResolverConfig {
        rules: vec![entity_consolidation::resolution::ColumnRule {
            column: 0,
            measure: SimilarityMeasure::Jaccard,
            weight: 1.0,
        }],
        threshold: 0.6,
        ..ResolverConfig::default()
    });
    let clusters = resolver.resolve(&records);
    assert_eq!(clusters.len(), 2);
}

#[test]
fn malformed_csv_is_rejected_not_mangled() {
    assert!(dataset_from_csv("x", "cluster,source\n0,0\nextra,field,here\n").is_err());
    assert!(dataset_from_csv("x", "not,a,header\n1,2,3\n").is_err());
    assert!(raw_records_from_csv("source,Name\nNaN,Mary\n").is_err());
}
