//! Integration tests for the `ec-obs` telemetry layer as served over HTTP:
//!
//! 1. `GET /metrics` on a server under concurrent load is always a valid
//!    Prometheus text exposition — every sample belongs to a declared
//!    family, histogram buckets are cumulative with `+Inf == _count` — and
//!    counters are monotone between scrapes;
//! 2. the shard router exposes its own registry (`service="router"` HTTP
//!    series) through the same endpoint;
//! 3. turning stage tracing on (`--trace FILE`) changes no output byte: the
//!    pipeline results with tracing enabled are bit-identical to the run
//!    before it, and the trace file is well-formed JSONL span events.
//!
//! Workload sizes respect `EC_TEST_SCALE` like every root suite.

mod common;

use common::scaled;
use ec_cli::memio::MemFiles;
use ec_cli::{parse, run};
use entity_consolidation::serve::http;
use entity_consolidation::serve::{
    Router, RouterConfig, RouterHandle, ServeConfig, Server, ServerHandle,
};
use std::collections::{BTreeMap, HashMap};

/// Runs one `ec` subcommand in-process against an in-memory namespace.
fn run_cli(argv: &[&str], inputs: &[(&str, &str)]) -> (String, MemFiles) {
    let args: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let parsed = parse(&args).expect("argv parses");
    let fs = MemFiles::new();
    for (path, text) in inputs {
        fs.insert(path, text);
    }
    let mut stdin = std::io::Cursor::new(Vec::new());
    let mut prompts = Vec::new();
    let output = run(
        &parsed,
        &fs.input_opener(),
        &fs.output_opener(),
        &mut stdin,
        &mut prompts,
    )
    .expect("command succeeds");
    (output.stdout, fs)
}

fn flat_workload() -> String {
    let clusters = scaled(10).to_string();
    let (stdout, _) = run_cli(
        &[
            "generate",
            "--dataset",
            "address",
            "--clusters",
            &clusters,
            "--seed",
            "37",
            "--flat",
        ],
        &[],
    );
    stdout
}

fn start_server(threads: usize) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (handle, join)
}

/// One scrape: asserts status, content type, and structural validity, then
/// returns the parsed `series → value` samples.
fn scrape(addr: std::net::SocketAddr) -> BTreeMap<String, f64> {
    let response = http::request(addr, "GET", "/metrics", b"").expect("scrape");
    assert_eq!(response.status, 200);
    let content_type = response.header("content-type").expect("content type");
    assert!(
        content_type.starts_with("text/plain"),
        "exposition content type: {content_type}"
    );
    let text = String::from_utf8(response.body).expect("exposition is UTF-8");
    validate_exposition(&text)
}

/// Structural validation of a Prometheus text exposition. Returns the
/// samples so callers can assert on values.
fn validate_exposition(text: &str) -> BTreeMap<String, f64> {
    // Family name → declared type.
    let mut families: HashMap<String, String> = HashMap::new();
    let mut samples: BTreeMap<String, f64> = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE names a family").to_string();
            let kind = parts.next().expect("TYPE declares a kind").to_string();
            assert!(
                matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                "unknown family kind in {line:?}"
            );
            assert!(
                families.insert(name, kind).is_none(),
                "duplicate TYPE line: {line:?}"
            );
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let value: f64 = if value == "+Inf" {
            f64::INFINITY
        } else {
            value
                .parse()
                .unwrap_or_else(|_| panic!("bad value {line:?}"))
        };
        assert!(
            samples.insert(series.to_string(), value).is_none(),
            "duplicate sample: {line:?}"
        );
    }
    assert!(!families.is_empty(), "the exposition declares families");

    // Every sample resolves to a declared family (histogram samples via
    // their `_bucket`/`_sum`/`_count` suffix on a histogram family).
    for series in samples.keys() {
        let name = series.split('{').next().unwrap();
        let declared = families.contains_key(name)
            || ["_bucket", "_sum", "_count"].iter().any(|suffix| {
                name.strip_suffix(suffix)
                    .is_some_and(|base| families.get(base).map(String::as_str) == Some("histogram"))
            });
        assert!(declared, "undeclared sample family: {series}");
    }

    // Histogram buckets are cumulative and consistent: per label set,
    // non-decreasing in `le` with the `+Inf` bucket equal to `_count`.
    for (family, kind) in &families {
        if kind != "histogram" {
            continue;
        }
        // Label set (minus `le`) → ordered (le, cumulative count).
        let mut buckets: HashMap<String, Vec<(f64, f64)>> = HashMap::new();
        let prefix = format!("{family}_bucket{{");
        for (series, &value) in &samples {
            let Some(labels) = series.strip_prefix(&prefix) else {
                continue;
            };
            let labels = labels.strip_suffix('}').expect("balanced label braces");
            let mut le = None;
            let mut rest = Vec::new();
            // Splitting on `",` eats each token's closing quote — restore it
            // so rebuilt series keys match the exposition verbatim.
            for label in labels.split("\",") {
                let label = if label.ends_with('"') {
                    label.to_string()
                } else {
                    format!("{label}\"")
                };
                match label.strip_prefix("le=\"").map(|b| b.trim_end_matches('"')) {
                    Some("+Inf") => le = Some(f64::INFINITY),
                    Some(bound) => le = Some(bound.parse().expect("finite le bound")),
                    None => rest.push(label),
                }
            }
            buckets
                .entry(rest.join(","))
                .or_default()
                .push((le.expect("every bucket has le"), value));
        }
        for (label_set, mut series) in buckets {
            series.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut previous = 0.0;
            for (le, cumulative) in &series {
                assert!(
                    *cumulative >= previous,
                    "{family}{{{label_set}}} bucket le={le} decreased"
                );
                previous = *cumulative;
            }
            let (last_le, last) = series.last().expect("at least the +Inf bucket");
            assert!(last_le.is_infinite(), "{family} is missing its +Inf bucket");
            let count_series = if label_set.is_empty() {
                format!("{family}_count")
            } else {
                format!("{family}_count{{{label_set}}}")
            };
            assert_eq!(
                samples.get(&count_series),
                Some(last),
                "{count_series} must equal the +Inf bucket"
            );
        }
    }
    samples
}

#[test]
fn server_scrapes_stay_valid_and_monotone_under_concurrent_load() {
    let flat = flat_workload();
    let (handle, join) = start_server(2);

    // Interleave pipeline/apply load with scrapes from several threads: the
    // exposition must be structurally valid at every instant.
    std::thread::scope(|scope| {
        for i in 0..4usize {
            let addr = handle.addr();
            let flat = &flat;
            scope.spawn(move || {
                for _ in 0..2 {
                    let response = http::request(
                        addr,
                        "POST",
                        if i % 2 == 0 {
                            "/pipeline?threshold=0.9&budget=8&mode=approve-all"
                        } else {
                            "/apply"
                        },
                        flat.as_bytes(),
                    )
                    .expect("load request");
                    assert_eq!(response.status, 200);
                    scrape(addr);
                }
            });
        }
    });

    // Counters never move backwards between scrapes (more load in between).
    let first = scrape(handle.addr());
    let response = http::request(handle.addr(), "POST", "/apply", flat.as_bytes()).unwrap();
    assert_eq!(response.status, 200);
    let second = scrape(handle.addr());
    for (series, &was) in &first {
        let name = series.split('{').next().unwrap();
        if !name.ends_with("_total") && !name.ends_with("_count") && !name.ends_with("_bucket") {
            continue;
        }
        let now = second
            .get(series)
            .unwrap_or_else(|| panic!("{series} vanished between scrapes"));
        assert!(*now >= was, "{series} went backwards: {was} -> {now}");
    }

    // The load left its marks: HTTP request counters for the endpoints the
    // clients hit, and the scrape endpoint observed itself.
    let requests = |endpoint: &str| {
        second
            .get(&format!(
                "ec_http_requests_total{{endpoint=\"{endpoint}\",service=\"serve\"}}"
            ))
            .copied()
            .unwrap_or(0.0)
    };
    assert!(requests("/apply") >= 5.0);
    assert!(requests("/pipeline") >= 4.0);
    assert!(requests("/metrics") >= 2.0);

    handle.stop();
    join.join().expect("server thread");
}

#[test]
fn router_exposes_its_own_registry() {
    let (backend, backend_join) = start_server(1);
    let mut config = RouterConfig::new("127.0.0.1:0", vec![backend.addr().to_string()]);
    config.probe_interval = std::time::Duration::from_millis(50);
    let router = Router::bind(config).expect("bind router");
    let handle: RouterHandle = router.handle();
    let join = std::thread::spawn(move || router.run().expect("router run"));

    let health = http::request(handle.addr(), "GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);
    let samples = scrape(handle.addr());
    let healthz = samples
        .get("ec_http_requests_total{endpoint=\"/healthz\",service=\"router\"}")
        .copied()
        .unwrap_or(0.0);
    assert!(
        healthz >= 1.0,
        "the router's own registry counts its /healthz traffic"
    );

    handle.stop();
    join.join().expect("router thread");
    backend.stop();
    backend_join.join().expect("backend thread");
}

#[test]
fn tracing_changes_no_output_byte_and_writes_wellformed_jsonl() {
    let flat = flat_workload();
    let pipeline_argv = |trace: Option<&str>| -> Vec<String> {
        let mut argv: Vec<String> = [
            "pipeline",
            "--input",
            "flat.csv",
            "--threshold",
            "0.9",
            "--budget",
            "10",
            "--output",
            "std.csv",
            "--golden",
            "golden.csv",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        if let Some(path) = trace {
            argv.extend(["--trace".to_string(), path.to_string()]);
        }
        argv
    };
    let run_pipeline = |trace: Option<&str>| -> (String, String) {
        let argv = pipeline_argv(trace);
        let argv: Vec<&str> = argv.iter().map(String::as_str).collect();
        let (_, fs) = run_cli(&argv, &[("flat.csv", &flat)]);
        (fs.get("std.csv").unwrap(), fs.get("golden.csv").unwrap())
    };

    // Tracing off (the sink is process-global and write-once, so the
    // untraced run must come first), then on, writing to a temp file.
    let (std_off, golden_off) = run_pipeline(None);
    let trace_path =
        std::env::temp_dir().join(format!("ec_metrics_trace_{}.jsonl", std::process::id()));
    let (std_on, golden_on) = run_pipeline(Some(trace_path.to_str().unwrap()));

    assert_eq!(std_off, std_on, "tracing changed the standardized output");
    assert_eq!(golden_off, golden_on, "tracing changed the golden records");

    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    let _ = std::fs::remove_file(&trace_path);
    assert!(!trace.trim().is_empty(), "the traced run recorded spans");
    for line in trace.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "span event is one JSON object per line: {line:?}"
        );
        assert!(
            line.contains("\"name\":") && line.contains("\"dur_us\":"),
            "span event carries a stage name and duration: {line:?}"
        );
    }
}
