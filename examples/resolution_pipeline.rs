//! End-to-end pipeline starting from *unclustered* records: entity resolution
//! (blocking + similarity matching + transitive closure) produces the clusters
//! of duplicates, then entity consolidation standardizes the variant values
//! and builds one golden record per entity.
//!
//! Run with `cargo run --example resolution_pipeline`.

use entity_consolidation::prelude::*;
use entity_consolidation::resolution::{BlockingConfig, ColumnRule};

fn main() {
    // Raw records from three "sources" describing two people plus a loner —
    // no cluster information anywhere.
    let records = vec![
        RawRecord::new(0, ["Mary Lee", "9 St, 02141 Wisconsin"]),
        RawRecord::new(1, ["M. Lee", "9th St, 02141 WI"]),
        RawRecord::new(2, ["Lee, Mary", "9 Street, 02141 WI"]),
        RawRecord::new(0, ["Smith, James", "5th St, 22701 California"]),
        RawRecord::new(1, ["James Smith", "3rd E Ave, 33990 California"]),
        RawRecord::new(2, ["J. Smith", "3 E Avenue, 33990 CA"]),
        RawRecord::new(1, ["Alice Wonder", "42 Rabbit Hole Ln, 10001 NY"]),
    ];

    // Step 1: entity resolution. Names are compared as token sets (order
    // independent, so "Lee, Mary" matches "Mary Lee"), addresses with q-gram
    // cosine similarity, and the two scores are averaged.
    let resolver = Resolver::new(ResolverConfig {
        rules: vec![
            ColumnRule {
                column: 0,
                measure: SimilarityMeasure::Jaccard,
                weight: 1.0,
            },
            ColumnRule {
                column: 1,
                measure: SimilarityMeasure::QgramCosine(2),
                weight: 1.0,
            },
        ],
        threshold: 0.5,
        blocking: BlockingConfig::default(),
        ..ResolverConfig::default()
    });
    let mut dataset = resolver.resolve_to_dataset(
        "resolved-people",
        vec!["Name".to_string(), "Address".to_string()],
        &records,
        None,
    );
    println!(
        "entity resolution produced {} clusters:",
        dataset.clusters.len()
    );
    for (i, cluster) in dataset.clusters.iter().enumerate() {
        println!("  cluster {i}:");
        for row in &cluster.rows {
            println!(
                "    [source {}] {} | {}",
                row.source, row.cells[0].observed, row.cells[1].observed
            );
        }
    }

    // Step 2: entity consolidation. A simulated reviewer approves the learned
    // transformation groups (here ground truth equals the observed values, so
    // we approve everything — on real data a human reviews each group).
    let pipeline = Pipeline::new(ConsolidationConfig {
        budget: 30,
        ..Default::default()
    });
    let mut oracle = ApproveAllOracle;
    let report = pipeline.golden_records(&mut dataset, &mut oracle, TruthMethod::MajorityConsensus);

    println!("\nafter consolidation:");
    for (column_report, column) in report.columns.iter().zip(&dataset.columns) {
        println!(
            "  column {column}: {} candidates, {} groups reviewed, {} approved, {} cells updated",
            column_report.candidates,
            column_report.groups_reviewed,
            column_report.groups_approved,
            column_report.cells_updated
        );
    }

    println!("\ngolden records:");
    for (i, golden) in report.golden_records.iter().enumerate() {
        let rendered: Vec<String> = golden
            .iter()
            .map(|g| g.clone().unwrap_or_else(|| "<unresolved>".to_string()))
            .collect();
        println!("  entity {i}: {}", rendered.join(" | "));
    }
}
