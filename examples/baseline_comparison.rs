//! Comparing `Group` (this paper), `Single` and the Trifacta-style wrangler on
//! the JournalTitle dataset — a miniature of Figures 6–8.
//!
//! Run with `cargo run --release --example baseline_comparison`.

use ec_baselines::{single_groups, wrangler};
use entity_consolidation::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let kind = PaperDataset::JournalTitle;
    let dataset = kind.generate(&GeneratorConfig {
        num_clusters: 300,
        seed: 6,
        num_sources: 8,
    });
    let budget = 60;
    let mut rng = StdRng::seed_from_u64(2);
    let sample = dataset.sample_labeled_pairs(0, 1000, &mut rng);

    // --- Group: the paper's method --------------------------------------------
    let mut group_dataset = dataset.clone();
    let pipeline = Pipeline::new(ConsolidationConfig {
        budget,
        ..Default::default()
    });
    let mut oracle = SimulatedOracle::for_column(&group_dataset, 0, 11);
    pipeline.standardize_column(&mut group_dataset, 0, &mut oracle);
    let group_counts = evaluate_standardization(&sample, &group_dataset.column_values(0));

    // --- Single: confirm individual replacements one at a time ----------------
    let mut single_dataset = dataset.clone();
    let candidates = generate_candidates(
        &single_dataset.column_values(0),
        &CandidateConfig::default(),
    );
    let singles = single_groups(&candidates);
    let mut engine =
        ReplacementEngine::new(single_dataset.column_values(0), &CandidateConfig::default());
    let mut single_oracle = SimulatedOracle::for_column(&single_dataset, 0, 12);
    for group in singles.iter().take(budget) {
        if let Verdict::Approve(direction) = single_oracle.review(group) {
            engine.apply_group(group.members(), direction);
        }
    }
    single_dataset.set_column_values(0, engine.into_values());
    let single_counts = evaluate_standardization(&sample, &single_dataset.column_values(0));

    // --- Trifacta-style wrangler rules -----------------------------------------
    let mut wrangler_dataset = dataset.clone();
    let rules = wrangler::rule_sets::journal_title();
    let (updated, changed) = rules.apply_column(&wrangler_dataset.column_values(0));
    wrangler_dataset.set_column_values(0, updated);
    let wrangler_counts = evaluate_standardization(&sample, &wrangler_dataset.column_values(0));

    println!(
        "JournalTitle, budget = {budget} confirmations, {} sampled pairs",
        sample.len()
    );
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "method", "precision", "recall", "MCC"
    );
    for (name, counts) in [
        ("Group", group_counts),
        ("Single", single_counts),
        ("Trifacta", wrangler_counts),
    ] {
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3}",
            name,
            counts.precision(),
            counts.recall(),
            counts.mcc()
        );
    }
    println!(
        "(the wrangler rewrote {changed} cells with {} rules)",
        rules.len()
    );
}
