//! Interactive group review on stdin: the closest thing to the paper's actual
//! human-in-the-loop workflow.
//!
//! The example generates a small Address dataset, produces groups one at a
//! time with the incremental grouper, and asks *you* to approve or reject each
//! one (`y` = apply lhs→rhs, `r` = apply rhs→lhs, anything else = reject,
//! `q` = stop). At the end it prints the standardization quality against the
//! generator's ground truth. Piping input works too:
//! `yes y | cargo run --example interactive_review`.

use entity_consolidation::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{self, BufRead, Write};

fn main() {
    let mut dataset = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: 40,
        seed: 21,
        num_sources: 4,
    });
    let mut rng = StdRng::seed_from_u64(3);
    let sample = dataset.sample_labeled_pairs(0, 500, &mut rng);

    let candidates = generate_candidates(&dataset.column_values(0), &CandidateConfig::default());
    let mut grouper = StructuredGrouper::new(&candidates.replacements, GroupingConfig::default());
    let mut engine = ReplacementEngine::new(dataset.column_values(0), &CandidateConfig::default());

    let stdin = io::stdin();
    let mut lines = stdin.lock().lines();
    let budget = 15;
    for i in 1..=budget {
        let group = match grouper.next_group() {
            Some(g) => g,
            None => break,
        };
        println!(
            "\n--- group {i}/{budget} ({} member pairs) ---",
            group.size()
        );
        if let Some(p) = group.program() {
            println!("shared transformation: {p}");
        }
        for member in group.members().iter().take(6) {
            println!("  {member}");
        }
        print!("approve? [y = lhs->rhs, r = rhs->lhs, n = reject, q = quit] ");
        io::stdout().flush().ok();
        let answer = lines
            .next()
            .and_then(Result::ok)
            .unwrap_or_else(|| "q".to_string());
        match answer.trim() {
            "y" => {
                let n = engine.apply_group(group.members(), Direction::Forward);
                println!("applied forward: {n} cells updated");
            }
            "r" => {
                let n = engine.apply_group(group.members(), Direction::Backward);
                println!("applied backward: {n} cells updated");
            }
            "q" => break,
            _ => println!("rejected"),
        }
    }

    dataset.set_column_values(0, engine.into_values());
    let counts = evaluate_standardization(&sample, &dataset.column_values(0));
    println!(
        "\nfinal standardization quality: precision {:.3}, recall {:.3}, MCC {:.3}",
        counts.precision(),
        counts.recall(),
        counts.mcc()
    );
}
