//! Comparing truth-discovery methods before and after variant-value
//! standardization (the Table 8 effect, extended beyond majority consensus).
//!
//! The paper's point is that standardization is *orthogonal* to the choice of
//! truth-discovery method: whatever resolves the remaining conflicts does
//! better once variant renderings of the same value have been merged. This
//! example measures golden-record precision for majority consensus, iterative
//! source-reliability weighting, and an Accu-style model, each before and
//! after standardization.
//!
//! Run with `cargo run --release --example truth_discovery_comparison`.

use entity_consolidation::prelude::*;
use entity_consolidation::truth::{accu_truth_discovery, AccuConfig, Claim};

fn golden_precision_with<F>(dataset: &entity_consolidation::data::Dataset, resolve: F) -> f64
where
    F: Fn(&[Claim]) -> Option<String>,
{
    let truth: Vec<String> = dataset
        .clusters
        .iter()
        .map(|c| c.golden[0].clone())
        .collect();
    let produced: Vec<Option<String>> = dataset
        .clusters
        .iter()
        .map(|cluster| {
            let claims: Vec<Claim> = cluster
                .rows
                .iter()
                .map(|r| Claim {
                    value: r.cells[0].observed.clone(),
                    source: r.source,
                })
                .collect();
            resolve(&claims)
        })
        .collect();
    golden_record_precision(&produced, &truth)
}

fn main() {
    let dataset = PaperDataset::JournalTitle.generate(&GeneratorConfig {
        num_clusters: 250,
        seed: 31,
        num_sources: 6,
    });

    // Standardize a copy with a 100-group budget.
    let mut standardized = dataset.clone();
    let pipeline = Pipeline::new(ConsolidationConfig {
        budget: 100,
        ..Default::default()
    });
    let mut oracle = SimulatedOracle::for_column(&standardized, 0, 13);
    pipeline.standardize_column(&mut standardized, 0, &mut oracle);

    let majority = |claims: &[Claim]| {
        let values: Vec<&str> = claims.iter().map(|c| c.value.as_str()).collect();
        majority_consensus(&values).value
    };
    let reliability = |claims: &[Claim]| {
        reliability_truth_discovery(&[claims.to_vec()], &Default::default())
            .pop()
            .and_then(|r| r.value)
    };
    let accu = |claims: &[Claim]| {
        accu_truth_discovery(&[claims.to_vec()], &AccuConfig::default())
            .pop()
            .and_then(|r| r.value)
    };

    println!("golden-record precision (JournalTitle-style, 250 clusters)\n");
    println!("{:<24} {:>10} {:>10}", "method", "before", "after");
    for (name, f) in [
        (
            "majority consensus",
            &majority as &dyn Fn(&[Claim]) -> Option<String>,
        ),
        ("source reliability", &reliability),
        ("Accu-style", &accu),
    ] {
        let before = golden_precision_with(&dataset, f);
        let after = golden_precision_with(&standardized, f);
        println!("{name:<24} {before:>10.3} {after:>10.3}");
    }
    println!(
        "\nstandardization lifts every method — the contribution is orthogonal to the resolver."
    );
}
