//! The incremental (top-k) grouping algorithm of Section 6: instead of
//! partitioning every candidate replacement upfront, each invocation returns
//! the next-largest group, so the first group reaches the reviewer orders of
//! magnitude sooner (the Figure 9 effect).
//!
//! Run with `cargo run --release --example incremental_topk`.

use entity_consolidation::prelude::*;
use std::time::Instant;

fn main() {
    let dataset = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: 150,
        seed: 77,
        num_sources: 4,
    });
    let candidates = generate_candidates(&dataset.column_values(0), &CandidateConfig::default());
    println!("{} candidate replacements generated", candidates.len());

    // One-shot: everything is partitioned before the first group appears.
    let start = Instant::now();
    let all = StructuredGrouper::one_shot_all(&candidates.replacements, GroupingConfig::one_shot());
    let oneshot_upfront = start.elapsed();
    println!(
        "one-shot grouping: {} groups, first group available after {:?}",
        all.len(),
        oneshot_upfront
    );

    // Incremental: the next-largest group is produced per invocation.
    let start = Instant::now();
    let mut grouper = StructuredGrouper::new(&candidates.replacements, GroupingConfig::default());
    println!("\nincremental grouping (top 10 groups):");
    println!("{:>5} {:>8} {:>12}  example member", "k", "size", "elapsed");
    for k in 1..=10 {
        match grouper.next_group() {
            Some(group) => {
                let member = group
                    .members()
                    .first()
                    .map(ToString::to_string)
                    .unwrap_or_default();
                println!(
                    "{:>5} {:>8} {:>12?}  {}",
                    k,
                    group.size(),
                    start.elapsed(),
                    member
                );
            }
            None => break,
        }
    }
    println!(
        "\nthe reviewer saw the first group after {:?} instead of {:?}",
        start.elapsed(),
        oneshot_upfront
    );
}
