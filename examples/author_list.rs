//! Inspecting the learned transformation groups on the AuthorList dataset —
//! the workload behind the paper's Table 4.
//!
//! The example generates a book/author-list dataset, runs the incremental
//! grouper, and prints the ten largest groups with their shared transformation
//! programs and a few sample member pairs, mirroring how a data steward would
//! review them.
//!
//! Run with `cargo run --release --example author_list`.

use entity_consolidation::prelude::*;

fn main() {
    let dataset = PaperDataset::AuthorList.generate(&GeneratorConfig {
        num_clusters: 50,
        seed: 4,
        num_sources: 8,
    });
    let stats = dataset.stats(0);
    println!(
        "AuthorList: {} clusters (avg size {:.1}), {} distinct value pairs",
        stats.num_clusters, stats.avg_cluster_size, stats.distinct_value_pairs
    );

    // Candidate replacements from the author_list column.
    let candidates = generate_candidates(&dataset.column_values(0), &CandidateConfig::default());
    println!("{} candidate replacements generated", candidates.len());

    // Incrementally produce the ten largest groups (the top-k algorithm of
    // Section 6 — no need to group everything upfront).
    let mut grouper = StructuredGrouper::new(&candidates.replacements, GroupingConfig::default());
    for rank in 1..=10 {
        let group = match grouper.next_group() {
            Some(g) => g,
            None => break,
        };
        println!("\n=== group #{rank} — {} member pairs ===", group.size());
        if let Some(program) = group.program() {
            println!("shared transformation: {program}");
        }
        for member in group.members().iter().take(5) {
            println!("  {member}");
        }
        if group.size() > 5 {
            println!("  … and {} more", group.size() - 5);
        }
    }
}
