//! End-to-end golden-record construction on the Address dataset.
//!
//! Reproduces the headline workflow of the paper: generate an Address-style
//! clustered dataset, let the pipeline learn replacement groups, have a
//! simulated expert confirm the 100 largest, apply them, and compare precision
//! / recall / MCC of the standardization plus the golden-record precision of
//! majority consensus before and after.
//!
//! Run with `cargo run --release --example address_standardization`.

use entity_consolidation::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dataset_kind = PaperDataset::Address;
    let mut dataset = dataset_kind.generate(&dataset_kind.default_config());
    let stats = dataset.stats(0);
    println!(
        "{}: {} clusters, {} records, {} distinct value pairs ({:.1}% variants)",
        dataset_kind.name(),
        stats.num_clusters,
        stats.num_records,
        stats.distinct_value_pairs,
        100.0 * stats.variant_pair_fraction
    );

    // The evaluation sample (the paper labels 1000 pairs by hand; we label
    // them from ground truth).
    let mut rng = StdRng::seed_from_u64(1);
    let sample = dataset.sample_labeled_pairs(0, 1000, &mut rng);

    // Ground-truth goldens for Table-8-style evaluation.
    let truth: Vec<String> = dataset
        .clusters
        .iter()
        .map(|c| c.golden[0].clone())
        .collect();

    let pipeline = Pipeline::new(ConsolidationConfig {
        budget: 100,
        ..ConsolidationConfig::default()
    });

    // Golden-record precision before standardization.
    let before_goldens = pipeline.discover_golden_records(&dataset, TruthMethod::MajorityConsensus);
    let before: Vec<Option<String>> = before_goldens.iter().map(|g| g[0].clone()).collect();
    let mc_before = golden_record_precision(&before, &truth);

    // Standardize with a simulated expert confirming up to 100 groups.
    let mut oracle = SimulatedOracle::for_column(&dataset, 0, 99);
    let report = pipeline.standardize_column(&mut dataset, 0, &mut oracle);
    println!(
        "reviewed {} groups, approved {}, rewrote {} cells",
        report.groups_reviewed, report.groups_approved, report.cells_updated
    );

    let counts = evaluate_standardization(&sample, &dataset.column_values(0));
    println!(
        "standardization quality on {} sampled pairs: precision {:.3}, recall {:.3}, MCC {:.3}",
        counts.total(),
        counts.precision(),
        counts.recall(),
        counts.mcc()
    );

    let after_goldens = pipeline.discover_golden_records(&dataset, TruthMethod::MajorityConsensus);
    let after: Vec<Option<String>> = after_goldens.iter().map(|g| g[0].clone()).collect();
    let mc_after = golden_record_precision(&after, &truth);
    println!(
        "majority-consensus golden-record precision: before {:.3} -> after {:.3}",
        mc_before, mc_after
    );

    println!("\nthree example golden records:");
    for (cluster, golden) in dataset.clusters.iter().zip(&after).take(3) {
        println!(
            "  observed: {:?}",
            cluster
                .rows
                .iter()
                .map(|r| &r.cells[0].observed)
                .collect::<Vec<_>>()
        );
        println!("  golden:   {:?}", golden);
    }
}
