//! Profiling clustered datasets before spending a review budget.
//!
//! Before asking a human to confirm replacement groups, a practitioner wants
//! to know which columns are worth the effort. This example profiles the three
//! paper-shaped datasets with `ec-profile`: per-column statistics, the
//! histogram of structure signatures (Section 7.2's `Struc(·)`), and a
//! standardization priority ranking. It then renders the cluster-size
//! distribution of one dataset as an ASCII chart with `ec-report`.
//!
//! Run with `cargo run --release --example dataset_profiling`.

use entity_consolidation::data::{GeneratorConfig, PaperDataset};
use entity_consolidation::profile::{
    prioritize_columns, render_dataset_profile, render_priorities, DatasetProfile,
};
use entity_consolidation::report::{ascii_chart, ChartConfig, Figure, Series};

fn main() {
    for kind in PaperDataset::ALL {
        let dataset = kind.generate(&GeneratorConfig {
            num_clusters: 60,
            seed: 2024,
            num_sources: 6,
        });
        let profile = DatasetProfile::profile(&dataset);
        println!("==================================================================");
        println!("{}", render_dataset_profile(&profile));
        println!("standardization priority:");
        println!("{}", render_priorities(&prioritize_columns(&profile)));
    }

    // The cluster-size distribution of the Address dataset, as a quick chart.
    let dataset = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: 200,
        seed: 2024,
        num_sources: 6,
    });
    let profile = DatasetProfile::profile(&dataset);
    let points: Vec<(f64, f64)> = profile
        .cluster_size_histogram
        .iter()
        .map(|(&size, &count)| (size as f64, count as f64))
        .collect();
    let figure = Figure::new(
        "Address: cluster-size distribution",
        "cluster size (records)",
        "number of clusters",
    )
    .with_series(Series::new("clusters", points));
    println!("==================================================================");
    println!("{}", ascii_chart(&figure, &ChartConfig::default()));
}
