//! Standardizing journal titles (the paper's JournalTitle dataset): abbreviation
//! variants such as "Journal" ↔ "J." and casing/punctuation differences are
//! learned as transformation groups and confirmed in bulk.
//!
//! Run with `cargo run --release --example journal_title`.

use entity_consolidation::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut dataset = PaperDataset::JournalTitle.generate(&GeneratorConfig {
        num_clusters: 300,
        seed: 2024,
        num_sources: 5,
    });
    let stats = dataset.stats(0);
    println!(
        "JournalTitle-style dataset: {} clusters, {} records, {} distinct value pairs ({}% variants)",
        stats.num_clusters,
        stats.num_records,
        stats.distinct_value_pairs,
        (stats.variant_pair_fraction * 100.0).round()
    );

    // The evaluation sample: labelled variant/conflict pairs, as in Section 8.
    let mut rng = StdRng::seed_from_u64(7);
    let sample = dataset.sample_labeled_pairs(0, 1000, &mut rng);

    // Review groups at increasing budgets and watch precision/recall/MCC move.
    let oracle = SimulatedOracle::for_column(&dataset, 0, 99);
    println!(
        "\n{:>8} {:>10} {:>10} {:>10}",
        "budget", "precision", "recall", "MCC"
    );
    for budget in [10usize, 25, 50, 100] {
        let mut working = dataset.clone();
        let pipeline = Pipeline::new(ConsolidationConfig {
            budget,
            ..Default::default()
        });
        pipeline.standardize_column(&mut working, 0, &mut oracle.clone());
        let counts = evaluate_standardization(&sample, &working.column_values(0));
        println!(
            "{:>8} {:>10.3} {:>10.3} {:>10.3}",
            budget,
            counts.precision(),
            counts.recall(),
            counts.mcc()
        );
        if budget == 100 {
            dataset = working;
        }
    }

    // Golden records before/after (the Table 8 effect).
    let truth: Vec<String> = dataset
        .clusters
        .iter()
        .map(|c| c.golden[0].clone())
        .collect();
    let pipeline = Pipeline::default();
    let goldens = pipeline.discover_golden_records(&dataset, TruthMethod::MajorityConsensus);
    let produced: Vec<Option<String>> = goldens.iter().map(|g| g[0].clone()).collect();
    println!(
        "\nmajority-consensus golden-record precision after standardization: {:.3}",
        golden_record_precision(&produced, &truth)
    );
}
