//! Loading and saving clustered datasets as CSV, then consolidating them.
//!
//! The paper's datasets ship as delimited text; this example shows the round
//! trip: generate a dataset, save it to clustered CSV, load it back, and run
//! the consolidation pipeline on the loaded copy.
//!
//! Run with `cargo run --release --example csv_datasets`.

use entity_consolidation::data::{dataset_from_csv, dataset_to_csv};
use entity_consolidation::prelude::*;

fn main() {
    // Generate a small Address-style dataset and serialize it.
    let original = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: 40,
        seed: 11,
        num_sources: 4,
    });
    let csv_text = dataset_to_csv(&original);
    println!(
        "serialized {} records ({} clusters) to {} bytes of CSV",
        original.num_records(),
        original.clusters.len(),
        csv_text.len()
    );
    println!("first rows:");
    for line in csv_text.lines().take(4) {
        println!("  {line}");
    }

    // Load it back. On disk this would be std::fs::read_to_string + the same call.
    let mut dataset = dataset_from_csv("address-from-csv", &csv_text).expect("valid CSV");
    assert_eq!(dataset.num_records(), original.num_records());

    // Consolidate the loaded dataset.
    let pipeline = Pipeline::new(ConsolidationConfig {
        budget: 50,
        ..Default::default()
    });
    let mut oracle = SimulatedOracle::for_column(&dataset, 0, 5);
    let report = pipeline.golden_records(&mut dataset, &mut oracle, TruthMethod::MajorityConsensus);
    let resolved = report
        .golden_records
        .iter()
        .filter(|g| g.iter().all(Option::is_some))
        .count();
    println!(
        "\nconsolidated the loaded dataset: {} of {} clusters got a complete golden record",
        resolved,
        dataset.clusters.len()
    );

    // The standardized dataset can be written right back out.
    let out = dataset_to_csv(&dataset);
    println!("standardized CSV is {} bytes", out.len());
}
