//! Quickstart: learn string transformations from a handful of clustered
//! records and standardize them.
//!
//! Run with `cargo run --example quickstart`.

use entity_consolidation::prelude::*;

fn main() {
    // Table 1 of the paper: two clusters of duplicate person records whose
    // Name values are rendered in different formats.
    let clusters: Vec<Vec<String>> = vec![
        vec!["Mary Lee".into(), "M. Lee".into(), "Lee, Mary".into()],
        vec![
            "Smith, James".into(),
            "James Smith".into(),
            "J. Smith".into(),
        ],
    ];

    // Step 1: candidate replacements — every pair of non-identical values in a
    // cluster, in both directions.
    let candidates = generate_candidates(&clusters, &CandidateConfig::full_value_only());
    println!("generated {} candidate replacements:", candidates.len());
    for r in &candidates.replacements {
        println!("  {r}");
    }

    // Step 2: unsupervised grouping — candidates that share a transformation
    // program are grouped, largest groups first.
    let mut grouper = StructuredGrouper::new(&candidates.replacements, GroupingConfig::default());
    let groups = grouper.all_groups();
    println!("\nlearned {} groups:", groups.len());
    for (i, group) in groups.iter().enumerate() {
        println!("group #{} ({} members)", i + 1, group.size());
        if let Some(p) = group.program() {
            println!("  shared program: {p}");
        }
        for member in group.members() {
            println!("  {member}");
        }
    }

    // Step 3: a human (here: hard-coded approvals) confirms the good groups and
    // they are applied to the clusters.
    let mut engine = ReplacementEngine::new(clusters, &CandidateConfig::full_value_only());
    for group in &groups {
        // Approve groups whose right-hand sides look like the canonical
        // "First Last" format.
        let canonical = group
            .members()
            .iter()
            .all(|r| !r.rhs().contains(',') && !r.rhs().contains('.'));
        if canonical && group.size() >= 2 {
            let updated = engine.apply_group(group.members(), Direction::Forward);
            println!(
                "\napproved group ({} members) -> {updated} cells updated",
                group.size()
            );
        }
    }

    println!("\nstandardized clusters:");
    for (i, cluster) in engine.values().iter().enumerate() {
        println!("  cluster {i}: {cluster:?}");
    }
}
