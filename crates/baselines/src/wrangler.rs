//! A Trifacta-style rule-wrangling engine.
//!
//! The paper's baseline asked a skilled user to spend an hour writing 30–40
//! lines of wrangler code (regex replaces, substring extraction) per dataset
//! and applied them globally. This module provides the equivalent: a small
//! declarative rule language ([`Rule`]) whose rules rewrite whole cell values,
//! plus hand-written [`rule_sets`] for the three datasets covering the common
//! transformation families (and, like the paper's user, only a fraction of the
//! long tail).

use serde::{Deserialize, Serialize};

/// One wrangling rule, applied to a whole cell value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rule {
    /// Replace every whole-token occurrence of `from` with `to`
    /// (`REPLACE on: '{from}' with: '{to}'`).
    ReplaceToken {
        /// Token to replace.
        from: String,
        /// Replacement token (may be empty to delete the token).
        to: String,
    },
    /// Remove every parenthesised fragment, e.g. `"(edt)"` or `"(author)"`
    /// (the paper's first example rule: `REPLACE with: '' on: '({any}+)'`).
    RemoveParenthetical,
    /// Rewrite `"Last, First"` into `"First Last"` for every comma-separated
    /// name-shaped fragment (the paper's second example rule).
    TransposeCommaName,
    /// Append an ordinal suffix to a leading house number (`"9 St"` → `"9th St"`).
    OrdinalizeLeadingNumber,
    /// Lower-case the whole value.
    Lowercase,
    /// Collapse runs of whitespace to a single space and trim the ends.
    NormalizeWhitespace,
}

impl Rule {
    /// Applies the rule to one value.
    pub fn apply(&self, value: &str) -> String {
        match self {
            Rule::ReplaceToken { from, to } => {
                let tokens: Vec<&str> = value.split_whitespace().collect();
                let mut out: Vec<String> = Vec::with_capacity(tokens.len());
                for t in tokens {
                    if t == from {
                        if !to.is_empty() {
                            out.push(to.clone());
                        }
                        continue;
                    }
                    // Keep trailing punctuation (e.g. "Street," -> "St,").
                    let (core, punct) = split_trailing_punct(t);
                    if core == from {
                        if !to.is_empty() {
                            out.push(format!("{to}{punct}"));
                        } else if !punct.is_empty() {
                            out.push(punct.to_string());
                        }
                    } else {
                        out.push(t.to_string());
                    }
                }
                out.join(" ")
            }
            Rule::RemoveParenthetical => {
                let mut out = String::with_capacity(value.len());
                let mut depth = 0usize;
                for c in value.chars() {
                    match c {
                        '(' => depth += 1,
                        ')' => depth = depth.saturating_sub(1),
                        _ if depth == 0 => out.push(c),
                        _ => {}
                    }
                }
                Rule::NormalizeWhitespace.apply(&out)
            }
            Rule::TransposeCommaName => transpose_comma_names(value),
            Rule::OrdinalizeLeadingNumber => {
                let mut tokens: Vec<String> =
                    value.split_whitespace().map(str::to_string).collect();
                if let Some(first) = tokens.first_mut() {
                    if !first.is_empty() && first.chars().all(|c| c.is_ascii_digit()) {
                        let n: u32 = first.parse().unwrap_or(0);
                        first.push_str(ordinal_suffix(n));
                    }
                }
                tokens.join(" ")
            }
            Rule::Lowercase => value.to_lowercase(),
            Rule::NormalizeWhitespace => value.split_whitespace().collect::<Vec<_>>().join(" "),
        }
    }
}

fn split_trailing_punct(token: &str) -> (&str, &str) {
    let end = token
        .char_indices()
        .rev()
        .take_while(|(_, c)| matches!(c, ',' | '.' | ';' | ':'))
        .map(|(i, _)| i)
        .last()
        .unwrap_or(token.len());
    token.split_at(end)
}

fn ordinal_suffix(n: u32) -> &'static str {
    match (n % 10, n % 100) {
        (_, 11..=13) => "th",
        (1, _) => "st",
        (2, _) => "nd",
        (3, _) => "rd",
        _ => "th",
    }
}

/// Rewrites `"Last, First"` fragments into `"First Last"`. Fragments are the
/// `", "`-separated pieces that look like a pair of name tokens; values that do
/// not look like comma-transposed names are returned unchanged.
fn transpose_comma_names(value: &str) -> String {
    let parts: Vec<&str> = value.split(", ").collect();
    if parts.len() < 2 {
        return value.to_string();
    }
    // "Last, First" or "Last, First Last2, First2 ..." — pair them up.
    if parts.len() == 2 && looks_like_name(parts[0]) && looks_like_name(parts[1]) {
        let last = parts[0].trim();
        let first = parts[1].trim();
        return format!("{first} {last}");
    }
    value.to_string()
}

fn looks_like_name(s: &str) -> bool {
    !s.is_empty()
        && s.split_whitespace().count() <= 2
        && s.chars()
            .all(|c| c.is_alphabetic() || c.is_whitespace() || c == '.')
}

/// An ordered list of rules applied left to right to every cell value.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RuleSet {
    /// The rules, applied in order.
    pub rules: Vec<Rule>,
}

impl RuleSet {
    /// Creates a rule set.
    pub fn new(rules: Vec<Rule>) -> Self {
        RuleSet { rules }
    }

    /// Number of rules (the paper reports its user wrote 30–40 lines).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the rule set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Applies all rules to one value.
    pub fn apply(&self, value: &str) -> String {
        let mut out = value.to_string();
        for rule in &self.rules {
            out = rule.apply(&out);
        }
        out
    }

    /// Applies the rule set globally to a column (values grouped by cluster),
    /// the way Trifacta applies wrangler scripts. Returns the rewritten column
    /// and the number of cells that changed.
    pub fn apply_column(&self, clusters: &[Vec<String>]) -> (Vec<Vec<String>>, usize) {
        let mut changed = 0;
        let out = clusters
            .iter()
            .map(|cluster| {
                cluster
                    .iter()
                    .map(|v| {
                        let new = self.apply(v);
                        if new != *v {
                            changed += 1;
                        }
                        new
                    })
                    .collect()
            })
            .collect();
        (out, changed)
    }
}

/// The hand-written rule sets standing in for the paper's per-dataset wrangler
/// scripts.
pub mod rule_sets {
    use super::{Rule, RuleSet};

    /// Rules for the AuthorList dataset: strip role annotations, transpose
    /// comma names, expand a handful of common nicknames.
    pub fn author_list() -> RuleSet {
        let mut rules = vec![Rule::RemoveParenthetical, Rule::TransposeCommaName];
        for (full, nick) in [
            ("Robert", "Bob"),
            ("William", "Bill"),
            ("Steven", "Steve"),
            ("Kenneth", "Ken"),
            ("Michael", "Mike"),
            ("Thomas", "Tom"),
        ] {
            rules.push(Rule::ReplaceToken {
                from: nick.to_string(),
                to: full.to_string(),
            });
        }
        rules.push(Rule::NormalizeWhitespace);
        RuleSet::new(rules)
    }

    /// Rules for the Address dataset: expand street-type abbreviations,
    /// abbreviate state names, ordinalize leading house numbers.
    pub fn address() -> RuleSet {
        let mut rules = vec![Rule::OrdinalizeLeadingNumber];
        for (full, abbrev) in [
            ("Street", "St"),
            ("Avenue", "Ave"),
            ("Road", "Rd"),
            ("Boulevard", "Blvd"),
            ("Drive", "Dr"),
            ("Lane", "Ln"),
        ] {
            rules.push(Rule::ReplaceToken {
                from: abbrev.to_string(),
                to: full.to_string(),
            });
        }
        for (full, abbrev) in [
            ("California", "CA"),
            ("Wisconsin", "WI"),
            ("Texas", "TX"),
            ("Florida", "FL"),
            ("Illinois", "IL"),
        ] {
            rules.push(Rule::ReplaceToken {
                from: full.to_string(),
                to: abbrev.to_string(),
            });
        }
        rules.push(Rule::NormalizeWhitespace);
        RuleSet::new(rules)
    }

    /// Rules for the JournalTitle dataset: expand a handful of common
    /// abbreviations and lower-case everything (a blunt but typical wrangler
    /// normalisation).
    pub fn journal_title() -> RuleSet {
        let mut rules = Vec::new();
        for (full, abbrev) in [
            ("Journal", "J."),
            ("International", "Int."),
            ("Transactions", "Trans."),
            ("Proceedings", "Proc."),
            ("Review", "Rev."),
            ("Advances", "Adv."),
            ("Annals", "Ann."),
            ("Bulletin", "Bull."),
        ] {
            rules.push(Rule::ReplaceToken {
                from: abbrev.to_string(),
                to: full.to_string(),
            });
        }
        rules.push(Rule::Lowercase);
        rules.push(Rule::NormalizeWhitespace);
        RuleSet::new(rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replace_token_respects_token_boundaries_and_punctuation() {
        let r = Rule::ReplaceToken {
            from: "St".into(),
            to: "Street".into(),
        };
        assert_eq!(r.apply("9th St, 02141 WI"), "9th Street, 02141 WI");
        // "Stone" is not the token "St".
        assert_eq!(r.apply("Stone St"), "Stone Street");
        assert_eq!(r.apply("nothing here"), "nothing here");
    }

    #[test]
    fn remove_parenthetical_mirrors_the_paper_rule() {
        let r = Rule::RemoveParenthetical;
        assert_eq!(r.apply("carroll, john (edt)"), "carroll, john");
        assert_eq!(r.apply("brown, keith (author) extra"), "brown, keith extra");
        assert_eq!(r.apply("no parens"), "no parens");
        assert_eq!(r.apply("nested (a (b) c) end"), "nested end");
    }

    #[test]
    fn transpose_comma_name_mirrors_the_paper_rule() {
        let r = Rule::TransposeCommaName;
        assert_eq!(r.apply("Smith, James"), "James Smith");
        assert_eq!(r.apply("knuth, donald e."), "donald e. knuth");
        // A value that is not a simple "Last, First" pair is left alone.
        assert_eq!(r.apply("9 St, 02141 WI"), "9 St, 02141 WI");
        assert_eq!(r.apply("plain value"), "plain value");
    }

    #[test]
    fn ordinalize_leading_number() {
        let r = Rule::OrdinalizeLeadingNumber;
        assert_eq!(r.apply("9 Main St"), "9th Main St");
        assert_eq!(r.apply("21 Oak Ave"), "21st Oak Ave");
        assert_eq!(r.apply("3 Pine Rd"), "3rd Pine Rd");
        assert_eq!(r.apply("9th Main St"), "9th Main St");
        assert_eq!(r.apply("Main St"), "Main St");
    }

    #[test]
    fn lowercase_and_whitespace() {
        assert_eq!(
            Rule::Lowercase.apply("Journal OF Things"),
            "journal of things"
        );
        assert_eq!(Rule::NormalizeWhitespace.apply("  a   b  "), "a b");
    }

    #[test]
    fn rule_set_applies_in_order_and_counts_changes() {
        let rs = rule_sets::address();
        assert!(
            rs.len() >= 10,
            "a realistic wrangler script has a dozen-plus rules"
        );
        let (updated, changed) = rs.apply_column(&[vec![
            "9 Main St, 02141 Wisconsin".to_string(),
            "9th Main Street, 02141 WI".to_string(),
        ]]);
        assert_eq!(updated[0][0], "9th Main Street, 02141 WI");
        assert_eq!(updated[0][1], "9th Main Street, 02141 WI");
        assert_eq!(changed, 1);
    }

    #[test]
    fn author_rule_set_handles_table4_style_values() {
        let rs = rule_sets::author_list();
        assert_eq!(rs.apply("carroll, john (edt)"), "john carroll");
        assert_eq!(rs.apply("Smith, James"), "James Smith");
        assert_eq!(rs.apply("Bob Johnson"), "Robert Johnson");
    }

    #[test]
    fn journal_rule_set_normalises_abbreviations_and_case() {
        let rs = rule_sets::journal_title();
        assert_eq!(rs.apply("J. Computer Science"), "journal computer science");
        assert_eq!(
            rs.apply("Journal of Computer Science"),
            "journal of computer science"
        );
    }

    #[test]
    fn empty_rule_set_is_identity() {
        let rs = RuleSet::default();
        assert!(rs.is_empty());
        let (updated, changed) = rs.apply_column(&[vec!["x".to_string()]]);
        assert_eq!(updated[0][0], "x");
        assert_eq!(changed, 0);
    }
}
