//! # ec-baselines — the comparison methods of Section 8.1
//!
//! * [`single_groups`] — the `Single` baseline: every candidate replacement is
//!   a group of its own, ranked by how many cells it was generated from, so a
//!   human confirming `k` "groups" confirms `k` individual value pairs.
//! * [`wrangler`] — a Trifacta-style rule engine: a small set of declarative
//!   rewrite rules that a skilled user could write in about an hour, applied
//!   globally to every cell of a column. The per-dataset rule sets in
//!   [`wrangler::rule_sets`] play the role of the 30–40 lines of wrangler code
//!   the paper's user wrote.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod wrangler;

use ec_grouping::Group;
use ec_replace::CandidateSet;

/// The `Single` baseline: one group per candidate replacement, ordered by the
/// number of cells the replacement was generated from (most profitable first),
/// with ties broken lexicographically for determinism.
pub fn single_groups(candidates: &CandidateSet) -> Vec<Group> {
    let mut groups: Vec<(usize, Group)> = candidates
        .replacements
        .iter()
        .map(|r| (candidates.set(r).len(), Group::singleton(r.clone())))
        .collect();
    groups.sort_by(|a, b| {
        b.0.cmp(&a.0)
            .then_with(|| a.1.members().first().cmp(&b.1.members().first()))
    });
    groups.into_iter().map(|(_, g)| g).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_replace::{generate_candidates, CandidateConfig};

    #[test]
    fn single_groups_are_all_singletons_ordered_by_support() {
        let clusters = vec![
            vec!["Street".to_string(), "St".to_string()],
            vec!["Street".to_string(), "St".to_string()],
            vec!["Avenue".to_string(), "Ave".to_string()],
        ];
        let candidates = generate_candidates(&clusters, &CandidateConfig::full_value_only());
        let groups = single_groups(&candidates);
        assert_eq!(groups.len(), candidates.len());
        assert!(groups.iter().all(|g| g.size() == 1));
        // Street<->St replacements are supported by two cells, Avenue<->Ave by one.
        assert!(groups[0].members()[0].lhs().contains("St"));
        assert_eq!(candidates.set(&groups[0].members()[0]).len(), 2);
        assert_eq!(
            candidates.set(&groups.last().unwrap().members()[0]).len(),
            1
        );
    }

    #[test]
    fn empty_candidates_give_no_groups() {
        let candidates = generate_candidates(&[], &CandidateConfig::default());
        assert!(single_groups(&candidates).is_empty());
    }
}
