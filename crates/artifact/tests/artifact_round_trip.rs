//! Round-trip and corruption tests for the artifact format, plus the
//! differential property test required by the cold-start work: a compiled
//! dataset that goes through encode → (mmap-style aligned) decode must
//! behave *identically* to the freshly built state — same candidate sets,
//! same partitions, and an inverted index whose every probe (`list`,
//! `list_graph_count`, chained `extend` walks) matches the fresh one.

use ec_artifact::{encode_artifact, read_artifact, read_artifact_bytes, write_artifact};
use ec_artifact::{ArtifactError, MAGIC, VERSION};
use ec_core::{
    compile_dataset, standardize_columns_compiled, AutoMode, CompiledDataset, ConsolidationConfig,
    Pipeline, ProgramLibrary,
};
use ec_data::{Cell, Cluster, Dataset, GeneratorConfig, PaperDataset, Row};
use ec_graph::LabelId;
use ec_index::PathList;
use proptest::prelude::*;

fn compiled_address(clusters: usize, seed: u64) -> CompiledDataset {
    let dataset = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: clusters,
        seed,
        num_sources: 3,
    });
    compile_dataset(dataset, 0.75, true, &ConsolidationConfig::default())
}

/// Asserts every observable of two compiled datasets matches: metadata, the
/// resolved dataset, candidate sets, partition membership, prepared graphs
/// and full index probes.
fn assert_compiled_eq(fresh: &CompiledDataset, loaded: &CompiledDataset) {
    assert_eq!(fresh.name, loaded.name);
    assert_eq!(fresh.threshold, loaded.threshold);
    assert_eq!(fresh.has_truth, loaded.has_truth);
    assert_eq!(fresh.dataset, loaded.dataset);
    assert_eq!(fresh.columns.len(), loaded.columns.len());
    for (fc, lc) in fresh.columns.iter().zip(&loaded.columns) {
        assert_eq!(fc.candidates.replacements, lc.candidates.replacements);
        for r in &fc.candidates.replacements {
            assert_eq!(fc.candidates.set(r), lc.candidates.set(r));
        }
        assert_eq!(fc.partitions.len(), lc.partitions.len());
        for (fp, lp) in fc.partitions.iter().zip(&lc.partitions) {
            assert_eq!(fp.members, lp.members);
            assert_eq!(fp.prepared.replacements(), lp.prepared.replacements());
            assert_eq!(fp.prepared.skipped(), lp.prepared.skipped());
            assert_eq!(fp.prepared.interner().len(), lp.prepared.interner().len());
            for (f, l) in fp.prepared.graphs().iter().zip(lp.prepared.graphs()) {
                assert_eq!(f.replacement(), l.replacement());
                assert_eq!(f.t_len(), l.t_len());
                assert_eq!(f.edges(), l.edges());
            }
            let (fi, li) = (fp.prepared.index(), lp.prepared.index());
            assert_eq!(fi.num_labels(), li.num_labels());
            for raw in 0..fi.num_labels() as u32 + 2 {
                let label = LabelId(raw);
                assert_eq!(fi.list(label), li.list(label));
                assert_eq!(fi.list_graph_count(label), li.list_graph_count(label));
            }
        }
    }
}

#[test]
fn encode_decode_round_trip_preserves_every_observable() {
    let fresh = compiled_address(12, 21);
    let bytes = encode_artifact(&fresh);
    let loaded = read_artifact_bytes(&bytes).expect("round trip decodes");
    assert_compiled_eq(&fresh, &loaded);
}

#[test]
fn loaded_artifact_standardizes_byte_identically_to_the_fresh_state() {
    let fresh = compiled_address(10, 5);
    let loaded = read_artifact_bytes(&encode_artifact(&fresh)).unwrap();
    let pipeline = Pipeline::new(ConsolidationConfig {
        budget: 12,
        ..ConsolidationConfig::default()
    });
    let columns: Vec<usize> = (0..fresh.dataset.columns.len()).collect();

    let mut from_fresh = fresh.dataset.clone();
    let mut fresh_library = ProgramLibrary::new();
    let fresh_reports = standardize_columns_compiled(
        &pipeline,
        &fresh,
        &mut from_fresh,
        &columns,
        AutoMode::Auto,
        Some(&mut fresh_library),
    );

    let mut from_loaded = loaded.dataset.clone();
    let mut loaded_library = ProgramLibrary::new();
    let loaded_reports = standardize_columns_compiled(
        &pipeline,
        &loaded,
        &mut from_loaded,
        &columns,
        AutoMode::Auto,
        Some(&mut loaded_library),
    );

    assert_eq!(from_fresh, from_loaded, "standardized datasets agree");
    assert_eq!(fresh_reports, loaded_reports, "reports agree");
    assert_eq!(
        fresh_library.to_snapshot(),
        loaded_library.to_snapshot(),
        "learned programs agree"
    );
}

#[test]
fn file_round_trip_maps_and_matches() {
    let fresh = compiled_address(6, 9);
    let path = std::env::temp_dir().join(format!("ec-artifact-rt-{}.eca", std::process::id()));
    write_artifact(&fresh, &path).unwrap();
    let (loaded, mapped) = read_artifact(&path).unwrap();
    if cfg!(all(unix, target_endian = "little")) {
        assert!(mapped, "unix little-endian loads should memory-map");
    }
    assert_compiled_eq(&fresh, &loaded);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn bad_magic_and_wrong_version_are_rejected_by_name() {
    let bytes = encode_artifact(&compiled_address(4, 2));

    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0x20;
    assert!(matches!(
        read_artifact_bytes(&bad_magic),
        Err(ArtifactError::BadMagic)
    ));

    let mut wrong_version = bytes.clone();
    wrong_version[8..12].copy_from_slice(&(VERSION + 1).to_le_bytes());
    assert!(matches!(
        read_artifact_bytes(&wrong_version),
        Err(ArtifactError::UnsupportedVersion { found }) if found == VERSION + 1
    ));

    assert_eq!(&bytes[..8], &MAGIC);
}

#[test]
fn corrupt_payload_bytes_fail_the_section_checksum() {
    let bytes = encode_artifact(&compiled_address(4, 2));
    // Flip one byte in the last section's payload (the file tail is always
    // payload, never table).
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xFF;
    assert!(matches!(
        read_artifact_bytes(&corrupt),
        Err(ArtifactError::ChecksumMismatch { .. })
    ));
}

#[test]
fn every_truncation_point_is_a_named_error_never_a_panic() {
    let bytes = encode_artifact(&compiled_address(3, 4));
    // Sweep truncation lengths (every prefix for the header/table region,
    // then strided through the payloads) — each must decode to Err, and the
    // error must be one of the structural variants.
    let mut lengths: Vec<usize> = (0..bytes.len().min(256)).collect();
    lengths.extend((256..bytes.len()).step_by(97));
    for n in lengths {
        match read_artifact_bytes(&bytes[..n]) {
            Err(
                ArtifactError::Truncated { .. }
                | ArtifactError::SectionOutOfBounds { .. }
                | ArtifactError::ChecksumMismatch { .. }
                | ArtifactError::Malformed { .. }
                | ArtifactError::BadMagic
                | ArtifactError::UnsupportedVersion { .. },
            ) => {}
            Ok(_) => panic!("truncated artifact ({n} bytes) decoded successfully"),
            Err(other) => panic!("unexpected error class for {n}-byte prefix: {other}"),
        }
    }
}

/// Random single-column datasets in the style of the CSR differential tests:
/// small alphabet so replacement structures repeat and partitions are
/// non-trivial.
fn arb_cluster_values() -> impl Strategy<Value = Vec<Vec<String>>> {
    proptest::collection::vec(
        proptest::collection::vec("[ABab 0-9.,]{1,8}", 1..4usize),
        1..5usize,
    )
}

fn dataset_from_values(values: &[Vec<String>]) -> Dataset {
    let mut dataset = Dataset::new("prop", vec!["value".to_string()]);
    dataset.clusters = values
        .iter()
        .map(|cluster| Cluster {
            rows: cluster
                .iter()
                .enumerate()
                .map(|(i, v)| Row {
                    source: i,
                    cells: vec![Cell {
                        observed: v.clone(),
                        truth: String::new(),
                    }],
                })
                .collect(),
            golden: Vec::new(),
        })
        .collect();
    dataset
}

proptest! {
    /// compile → encode → decode round trip: the loaded index answers every
    /// probe and `extend` walk identically to the freshly built one, on
    /// arbitrary datasets.
    #[test]
    fn round_tripped_index_probes_match_the_fresh_build(
        values in arb_cluster_values(),
        picks in proptest::collection::vec(0usize..64, 1..8usize),
    ) {
        let dataset = dataset_from_values(&values);
        let fresh = compile_dataset(dataset, 0.75, false, &ConsolidationConfig::default());
        let loaded = read_artifact_bytes(&encode_artifact(&fresh)).unwrap();

        prop_assert_eq!(fresh.columns.len(), loaded.columns.len());
        for (fc, lc) in fresh.columns.iter().zip(&loaded.columns) {
            prop_assert_eq!(&fc.candidates.replacements, &lc.candidates.replacements);
            prop_assert_eq!(fc.partitions.len(), lc.partitions.len());
            for (fp, lp) in fc.partitions.iter().zip(&lc.partitions) {
                prop_assert_eq!(&fp.members, &lp.members);
                let (fi, li) = (fp.prepared.index(), lp.prepared.index());
                prop_assert_eq!(fi.num_labels(), li.num_labels());
                for raw in 0..fi.num_labels() as u32 + 2 {
                    let label = LabelId(raw);
                    prop_assert_eq!(fi.list(label), li.list(label));
                    prop_assert_eq!(fi.list_graph_count(label), li.list_graph_count(label));
                }
                let graphs = fp.prepared.graphs().len();
                if fp.prepared.interner().is_empty() {
                    continue;
                }
                let mut fast = PathList::universe(graphs);
                let mut slow = PathList::universe(graphs);
                for &pick in &picks {
                    let label = LabelId((pick % fp.prepared.interner().len()) as u32);
                    fast = fi.extend(&fast, label);
                    slow = li.extend(&slow, label);
                    prop_assert_eq!(&fast, &slow);
                    if fast.is_empty() {
                        break;
                    }
                }
            }
        }
    }

    /// Decoding never panics on arbitrary byte-level corruption of a valid
    /// artifact — every mutation either round-trips (checksum collision is
    /// practically impossible) or yields a named error.
    #[test]
    fn single_byte_corruption_never_panics(
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let bytes = encode_artifact(&compiled_address(3, 8));
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= xor;
        let _ = read_artifact_bytes(&corrupt);
    }
}
