//! # ec-artifact — memory-mapped compiled-dataset artifacts
//!
//! A [`CompiledDataset`](ec_core::CompiledDataset) holds everything the
//! budgeted review loop needs — candidate sets, structure partitions, and
//! each partition's prepared graphs and CSR inverted index. This crate gives
//! that state a durable on-disk form: a single versioned binary file with an
//! explicit little-endian layout, a magic/version header, a section table
//! with per-section FNV-1a checksums, and 16-byte-aligned payload sections.
//!
//! The big sections — the posting arenas and offset tables of every
//! partition's [`InvertedIndex`](ec_index::InvertedIndex) — are stored in
//! their in-memory layout (`#[repr(C)]`, all-`u32` fields) and, on
//! little-endian unix targets, are **memory-mapped and reinterpreted in
//! place**: the loaded index borrows the page cache through the
//! [`SliceBacking`](ec_index::SliceBacking) seam instead of copying.
//! Everything else (strings, graphs, candidate sets) is decoded field by
//! field. On other targets a portable read path decodes the same bytes into
//! owned arenas, so artifacts are interchangeable across platforms.
//!
//! Nothing here bounds on the vendored no-op `serde` — the format is written
//! and validated by hand, and every rejection is a named [`ArtifactError`].
//!
//! ```no_run
//! use ec_core::{compile_dataset, ConsolidationConfig};
//! use ec_data::{GeneratorConfig, PaperDataset};
//!
//! let dataset = PaperDataset::Address.generate(&GeneratorConfig {
//!     num_clusters: 10,
//!     seed: 7,
//!     num_sources: 3,
//! });
//! let compiled = compile_dataset(dataset, 0.75, true, &ConsolidationConfig::default());
//! ec_artifact::write_artifact(&compiled, "warm.eca".as_ref()).unwrap();
//! let (loaded, mapped) = ec_artifact::read_artifact("warm.eca".as_ref()).unwrap();
//! assert_eq!(loaded.name, compiled.name);
//! assert!(mapped || cfg!(not(all(unix, target_endian = "little"))));
//! ```

#![warn(missing_docs)]

mod bytes;
mod format;
mod mapping;

pub use format::{decode_artifact, encode_artifact, MAGIC, VERSION};
pub use mapping::ArtifactBytes;

use ec_core::CompiledDataset;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// A failure while writing, mapping or decoding an artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with the artifact magic.
    BadMagic,
    /// The file carries a format version this build cannot read.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The file ends before a structure it promises (header, section table,
    /// or a length-prefixed field).
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A section-table entry points outside the file or is misaligned.
    SectionOutOfBounds {
        /// Index of the offending section.
        section: usize,
    },
    /// A section's stored checksum does not match its bytes.
    ChecksumMismatch {
        /// Index of the offending section.
        section: usize,
    },
    /// The bytes decode to a structurally invalid value (bad index, unsorted
    /// arena, unparsable label, inconsistent component sizes, …).
    Malformed {
        /// What invariant failed.
        context: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact i/o: {e}"),
            ArtifactError::BadMagic => write!(f, "not an ec artifact (bad magic)"),
            ArtifactError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported artifact version {found} (expected {VERSION})"
                )
            }
            ArtifactError::Truncated { context } => {
                write!(f, "truncated artifact while reading {context}")
            }
            ArtifactError::SectionOutOfBounds { section } => {
                write!(f, "section {section} out of bounds or misaligned")
            }
            ArtifactError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            ArtifactError::Malformed { context } => write!(f, "malformed artifact: {context}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// Serializes `compiled` and writes it to `path` (atomic enough for our
/// purposes: the bytes are fully assembled in memory first).
pub fn write_artifact(compiled: &CompiledDataset, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, encode_artifact(compiled))
}

/// Opens `path` and decodes the compiled dataset, memory-mapping the file on
/// little-endian unix targets (reading it into an aligned buffer elsewhere).
/// Returns the dataset and whether the load was a zero-copy mapping.
pub fn read_artifact(path: &Path) -> Result<(CompiledDataset, bool), ArtifactError> {
    let _span = ec_obs::span!("artifact.load");
    let (bytes, mapped) = {
        let _span = ec_obs::span!("artifact.load.map");
        ArtifactBytes::open(path)?
    };
    let compiled = {
        let _span = ec_obs::span!("artifact.load.decode");
        decode_artifact(Arc::new(bytes))?
    };
    Ok((compiled, mapped))
}

/// Decodes an artifact from bytes already in memory (tests, corruption
/// harnesses). The bytes are copied into an aligned buffer first so POD
/// sections stay reinterpretable.
pub fn read_artifact_bytes(data: &[u8]) -> Result<CompiledDataset, ArtifactError> {
    decode_artifact(Arc::new(ArtifactBytes::from_slice(data)))
}
