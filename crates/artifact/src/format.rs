//! The artifact format: encoding a [`CompiledDataset`] to bytes and decoding
//! (with full validation) back.
//!
//! ## Layout
//!
//! ```text
//! [ 0..8)   magic  "ECARTIF1"
//! [ 8..12)  version  u32 LE
//! [12..16)  section count  u32 LE
//! then `count` section-table entries, 32 bytes each:
//!   kind u32 | reserved u32 | offset u64 | byte length u64 | checksum u64
//!   (FNV-1a-64 over LE words, eight lanes per 64-byte block, byte-wise tail)
//! then the payload sections, each starting at a 16-byte-aligned offset
//! (zero padding between sections).
//! ```
//!
//! Section 0 is the STRUCT stream (kind 1): every scalar written explicitly
//! little-endian by [`ByteWriter`] — metadata, the resolved dataset, and per
//! column the candidate sets, partitions, prepared graphs and interner
//! tables. The stream references POD sections by section-table index:
//! kind 2 sections hold [`Posting`] arrays and kind 3 sections hold `u32`
//! arrays, stored in their `#[repr(C)]` little-endian memory layout so the
//! loader can hand them to [`InvertedIndex::from_parts`] as views into the
//! mapping — zero-copy on little-endian targets, portably decoded elsewhere.

use crate::bytes::{fnv1a64_words, ByteReader, ByteWriter};
use crate::mapping::ArtifactBytes;
use crate::ArtifactError;
use ec_core::{CompiledColumn, CompiledDataset, CompiledPartition};
use ec_data::{Cell, Cluster, Dataset, Row};
use ec_dsl::{Dir, PositionFn, StringFn, Term};
use ec_graph::{Edge, LabelId, LabelInterner, LabelList, Replacement, TransformationGraph};
use ec_grouping::PreparedGraphs;
use ec_index::{InvertedIndex, Posting, SharedSlice, SliceBacking};
use ec_replace::{CandidateSet, CellRef};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

/// The 8-byte magic every artifact starts with.
pub const MAGIC: [u8; 8] = *b"ECARTIF1";
/// The format version this build writes and reads.
pub const VERSION: u32 = 1;

/// Tag of the (grouping/candidate) configuration the artifact was compiled
/// with. All `ec` entry points run the default configuration, so a single tag
/// suffices; a future configurable compile bumps this into real config
/// serialization.
const CONFIG_TAG: &str = "default/v1";

const KIND_STRUCT: u32 = 1;
const KIND_POSTINGS: u32 = 2;
const KIND_U32: u32 = 3;

const HEADER_LEN: usize = 16;
const TABLE_ENTRY_LEN: usize = 32;

fn align16(n: usize) -> usize {
    n.div_ceil(16) * 16
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn encode_u32s(vals: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

fn encode_postings(postings: &[Posting]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(postings.len() * 12);
    for p in postings {
        buf.extend_from_slice(&p.graph.0.to_le_bytes());
        buf.extend_from_slice(&p.from.to_le_bytes());
        buf.extend_from_slice(&p.to.to_le_bytes());
    }
    buf
}

/// Serializes `compiled` into the full artifact byte image.
pub fn encode_artifact(compiled: &CompiledDataset) -> Vec<u8> {
    let mut pods: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut push_pod = |kind: u32, payload: Vec<u8>| -> u32 {
        pods.push((kind, payload));
        pods.len() as u32 // section 0 is the STRUCT stream
    };

    let mut w = ByteWriter::new();
    w.str(CONFIG_TAG);
    w.str(&compiled.name);
    w.f64(compiled.threshold);
    w.bool(compiled.has_truth);

    let d = &compiled.dataset;
    w.str(&d.name);
    w.len(d.columns.len());
    for col in &d.columns {
        w.str(col);
    }
    w.len(d.clusters.len());
    for cluster in &d.clusters {
        w.len(cluster.golden.len());
        for g in &cluster.golden {
            w.str(g);
        }
        w.len(cluster.rows.len());
        for row in &cluster.rows {
            w.len(row.source);
            w.len(row.cells.len());
            for cell in &row.cells {
                w.str(&cell.observed);
                w.str(&cell.truth);
            }
        }
    }

    w.len(compiled.columns.len());
    for column in &compiled.columns {
        let reps = &column.candidates.replacements;
        w.len(reps.len());
        for r in reps {
            w.str(r.lhs());
            w.str(r.rhs());
        }
        for r in reps {
            let set = column.candidates.set(r);
            w.len(set.len());
            for cell in set {
                w.len(cell.cluster);
                w.len(cell.row);
            }
        }
        let rep_index: HashMap<&Replacement, u32> = reps
            .iter()
            .enumerate()
            .map(|(i, r)| (r, i as u32))
            .collect();
        w.len(column.partitions.len());
        for partition in &column.partitions {
            w.len(partition.members.len());
            for m in &partition.members {
                w.u32(rep_index[m]);
            }
            let member_index: HashMap<&Replacement, u32> = partition
                .members
                .iter()
                .enumerate()
                .map(|(i, r)| (r, i as u32))
                .collect();
            let prepared = &partition.prepared;
            w.len(prepared.replacements().len());
            for r in prepared.replacements() {
                w.u32(member_index[r]);
            }
            w.len(prepared.skipped().len());
            for r in prepared.skipped() {
                w.u32(member_index[r]);
            }
            w.len(prepared.interner().len());
            for (_, f) in prepared.interner().iter() {
                write_string_fn(&mut w, f);
            }
            // Each graph as two flat blocks — 12-byte edge headers, then the
            // concatenated label ids — so the loader decodes a graph with two
            // bounds checks instead of several per edge.
            for g in prepared.graphs() {
                w.u32(g.t_len() as u32);
                w.len(g.edges().len());
                for e in g.edges() {
                    w.u32(e.from);
                    w.u32(e.to);
                    w.u32(e.labels.len() as u32);
                }
                for e in g.edges() {
                    for l in &e.labels {
                        w.u32(l.0);
                    }
                }
            }
            let (postings, offsets, counts) = prepared.index().raw_parts();
            let postings_section = push_pod(KIND_POSTINGS, encode_postings(postings));
            let offsets_section = push_pod(KIND_U32, encode_u32s(offsets));
            let counts_section = push_pod(KIND_U32, encode_u32s(counts));
            w.u32(postings_section);
            w.u32(offsets_section);
            w.u32(counts_section);
        }
    }

    let mut sections: Vec<(u32, Vec<u8>)> = Vec::with_capacity(1 + pods.len());
    sections.push((KIND_STRUCT, w.into_inner()));
    sections.extend(pods);

    // Lay the sections out after the header and table, 16-byte aligned.
    let table_end = HEADER_LEN + TABLE_ENTRY_LEN * sections.len();
    let mut offsets = Vec::with_capacity(sections.len());
    let mut cursor = table_end;
    for (_, payload) in &sections {
        cursor = align16(cursor);
        offsets.push(cursor);
        cursor += payload.len();
    }

    let mut out = Vec::with_capacity(cursor);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for ((kind, payload), &offset) in sections.iter().zip(&offsets) {
        out.extend_from_slice(&kind.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&(offset as u64).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64_words(payload).to_le_bytes());
    }
    for ((_, payload), &offset) in sections.iter().zip(&offsets) {
        out.resize(offset, 0);
        out.extend_from_slice(payload);
    }
    out
}

// ---------------------------------------------------------------------------
// POD sections
// ---------------------------------------------------------------------------

/// Marker for element types that may be reinterpreted from little-endian
/// artifact bytes in place.
///
/// # Safety
/// Implementors must be `#[repr(C)]`/`#[repr(transparent)]` compositions of
/// `u32` (every bit pattern valid, no padding, alignment ≤ 16), and their
/// little-endian byte image must equal their in-memory layout on
/// little-endian targets.
unsafe trait Pod: Copy + Send + Sync + std::fmt::Debug + 'static {}
unsafe impl Pod for u32 {}
unsafe impl Pod for Posting {}

/// A typed view into one POD section of a loaded artifact: keeps the backing
/// bytes (mapping or aligned buffer) alive and reinterprets them in place.
struct PodSection<T> {
    bytes: Arc<ArtifactBytes>,
    offset: usize,
    count: usize,
    _marker: PhantomData<T>,
}

impl<T: Pod> PodSection<T> {
    fn new(
        bytes: Arc<ArtifactBytes>,
        offset: usize,
        byte_len: usize,
        section: usize,
    ) -> Result<PodSection<T>, ArtifactError> {
        let size = std::mem::size_of::<T>();
        if byte_len % size != 0 {
            return Err(ArtifactError::Malformed {
                context: format!(
                    "section {section}: {byte_len} bytes is not a whole number of {size}-byte elements"
                ),
            });
        }
        let base = bytes.as_bytes()[offset..].as_ptr();
        if (base as usize) % std::mem::align_of::<T>() != 0 {
            return Err(ArtifactError::SectionOutOfBounds { section });
        }
        Ok(PodSection {
            bytes,
            offset,
            count: byte_len / size,
            _marker: PhantomData,
        })
    }
}

impl<T: Pod> SliceBacking<T> for PodSection<T> {
    fn as_slice(&self) -> &[T] {
        let base = self.bytes.as_bytes()[self.offset..].as_ptr();
        // SAFETY: construction checked bounds, element-size divisibility and
        // alignment; T is Pod (all bit patterns valid, matches the stored
        // little-endian layout on this little-endian target); the backing
        // Arc keeps the bytes alive for the view's lifetime.
        unsafe { std::slice::from_raw_parts(base as *const T, self.count) }
    }
}

impl<T> std::fmt::Debug for PodSection<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PodSection {{ offset: {}, count: {} }}",
            self.offset, self.count
        )
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct SectionEntry {
    kind: u32,
    offset: usize,
    len: usize,
}

struct Sections<'a> {
    bytes: &'a Arc<ArtifactBytes>,
    entries: Vec<SectionEntry>,
}

impl<'a> Sections<'a> {
    /// Parses the header and section table, verifying bounds, alignment and
    /// every section checksum.
    fn parse(bytes: &'a Arc<ArtifactBytes>) -> Result<Sections<'a>, ArtifactError> {
        let data = bytes.as_bytes();
        if data.len() < HEADER_LEN {
            return Err(ArtifactError::Truncated { context: "header" });
        }
        if data[..8] != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(ArtifactError::UnsupportedVersion { found: version });
        }
        let count = u32::from_le_bytes(data[12..16].try_into().unwrap()) as usize;
        let table_end =
            HEADER_LEN
                .checked_add(count.checked_mul(TABLE_ENTRY_LEN).ok_or(
                    ArtifactError::Truncated {
                        context: "section table",
                    },
                )?)
                .filter(|&end| end <= data.len())
                .ok_or(ArtifactError::Truncated {
                    context: "section table",
                })?;
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let e = &data[HEADER_LEN + i * TABLE_ENTRY_LEN..table_end.min(data.len())];
            let kind = u32::from_le_bytes(e[0..4].try_into().unwrap());
            let offset = u64::from_le_bytes(e[8..16].try_into().unwrap());
            let len = u64::from_le_bytes(e[16..24].try_into().unwrap());
            let checksum = u64::from_le_bytes(e[24..32].try_into().unwrap());
            let (offset, len) = match (usize::try_from(offset), usize::try_from(len)) {
                (Ok(o), Ok(l)) => (o, l),
                _ => return Err(ArtifactError::SectionOutOfBounds { section: i }),
            };
            let in_bounds = offset % 16 == 0
                && offset >= table_end
                && offset.checked_add(len).is_some_and(|end| end <= data.len());
            if !in_bounds {
                return Err(ArtifactError::SectionOutOfBounds { section: i });
            }
            if fnv1a64_words(&data[offset..offset + len]) != checksum {
                return Err(ArtifactError::ChecksumMismatch { section: i });
            }
            entries.push(SectionEntry { kind, offset, len });
        }
        Ok(Sections { bytes, entries })
    }

    fn entry(&self, section: usize, kind: u32) -> Result<&SectionEntry, ArtifactError> {
        let e = self
            .entries
            .get(section)
            .ok_or(ArtifactError::SectionOutOfBounds { section })?;
        if e.kind != kind {
            return Err(ArtifactError::Malformed {
                context: format!("section {section}: expected kind {kind}, found {}", e.kind),
            });
        }
        Ok(e)
    }

    fn payload(&self, section: usize, kind: u32) -> Result<&'a [u8], ArtifactError> {
        let e = self.entry(section, kind)?;
        Ok(&self.bytes.as_bytes()[e.offset..e.offset + e.len])
    }

    /// A `u32` POD section as a shared slice — in place on little-endian
    /// targets, portably decoded on big-endian ones.
    fn u32s(&self, section: usize) -> Result<SharedSlice<u32>, ArtifactError> {
        let e = self.entry(section, KIND_U32)?;
        #[cfg(target_endian = "little")]
        {
            let pod = PodSection::<u32>::new(Arc::clone(self.bytes), e.offset, e.len, section)?;
            Ok(SharedSlice::external(Arc::new(pod)))
        }
        #[cfg(target_endian = "big")]
        {
            let payload = &self.bytes.as_bytes()[e.offset..e.offset + e.len];
            if payload.len() % 4 != 0 {
                return Err(ArtifactError::Malformed {
                    context: format!("section {section}: not a whole number of u32s"),
                });
            }
            let vals: Vec<u32> = payload
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Ok(vals.into())
        }
    }

    /// A [`Posting`] POD section as a shared slice.
    fn postings(&self, section: usize) -> Result<SharedSlice<Posting>, ArtifactError> {
        let e = self.entry(section, KIND_POSTINGS)?;
        #[cfg(target_endian = "little")]
        {
            let pod = PodSection::<Posting>::new(Arc::clone(self.bytes), e.offset, e.len, section)?;
            Ok(SharedSlice::external(Arc::new(pod)))
        }
        #[cfg(target_endian = "big")]
        {
            let payload = &self.bytes.as_bytes()[e.offset..e.offset + e.len];
            if payload.len() % 12 != 0 {
                return Err(ArtifactError::Malformed {
                    context: format!("section {section}: not a whole number of postings"),
                });
            }
            let vals: Vec<Posting> = payload
                .chunks_exact(12)
                .map(|c| Posting {
                    graph: ec_index::GraphId(u32::from_le_bytes(c[0..4].try_into().unwrap())),
                    from: u32::from_le_bytes(c[4..8].try_into().unwrap()),
                    to: u32::from_le_bytes(c[8..12].try_into().unwrap()),
                })
                .collect();
            Ok(vals.into())
        }
    }
}

fn malformed(context: impl Into<String>) -> ArtifactError {
    ArtifactError::Malformed {
        context: context.into(),
    }
}

fn read_replacement(
    r: &mut ByteReader<'_>,
    what: &'static str,
) -> Result<Replacement, ArtifactError> {
    let lhs = r.str(what)?;
    let rhs = r.str(what)?;
    Replacement::try_new(&lhs, &rhs)
        .ok_or_else(|| malformed(format!("{what}: invalid replacement {lhs:?} -> {rhs:?}")))
}

// The DSL label functions are encoded structurally, one tag byte per node —
// never as display text: reparsing hundreds of thousands of label functions
// through the DSL parser dominated artifact load time. `i32` ordinals travel
// as their `u32` bit patterns.

fn write_term(w: &mut ByteWriter, term: &Term) {
    match term {
        Term::Upper => w.u8(0),
        Term::Lower => w.u8(1),
        Term::Digits => w.u8(2),
        Term::Whitespace => w.u8(3),
        Term::Literal(s) => {
            w.u8(4);
            w.str(s);
        }
    }
}

fn read_term(r: &mut ByteReader<'_>) -> Result<Term, ArtifactError> {
    Ok(match r.u8("term tag")? {
        0 => Term::Upper,
        1 => Term::Lower,
        2 => Term::Digits,
        3 => Term::Whitespace,
        4 => {
            let s = r.str_ref("literal term")?;
            if s.is_empty() {
                return Err(malformed("literal terms must be non-empty"));
            }
            Term::literal(s)
        }
        other => return Err(malformed(format!("unknown term tag {other}"))),
    })
}

fn write_position_fn(w: &mut ByteWriter, position: &PositionFn) {
    match position {
        PositionFn::ConstPos(k) => {
            w.u8(0);
            w.u32(*k as u32);
        }
        PositionFn::MatchPos { term, k, dir } => {
            w.u8(1);
            write_term(w, term);
            w.u32(*k as u32);
            w.u8(matches!(dir, Dir::End) as u8);
        }
    }
}

fn read_position_fn(r: &mut ByteReader<'_>) -> Result<PositionFn, ArtifactError> {
    Ok(match r.u8("position tag")? {
        0 => PositionFn::ConstPos(r.u32("const position")? as i32),
        1 => {
            let term = read_term(r)?;
            let k = r.u32("match ordinal")? as i32;
            let dir = match r.u8("match direction")? {
                0 => Dir::Begin,
                1 => Dir::End,
                other => return Err(malformed(format!("unknown direction tag {other}"))),
            };
            PositionFn::MatchPos { term, k, dir }
        }
        other => return Err(malformed(format!("unknown position tag {other}"))),
    })
}

fn write_string_fn(w: &mut ByteWriter, f: &StringFn) {
    match f {
        StringFn::ConstantStr(s) => {
            w.u8(0);
            w.str(s);
        }
        StringFn::SubStr(l, r) => {
            w.u8(1);
            write_position_fn(w, l);
            write_position_fn(w, r);
        }
        StringFn::Prefix { term, k } => {
            w.u8(2);
            write_term(w, term);
            w.u32(*k as u32);
        }
        StringFn::Suffix { term, k } => {
            w.u8(3);
            write_term(w, term);
            w.u32(*k as u32);
        }
    }
}

fn read_string_fn(r: &mut ByteReader<'_>) -> Result<StringFn, ArtifactError> {
    Ok(match r.u8("label tag")? {
        0 => StringFn::constant(r.str_ref("constant string")?),
        1 => {
            let l = read_position_fn(r)?;
            let rr = read_position_fn(r)?;
            StringFn::SubStr(l, rr)
        }
        2 => {
            let term = read_term(r)?;
            let k = r.u32("affix ordinal")? as i32;
            StringFn::Prefix { term, k }
        }
        3 => {
            let term = read_term(r)?;
            let k = r.u32("affix ordinal")? as i32;
            StringFn::Suffix { term, k }
        }
        other => return Err(malformed(format!("unknown label tag {other}"))),
    })
}

fn read_index<'v, T>(
    r: &mut ByteReader<'_>,
    pool: &'v [T],
    what: &'static str,
) -> Result<&'v T, ArtifactError> {
    let idx = r.u32(what)? as usize;
    pool.get(idx)
        .ok_or_else(|| malformed(format!("{what}: index {idx} out of range ({})", pool.len())))
}

/// Decodes and validates a full artifact.
pub fn decode_artifact(bytes: Arc<ArtifactBytes>) -> Result<CompiledDataset, ArtifactError> {
    let sections = Sections::parse(&bytes)?;
    let stream = sections.payload(0, KIND_STRUCT)?;
    let mut r = ByteReader::new(stream);

    let config_tag = r.str("config tag")?;
    if config_tag != CONFIG_TAG {
        return Err(malformed(format!(
            "compiled with configuration {config_tag:?}, this build expects {CONFIG_TAG:?}"
        )));
    }
    let name = r.str("dataset name")?;
    let threshold = r.f64("threshold")?;
    if !(0.0..=1.0).contains(&threshold) {
        return Err(malformed(format!("threshold {threshold} out of [0, 1]")));
    }
    let has_truth = r.bool("has_truth flag")?;

    // The resolved dataset.
    let ds_name = r.str("dataset name")?;
    let num_columns = r.len("column count")?;
    let mut columns = Vec::with_capacity(num_columns);
    for _ in 0..num_columns {
        columns.push(r.str("column name")?);
    }
    let num_clusters = r.len("cluster count")?;
    let mut clusters = Vec::with_capacity(num_clusters);
    for _ in 0..num_clusters {
        let num_golden = r.len("golden count")?;
        let mut golden = Vec::with_capacity(num_golden);
        for _ in 0..num_golden {
            golden.push(r.str("golden value")?);
        }
        let num_rows = r.len("row count")?;
        let mut rows = Vec::with_capacity(num_rows);
        for _ in 0..num_rows {
            let source = r.len("row source")?;
            let num_cells = r.len("cell count")?;
            if num_cells != num_columns {
                return Err(malformed(format!(
                    "row has {num_cells} cells for {num_columns} columns"
                )));
            }
            let mut cells = Vec::with_capacity(num_cells);
            for _ in 0..num_cells {
                cells.push(Cell {
                    observed: r.str("cell observed value")?,
                    truth: r.str("cell truth value")?,
                });
            }
            rows.push(Row { source, cells });
        }
        clusters.push(Cluster { rows, golden });
    }
    let mut dataset = Dataset::new(ds_name, columns);
    dataset.clusters = clusters;

    // Per-column compiled state.
    let num_compiled = r.len("compiled column count")?;
    if num_compiled != num_columns {
        return Err(malformed(format!(
            "{num_compiled} compiled columns for {num_columns} dataset columns"
        )));
    }
    let mut compiled_columns = Vec::with_capacity(num_compiled);
    for _ in 0..num_compiled {
        let num_reps = r.len("candidate count")?;
        let mut replacements = Vec::with_capacity(num_reps);
        for _ in 0..num_reps {
            replacements.push(read_replacement(&mut r, "candidate replacement")?);
        }
        let mut sets = HashMap::with_capacity(num_reps);
        for rep in &replacements {
            let set_len = r.len("replacement set size")?;
            let mut set = Vec::with_capacity(set_len);
            for _ in 0..set_len {
                let cluster = r.len("cell cluster")?;
                let row = r.len("cell row")?;
                let valid = dataset
                    .clusters
                    .get(cluster)
                    .is_some_and(|c| row < c.rows.len());
                if !valid {
                    return Err(malformed(format!(
                        "replacement set cell ({cluster}, {row}) outside the dataset"
                    )));
                }
                set.push(CellRef { cluster, row });
            }
            sets.insert(rep.clone(), set);
        }
        let candidates = CandidateSet { replacements, sets };

        let num_partitions = r.len("partition count")?;
        let mut partitions = Vec::with_capacity(num_partitions);
        for _ in 0..num_partitions {
            let num_members = r.len("partition member count")?;
            let mut members = Vec::with_capacity(num_members);
            for _ in 0..num_members {
                members.push(
                    read_index(&mut r, &candidates.replacements, "partition member")?.clone(),
                );
            }
            let num_retained = r.len("retained count")?;
            let mut retained = Vec::with_capacity(num_retained);
            for _ in 0..num_retained {
                retained.push(read_index(&mut r, &members, "retained replacement")?.clone());
            }
            let num_skipped = r.len("skipped count")?;
            let mut skipped = Vec::with_capacity(num_skipped);
            for _ in 0..num_skipped {
                skipped.push(read_index(&mut r, &members, "skipped replacement")?.clone());
            }
            let num_labels = r.len("interner size")?;
            let mut fns = Vec::with_capacity(num_labels);
            for _ in 0..num_labels {
                fns.push(read_string_fn(&mut r)?);
            }
            let interner = LabelInterner::from_ordered(fns)
                .ok_or_else(|| malformed("duplicate interned label".to_string()))?;
            let mut graphs = Vec::with_capacity(num_retained);
            for rep in &retained {
                let t_len = r.u32("graph t_len")?;
                let num_edges = r.len("graph edge count")?;
                let headers = r.bytes(
                    num_edges
                        .checked_mul(12)
                        .ok_or_else(|| malformed("edge header size overflow".to_string()))?,
                    "graph edge headers",
                )?;
                let total_labels: u64 = headers
                    .chunks_exact(12)
                    .map(|h| u32::from_le_bytes(h[8..12].try_into().unwrap()) as u64)
                    .sum();
                let label_bytes = usize::try_from(total_labels)
                    .ok()
                    .and_then(|n| n.checked_mul(4))
                    .ok_or_else(|| malformed("graph label block size overflow".to_string()))?;
                let label_block = r.bytes(label_bytes, "graph label block")?;
                let mut edges = Vec::with_capacity(num_edges);
                let mut offset = 0usize;
                let mut max_label = 0u32;
                for h in headers.chunks_exact(12) {
                    let from = u32::from_le_bytes(h[0..4].try_into().unwrap());
                    let to = u32::from_le_bytes(h[4..8].try_into().unwrap());
                    let n = u32::from_le_bytes(h[8..12].try_into().unwrap()) as usize;
                    let mut labels = LabelList::with_capacity(n);
                    labels.extend(
                        label_block[offset..offset + n * 4]
                            .chunks_exact(4)
                            .map(|raw| {
                                let l = u32::from_le_bytes(raw.try_into().unwrap());
                                max_label = max_label.max(l);
                                LabelId(l)
                            }),
                    );
                    offset += n * 4;
                    edges.push(Edge { from, to, labels });
                }
                // The one label-bound check for this graph: folding the max
                // while the ids are being copied is free, and
                // `PreparedGraphs::from_parts` relies on it having happened.
                if !label_block.is_empty() && max_label as usize >= interner.len() {
                    return Err(malformed(format!(
                        "edge label {max_label} outside the interner ({})",
                        interner.len()
                    )));
                }
                let graph = TransformationGraph::from_parts(rep.clone(), t_len, edges)
                    .ok_or_else(|| malformed("invalid transformation graph edges".to_string()))?;
                graphs.push(graph);
            }
            let postings_section = r.u32("postings section ref")? as usize;
            let offsets_section = r.u32("offsets section ref")? as usize;
            let counts_section = r.u32("counts section ref")? as usize;
            let index = InvertedIndex::from_parts(
                sections.postings(postings_section)?,
                sections.u32s(offsets_section)?,
                sections.u32s(counts_section)?,
            )
            .map_err(|e| malformed(format!("inverted index layout: {e}")))?;
            if index.num_labels() != interner.len() {
                return Err(malformed(format!(
                    "index covers {} labels, interner has {}",
                    index.num_labels(),
                    interner.len()
                )));
            }
            let prepared = PreparedGraphs::from_parts(retained, graphs, skipped, interner, index)
                .ok_or_else(|| {
                malformed("inconsistent prepared-graphs components".to_string())
            })?;
            partitions.push(CompiledPartition {
                members,
                prepared: Arc::new(prepared),
            });
        }
        compiled_columns.push(CompiledColumn {
            candidates,
            partitions,
        });
    }
    r.finish("struct stream")?;

    Ok(CompiledDataset {
        name,
        threshold,
        has_truth,
        dataset,
        columns: compiled_columns,
    })
}
