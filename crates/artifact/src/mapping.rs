//! The bytes behind a loaded artifact: a read-only memory mapping on
//! little-endian unix targets, or an owned 16-byte-aligned buffer everywhere
//! else (and whenever mapping fails). Both keep the artifact's payload
//! sections at their in-file alignment, so POD sections can be reinterpreted
//! in place on little-endian targets.

use std::fmt;
use std::io;
use std::path::Path;

/// A read-only `mmap` of a whole file, unmapped on drop. The platform shim is
/// deliberately tiny: `mmap`/`munmap` via `extern "C"`, `PROT_READ`,
/// `MAP_PRIVATE` — constants that are identical across the unix platforms the
/// workspace builds on.
#[cfg(all(unix, target_endian = "little"))]
mod sys {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    /// Linux-only: pre-fault the whole mapping inside the `mmap` call. The
    /// loader touches every byte immediately anyway (checksum validation),
    /// and one populated mapping is far cheaper than tens of thousands of
    /// individual minor faults taken mid-decode. Other unix targets just
    /// fault lazily.
    #[cfg(target_os = "linux")]
    const MAP_POPULATE: i32 = 0x8000;
    #[cfg(not(target_os = "linux"))]
    const MAP_POPULATE: i32 = 0;

    pub struct Mapping {
        ptr: *mut u8,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ and never mutated; sharing the
    // pointer across threads is sharing immutable memory.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        pub fn map(file: &File, len: usize) -> io::Result<Mapping> {
            if len == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "cannot map an empty file",
                ));
            }
            // SAFETY: a fresh PROT_READ/MAP_PRIVATE mapping of a file we hold
            // open; failure is reported as MAP_FAILED (-1).
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE | MAP_POPULATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mapping { ptr, len })
        }

        pub fn as_bytes(&self) -> &[u8] {
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; the slice's lifetime is tied to &self.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: exactly the region map() returned, unmapped once.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// An owned byte buffer whose base address is 16-byte aligned (backed by
/// `u128` words), matching the artifact's section alignment.
pub struct AlignedBytes {
    buf: Vec<u128>,
    len: usize,
}

impl AlignedBytes {
    /// Copies `data` into a fresh aligned buffer.
    pub fn from_slice(data: &[u8]) -> AlignedBytes {
        let words = data.len().div_ceil(16);
        let mut buf = vec![0u128; words];
        // SAFETY: the destination holds `words * 16 >= data.len()` bytes and
        // the regions cannot overlap (buf was just allocated).
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), buf.as_mut_ptr() as *mut u8, data.len());
        }
        AlignedBytes {
            buf,
            len: data.len(),
        }
    }

    /// The stored bytes.
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: the buffer owns at least `len` initialized bytes.
        unsafe { std::slice::from_raw_parts(self.buf.as_ptr() as *const u8, self.len) }
    }
}

/// The backing storage of a loaded artifact.
pub enum ArtifactBytes {
    /// A live read-only memory mapping (the zero-copy path).
    #[cfg(all(unix, target_endian = "little"))]
    Mapped(sys::Mapping),
    /// An owned aligned copy (non-unix targets, big-endian targets via the
    /// portable decode path, failed mappings, in-memory tests).
    Owned(AlignedBytes),
}

impl ArtifactBytes {
    /// Opens `path`, preferring a memory mapping where the zero-copy
    /// reinterpretation is sound (little-endian unix); falls back to reading
    /// the file into an aligned buffer. The `bool` reports whether the bytes
    /// are mapped.
    pub fn open(path: &Path) -> io::Result<(ArtifactBytes, bool)> {
        #[cfg(all(unix, target_endian = "little"))]
        {
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            if let Ok(len) = usize::try_from(len) {
                if len > 0 {
                    if let Ok(mapping) = sys::Mapping::map(&file, len) {
                        return Ok((ArtifactBytes::Mapped(mapping), true));
                    }
                }
            }
        }
        let data = std::fs::read(path)?;
        Ok((ArtifactBytes::Owned(AlignedBytes::from_slice(&data)), false))
    }

    /// Wraps in-memory bytes (copied into an aligned buffer).
    pub fn from_slice(data: &[u8]) -> ArtifactBytes {
        ArtifactBytes::Owned(AlignedBytes::from_slice(data))
    }

    /// The artifact's bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            #[cfg(all(unix, target_endian = "little"))]
            ArtifactBytes::Mapped(m) => m.as_bytes(),
            ArtifactBytes::Owned(b) => b.as_bytes(),
        }
    }
}

impl fmt::Debug for ArtifactBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, len) = match self {
            #[cfg(all(unix, target_endian = "little"))]
            ArtifactBytes::Mapped(m) => ("mapped", m.as_bytes().len()),
            ArtifactBytes::Owned(b) => ("owned", b.as_bytes().len()),
        };
        write!(f, "ArtifactBytes {{ {kind}, {len} bytes }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_bytes_round_trip_and_alignment() {
        for n in [0usize, 1, 15, 16, 17, 1000] {
            let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            let aligned = AlignedBytes::from_slice(&data);
            assert_eq!(aligned.as_bytes(), &data[..]);
            assert_eq!(aligned.as_bytes().as_ptr() as usize % 16, 0);
        }
    }

    #[cfg(all(unix, target_endian = "little"))]
    #[test]
    fn open_maps_real_files() {
        let path = std::env::temp_dir().join(format!("ec-artifact-map-{}", std::process::id()));
        std::fs::write(&path, b"hello mapping").unwrap();
        let (bytes, mapped) = ArtifactBytes::open(&path).unwrap();
        assert!(mapped);
        assert_eq!(bytes.as_bytes(), b"hello mapping");
        drop(bytes);
        std::fs::remove_file(&path).unwrap();
    }
}
