//! Explicit little-endian primitives: the byte writer/reader for the STRUCT
//! stream, and the FNV-1a section checksum.

use crate::ArtifactError;

/// FNV-1a 64-bit over little-endian words — the per-section checksum.
///
/// Checksum validation walks every payload byte on the cold-start path, and
/// the posting arenas are tens of megabytes, so throughput matters twice
/// over: words instead of bytes (8x fewer state updates), and eight
/// independent lanes per 64-byte block, because the serial
/// `h = (h ^ w) * PRIME` dependency otherwise caps a single lane at one
/// multiply latency per word. The lanes are folded together with the same
/// FNV step and the sub-block tail is folded word- then byte-wise, so every
/// byte still moves the final state (any single-byte change changes the word
/// and lane it lives in). Inputs shorter than one block skip the lanes
/// entirely, and inputs shorter than one word *are* classic byte-wise
/// FNV-1a, which the standard test vectors below pin.
pub fn fnv1a64_words(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const LANES: usize = 8;
    let mut blocks = bytes.chunks_exact(8 * LANES);
    let mut lanes = [BASIS; LANES];
    for (i, lane) in lanes.iter_mut().enumerate() {
        *lane = BASIS.rotate_left(8 * i as u32);
    }
    for block in &mut blocks {
        for (lane, raw) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            *lane = (*lane ^ u64::from_le_bytes(raw.try_into().unwrap())).wrapping_mul(PRIME);
        }
    }
    let mut h = if bytes.len() < 8 * LANES {
        BASIS
    } else {
        lanes
            .into_iter()
            .fold(BASIS, |h, lane| (h ^ lane).wrapping_mul(PRIME))
    };
    let mut words = blocks.remainder().chunks_exact(8);
    for w in &mut words {
        h ^= u64::from_le_bytes(w.try_into().unwrap());
        h = h.wrapping_mul(PRIME);
    }
    for &b in words.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Appends explicitly little-endian fields to a growing buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The assembled bytes.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` fields travel as `u64` so the format is identical on every
    /// pointer width.
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Length-prefixed UTF-8.
    pub fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian reads over a byte slice. Every failure names
/// the structure being read.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], ArtifactError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or(ArtifactError::Truncated { context })?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub fn u8(&mut self, context: &'static str) -> Result<u8, ArtifactError> {
        Ok(self.take(1, context)?[0])
    }

    pub fn u32(&mut self, context: &'static str) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    pub fn u64(&mut self, context: &'static str) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        ))
    }

    /// A `u64` length prefix. Every length in the format counts either bytes
    /// or elements that occupy at least one byte each, so any value larger
    /// than the remaining stream is malformed — rejecting it here keeps a
    /// corrupt prefix from driving a huge allocation before the per-element
    /// reads would hit the end anyway.
    pub fn len(&mut self, context: &'static str) -> Result<usize, ArtifactError> {
        let v = self.u64(context)?;
        let remaining = (self.data.len() - self.pos) as u64;
        if v > remaining {
            return Err(ArtifactError::Malformed {
                context: format!("{context}: length {v} exceeds the {remaining} remaining bytes"),
            });
        }
        Ok(v as usize)
    }

    pub fn f64(&mut self, context: &'static str) -> Result<f64, ArtifactError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    pub fn bool(&mut self, context: &'static str) -> Result<bool, ArtifactError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(ArtifactError::Malformed {
                context: format!("{context}: bad bool byte {other}"),
            }),
        }
    }

    pub fn str(&mut self, context: &'static str) -> Result<String, ArtifactError> {
        Ok(self.str_ref(context)?.to_owned())
    }

    /// Like [`ByteReader::str`], but borrows the text from the underlying
    /// buffer. The interner decode reads hundreds of thousands of short
    /// strings whose only destination is an `Arc<str>`; going through an
    /// owned `String` first would allocate and copy each one twice.
    pub fn str_ref(&mut self, context: &'static str) -> Result<&'a str, ArtifactError> {
        let n = self.len(context)?;
        let bytes = self.take(n, context)?;
        std::str::from_utf8(bytes).map_err(|_| ArtifactError::Malformed {
            context: format!("{context}: invalid UTF-8"),
        })
    }

    /// A raw `n`-byte slice of the stream. Callers decode fixed-stride
    /// payloads (e.g. an edge's label block) with one bounds check instead
    /// of one per element.
    pub fn bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], ArtifactError> {
        self.take(n, context)
    }

    /// Asserts the stream was fully consumed.
    pub fn finish(&self, context: &'static str) -> Result<(), ArtifactError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(ArtifactError::Malformed {
                context: format!(
                    "{context}: {} trailing bytes after the last field",
                    self.data.len() - self.pos
                ),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(0.75);
        w.bool(true);
        w.str("héllo");
        let bytes = w.into_inner();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.f64("d").unwrap(), 0.75);
        assert!(r.bool("e").unwrap());
        assert_eq!(r.str("f").unwrap(), "héllo");
        r.finish("stream").unwrap();
    }

    #[test]
    fn truncation_and_trailing_bytes_are_named_errors() {
        let mut w = ByteWriter::new();
        w.u32(5);
        let bytes = w.into_inner();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.u64("needs eight"),
            Err(ArtifactError::Truncated {
                context: "needs eight"
            })
        ));
        let mut r = ByteReader::new(&bytes);
        r.u8("one").unwrap();
        assert!(matches!(
            r.finish("stream"),
            Err(ArtifactError::Malformed { .. })
        ));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Sub-word inputs take the byte-wise path: standard FNV-1a 64 vectors.
        assert_eq!(fnv1a64_words(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64_words(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64_words(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn word_checksum_sees_every_byte_and_the_length() {
        // One short input (words + byte tail) and one long enough to engage
        // the eight lanes plus a sub-block tail.
        let long: Vec<u8> = (0..150u8).collect();
        for base in [&b"0123456789abcdefXYZ"[..], &long] {
            let h = fnv1a64_words(base);
            for i in 0..base.len() {
                for xor in [0x01u8, 0x80] {
                    let mut flipped = base.to_vec();
                    flipped[i] ^= xor;
                    assert_ne!(fnv1a64_words(&flipped), h, "flip at byte {i}");
                }
            }
            // Trailing zero bytes still move the state.
            let mut extended = base.to_vec();
            extended.push(0);
            assert_ne!(fnv1a64_words(&extended), h);
        }
        assert_ne!(fnv1a64_words(&[0u8; 8]), fnv1a64_words(&[]));
        assert_ne!(fnv1a64_words(&[0u8; 64]), fnv1a64_words(&[0u8; 72]));
    }
}
