//! An in-memory file namespace implementing the CLI's input/output openers.
//!
//! Commands never touch the file system directly — they go through the
//! [`crate::OpenInput`] / [`crate::OpenOutput`] callbacks — so a map of
//! path → bytes is a complete test double for it. The unit tests, the
//! integration suites and the root serve tests all drive `ec` subcommands
//! in-process through [`MemFiles`]; embedders can use it to run commands
//! against in-memory data too.

use crate::{CliError, InputReader, OutputSink};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, Mutex};

type Shared = Arc<Mutex<BTreeMap<String, Arc<Mutex<Vec<u8>>>>>>;

/// A shared, clonable in-memory path → contents map.
#[derive(Debug, Clone, Default)]
pub struct MemFiles {
    files: Shared,
}

/// A sink that appends into one [`MemFiles`] entry.
struct MemSink {
    buffer: Arc<Mutex<Vec<u8>>>,
}

impl Write for MemSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.buffer.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl MemFiles {
    /// An empty namespace.
    pub fn new() -> Self {
        MemFiles::default()
    }

    /// Creates (or replaces) a file.
    pub fn insert(&self, path: &str, contents: &str) {
        self.files.lock().unwrap().insert(
            path.to_string(),
            Arc::new(Mutex::new(contents.as_bytes().to_vec())),
        );
    }

    /// The UTF-8 contents of a file, if present.
    pub fn get(&self, path: &str) -> Option<String> {
        let files = self.files.lock().unwrap();
        let buffer = files.get(path)?;
        let bytes = buffer.lock().unwrap().clone();
        Some(String::from_utf8(bytes).expect("command output is UTF-8"))
    }

    /// The raw contents of a file, if present — for binary outputs like the
    /// compiled artifacts `ec compile` writes.
    pub fn get_bytes(&self, path: &str) -> Option<Vec<u8>> {
        let files = self.files.lock().unwrap();
        let buffer = files.get(path)?;
        let bytes = buffer.lock().unwrap().clone();
        Some(bytes)
    }

    /// All paths present, sorted.
    pub fn paths(&self) -> Vec<String> {
        self.files.lock().unwrap().keys().cloned().collect()
    }

    /// An opener for `--input`-style reads; unknown paths are IO errors,
    /// matching the binary's behavior on a missing file.
    pub fn input_opener(&self) -> impl Fn(&str) -> Result<InputReader, CliError> + 'static {
        let files = Arc::clone(&self.files);
        move |path: &str| {
            let files = files.lock().unwrap();
            let buffer = files
                .get(path)
                .ok_or_else(|| CliError::Io(format!("no such file: {path}")))?;
            let bytes = buffer.lock().unwrap().clone();
            Ok(Box::new(std::io::Cursor::new(bytes)) as InputReader)
        }
    }

    /// An opener for `--output`-style writes; the file appears (empty) as
    /// soon as the command opens it and fills as the command streams.
    pub fn output_opener(&self) -> impl Fn(&str) -> Result<OutputSink, CliError> + 'static {
        let files = Arc::clone(&self.files);
        move |path: &str| {
            let buffer = Arc::new(Mutex::new(Vec::new()));
            files
                .lock()
                .unwrap()
                .insert(path.to_string(), Arc::clone(&buffer));
            Ok(Box::new(MemSink { buffer }) as OutputSink)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_reports_missing_files() {
        let fs = MemFiles::new();
        fs.insert("a.csv", "x,y\n");
        assert_eq!(fs.get("a.csv").as_deref(), Some("x,y\n"));
        assert!(fs.get("b.csv").is_none());
        assert!((fs.input_opener())("missing").is_err());
        let mut sink = (fs.output_opener())("out.txt").unwrap();
        sink.write_all(b"hello ").unwrap();
        sink.write_all(b"world").unwrap();
        sink.flush().unwrap();
        drop(sink);
        assert_eq!(fs.get("out.txt").as_deref(), Some("hello world"));
        assert_eq!(fs.paths(), vec!["a.csv".to_string(), "out.txt".to_string()]);
    }
}
