//! The `ec` binary: argument collection, file I/O, and exit codes. All command
//! logic lives in the `ec-cli` library so it can be unit tested.

use ec_cli::{parse, run, CliError};
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse(&args) {
        Ok(parsed) => parsed,
        Err(err) => {
            eprintln!("{err}");
            eprintln!("run `ec help` for usage");
            return ExitCode::from(2);
        }
    };

    let read_input = |path: &str| -> Result<String, CliError> {
        std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))
    };

    let stdin = std::io::stdin();
    let mut stdin_lock = stdin.lock();
    let stdout = std::io::stdout();
    let mut stdout_lock = stdout.lock();

    match run(&parsed, &read_input, &mut stdin_lock, &mut stdout_lock) {
        Ok(output) => {
            for (path, contents) in &output.files {
                if let Err(e) = std::fs::write(path, contents) {
                    eprintln!("io error: failed to write {path}: {e}");
                    return ExitCode::from(1);
                }
                let _ = writeln!(stdout_lock, "wrote {path}");
            }
            let _ = write!(stdout_lock, "{}", output.stdout);
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("{err}");
            ExitCode::from(match err {
                CliError::Usage(_) => 2,
                _ => 1,
            })
        }
    }
}
