//! The `ec` binary: argument collection, file I/O, and exit codes. All command
//! logic lives in the `ec-cli` library so it can be unit tested.

use ec_cli::{parse, run, CliError, InputReader, OutputSink};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse(&args) {
        Ok(parsed) => parsed,
        Err(err) => {
            eprintln!("{err}");
            eprintln!("run `ec help` for usage");
            return ExitCode::from(2);
        }
    };

    // Inputs are consumed through streaming CSV readers, so a buffered file
    // handle is all a command needs — the file is never slurped into memory.
    let open_input = |path: &str| -> Result<InputReader, CliError> {
        File::open(path)
            .map(|file| Box::new(BufReader::new(file)) as InputReader)
            .map_err(|e| CliError::Io(format!("{path}: {e}")))
    };
    // Outputs are streamed cluster-at-a-time through a buffered writer; the
    // commands flush before returning, so errors surface with the path.
    let open_output = |path: &str| -> Result<OutputSink, CliError> {
        File::create(path)
            .map(|file| Box::new(BufWriter::new(file)) as OutputSink)
            .map_err(|e| CliError::Io(format!("failed to create {path}: {e}")))
    };

    let stdin = std::io::stdin();
    let mut stdin_lock = stdin.lock();
    let stdout = std::io::stdout();
    let mut stdout_lock = stdout.lock();

    match run(
        &parsed,
        &open_input,
        &open_output,
        &mut stdin_lock,
        &mut stdout_lock,
    ) {
        Ok(output) => {
            for path in &output.written {
                let _ = writeln!(stdout_lock, "wrote {path}");
            }
            let _ = write!(stdout_lock, "{}", output.stdout);
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("{err}");
            ExitCode::from(match err {
                CliError::Usage(_) => 2,
                _ => 1,
            })
        }
    }
}
