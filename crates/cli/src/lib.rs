//! # ec-cli — the `ec` command-line tool
//!
//! A thin, file-oriented front end over the `entity-consolidation` workspace:
//! it reads clustered (or flat) CSV files, runs the profiling / grouping /
//! consolidation / resolution machinery, and writes standardized CSV and
//! golden-record CSV files back out — plus `ec serve`, which turns the same
//! machinery into a long-lived HTTP service.
//!
//! All command logic lives in this library crate and is pure with respect to
//! the file system: commands receive a reader over their input (consumed
//! incrementally through the `ec-data` streaming CSV readers, so the raw
//! document is never buffered whole) and an *output opener* mapping an
//! `--output` path to a writer, through which they stream their results
//! cluster-at-a-time — no output file is ever materialized in memory either.
//! Every subcommand is therefore unit-testable without touching disk (see
//! [`memio`]); the `ec` binary in `main.rs` is only argument collection and
//! buffered file opening.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod interactive;
pub mod memio;

pub use args::{parse, usage, ParsedArgs};
pub use interactive::InteractiveOracle;

use std::fmt;

/// An error surfaced to the `ec` user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The command line was malformed (unknown flag, missing value, …).
    Usage(String),
    /// A file could not be read or written.
    Io(String),
    /// The input data could not be parsed or is inconsistent.
    Data(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(msg) => write!(f, "io error: {msg}"),
            CliError::Data(msg) => write!(f, "data error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// What a subcommand produced: text for stdout plus the paths it streamed
/// output files to (already written through the output opener by the time
/// the command returns — nothing is buffered for the caller to write).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommandOutput {
    /// Text to print to standard output.
    pub stdout: String,
    /// Paths of the files the command wrote, in write order. The binary
    /// echoes one `wrote <path>` line per entry.
    pub written: Vec<String>,
}

impl CommandOutput {
    /// An output that only prints text.
    pub fn text(stdout: impl Into<String>) -> Self {
        CommandOutput {
            stdout: stdout.into(),
            written: Vec::new(),
        }
    }

    /// Records a path as written.
    pub fn note_written(mut self, path: impl Into<String>) -> Self {
        self.written.push(path.into());
        self
    }
}

/// The reader a command consumes its `--input` through. Commands parse it
/// incrementally (via the `ec-data` streaming CSV readers), so the opener
/// should hand back a *buffered* reader — the binary wraps `File` in a
/// `BufReader`, tests use [`memio`] — and the input never has to fit in
/// memory.
pub type InputReader = Box<dyn std::io::Read>;

/// The writer a command streams an `--output` file through. The binary hands
/// back a `BufWriter<File>`; tests use [`memio`]. Commands write
/// cluster-at-a-time (or record-at-a-time) and flush before returning, so
/// the produced file never has to fit in memory.
pub type OutputSink = Box<dyn std::io::Write>;

/// Maps an `--input` path to a reader.
pub type OpenInput<'a> = &'a dyn Fn(&str) -> Result<InputReader, CliError>;

/// Maps an `--output` path to a writer.
pub type OpenOutput<'a> = &'a dyn Fn(&str) -> Result<OutputSink, CliError>;

/// Runs one parsed subcommand. `open_input` maps an `--input` (or
/// `--library`) path to a reader over its contents; `open_output` maps an
/// `--output` path to a writer the command streams into; `stdin` provides
/// the answers and `prompt_out` receives the prompts of
/// `--mode interactive` (and `ec serve`'s startup line).
pub fn run(
    parsed: &ParsedArgs,
    open_input: OpenInput<'_>,
    open_output: OpenOutput<'_>,
    stdin: &mut dyn std::io::BufRead,
    prompt_out: &mut dyn std::io::Write,
) -> Result<CommandOutput, CliError> {
    // `--trace FILE` turns on stage tracing before any stage runs. The sink
    // is process-global and write-once (like EC_TRACE), so only the first
    // `run` of a process can set it.
    if let Some(path) = parsed.get("trace") {
        ec_obs::trace::init(path)
            .map_err(|e| CliError::Io(format!("cannot open --trace {path}: {e}")))?;
    }
    match parsed.command.as_str() {
        "help" => Ok(CommandOutput::text(usage())),
        "generate" => commands::generate(parsed, open_output),
        "profile" => {
            let input = open_input(parsed.require("input")?)?;
            commands::profile(parsed, input)
        }
        "groups" => {
            let input = open_input(parsed.require("input")?)?;
            commands::groups(parsed, input)
        }
        "consolidate" => {
            let input = open_artifact_input(parsed, open_input)?;
            commands::consolidate(parsed, input, open_output, stdin, prompt_out)
        }
        "resolve" => {
            let input = open_input(parsed.require("input")?)?;
            commands::resolve(parsed, input, open_output)
        }
        "pipeline" => {
            let input = open_artifact_input(parsed, open_input)?;
            commands::pipeline(parsed, input, open_output, stdin, prompt_out)
        }
        "ingest" => {
            let input = open_input(parsed.require("input")?)?;
            commands::ingest(parsed, input, open_output)
        }
        "apply" => commands::apply(parsed, open_input, open_output),
        "compile" => {
            let input = open_input(parsed.require("input")?)?;
            commands::compile(parsed, input, open_output)
        }
        "serve" => commands::serve(parsed, open_input, prompt_out),
        other => Err(CliError::Usage(format!("unknown subcommand '{other}'"))),
    }
}

/// Opens `--input` for a command that can run from a compiled `--artifact`
/// instead: with an artifact and no input, the command gets an empty reader
/// (the artifact supplies the dataset); without either, the usual missing
/// `--input` error.
fn open_artifact_input(
    parsed: &ParsedArgs,
    open_input: OpenInput<'_>,
) -> Result<InputReader, CliError> {
    match parsed.get("input") {
        Some(path) => open_input(path),
        None if parsed.get("artifact").is_some() => Ok(Box::new(std::io::empty())),
        None => Err(CliError::Usage(
            "missing required option --input".to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memio::MemFiles;

    fn run_cli(
        argv: &[&str],
        inputs: &[(&str, &str)],
    ) -> Result<(CommandOutput, MemFiles), CliError> {
        let args: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let parsed = parse(&args)?;
        let fs = MemFiles::new();
        for (path, text) in inputs {
            fs.insert(path, text);
        }
        let mut empty = std::io::Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        let output = run(
            &parsed,
            &fs.input_opener(),
            &fs.output_opener(),
            &mut empty,
            &mut prompts,
        )?;
        Ok((output, fs))
    }

    #[test]
    fn help_prints_usage() {
        let (out, _) = run_cli(&["help"], &[]).unwrap();
        assert!(out.stdout.contains("SUBCOMMANDS"));
        assert!(out.written.is_empty());
        let (out, _) = run_cli(&[], &[]).unwrap();
        assert!(out.stdout.contains("SUBCOMMANDS"));
    }

    #[test]
    fn missing_input_file_is_an_io_error() {
        let err = run_cli(&["profile", "--input", "nope.csv"], &[]).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn end_to_end_generate_then_profile_then_consolidate() {
        // Generate a small Address dataset to a file...
        let (generated, fs) = run_cli(
            &[
                "generate",
                "--dataset",
                "address",
                "--clusters",
                "12",
                "--seed",
                "9",
                "--output",
                "addr.csv",
            ],
            &[],
        )
        .unwrap();
        assert_eq!(generated.written, vec!["addr.csv".to_string()]);
        let csv = fs.get("addr.csv").expect("generate wrote the file");
        assert!(csv.starts_with("cluster,source,"));

        // ...profile it...
        let (profiled, _) =
            run_cli(&["profile", "--input", "addr.csv"], &[("addr.csv", &csv)]).unwrap();
        assert!(profiled.stdout.contains("standardization priority"));

        // ...and consolidate it with the simulated oracle.
        let (consolidated, fs) = run_cli(
            &[
                "consolidate",
                "--input",
                "addr.csv",
                "--budget",
                "15",
                "--mode",
                "auto",
                "--output",
                "out.csv",
                "--golden",
                "golden.csv",
            ],
            &[("addr.csv", &csv)],
        )
        .unwrap();
        assert!(consolidated.stdout.contains("golden records"));
        assert_eq!(consolidated.written.len(), 2);
        let golden = fs.get("golden.csv").expect("golden file written");
        assert!(golden.lines().count() > 1);
    }

    #[test]
    fn error_display_prefixes_the_kind() {
        assert!(CliError::Usage("x".into())
            .to_string()
            .starts_with("usage error"));
        assert!(CliError::Io("x".into()).to_string().starts_with("io error"));
        assert!(CliError::Data("x".into())
            .to_string()
            .starts_with("data error"));
    }
}
