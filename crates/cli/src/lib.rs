//! # ec-cli — the `ec` command-line tool
//!
//! A thin, file-oriented front end over the `entity-consolidation` workspace:
//! it reads clustered (or flat) CSV files, runs the profiling / grouping /
//! consolidation / resolution machinery, and writes standardized CSV and
//! golden-record CSV files back out.
//!
//! All command logic lives in this library crate and is pure with respect to
//! the file system: commands receive a reader over their input (consumed
//! incrementally through the `ec-data` streaming CSV readers, so the raw
//! document is never buffered whole — only the parsed records live in
//! memory) and return a [`CommandOutput`] holding the text to print and the
//! files to write, so every subcommand is unit-testable without touching
//! disk. The `ec` binary in `main.rs` is only argument collection, buffered
//! file reading, and buffered file writing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod interactive;

pub use args::{parse, usage, ParsedArgs};
pub use interactive::InteractiveOracle;

use std::fmt;

/// An error surfaced to the `ec` user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The command line was malformed (unknown flag, missing value, …).
    Usage(String),
    /// A file could not be read or written.
    Io(String),
    /// The input data could not be parsed or is inconsistent.
    Data(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(msg) => write!(f, "io error: {msg}"),
            CliError::Data(msg) => write!(f, "data error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// What a subcommand produced: text for stdout plus files to write.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommandOutput {
    /// Text to print to standard output.
    pub stdout: String,
    /// `(path, contents)` pairs to write to disk. Paths are taken verbatim
    /// from the command line.
    pub files: Vec<(String, String)>,
}

impl CommandOutput {
    /// An output that only prints text.
    pub fn text(stdout: impl Into<String>) -> Self {
        CommandOutput {
            stdout: stdout.into(),
            files: Vec::new(),
        }
    }

    /// Adds a file to write.
    pub fn with_file(mut self, path: impl Into<String>, contents: impl Into<String>) -> Self {
        self.files.push((path.into(), contents.into()));
        self
    }
}

/// The reader a command consumes its `--input` through. Commands parse it
/// incrementally (via the `ec-data` streaming CSV readers), so the opener
/// should hand back a *buffered* reader — the binary wraps `File` in a
/// `BufReader`, tests pass in-memory bytes — and the input never has to fit
/// in memory.
pub type InputReader = Box<dyn std::io::Read>;

/// Runs one parsed subcommand. `open_input` maps an `--input` path to a
/// reader over its contents; `stdin` provides the answers and `prompt_out`
/// receives the prompts of `--mode interactive`.
pub fn run(
    parsed: &ParsedArgs,
    open_input: &dyn Fn(&str) -> Result<InputReader, CliError>,
    stdin: &mut dyn std::io::BufRead,
    prompt_out: &mut dyn std::io::Write,
) -> Result<CommandOutput, CliError> {
    match parsed.command.as_str() {
        "help" => Ok(CommandOutput::text(usage())),
        "generate" => commands::generate(parsed),
        "profile" => {
            let input = open_input(parsed.require("input")?)?;
            commands::profile(parsed, input)
        }
        "groups" => {
            let input = open_input(parsed.require("input")?)?;
            commands::groups(parsed, input)
        }
        "consolidate" => {
            let input = open_input(parsed.require("input")?)?;
            commands::consolidate(parsed, input, stdin, prompt_out)
        }
        "resolve" => {
            let input = open_input(parsed.require("input")?)?;
            commands::resolve(parsed, input)
        }
        "pipeline" => {
            let input = open_input(parsed.require("input")?)?;
            commands::pipeline(parsed, input, stdin, prompt_out)
        }
        other => Err(CliError::Usage(format!("unknown subcommand '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(argv: &[&str], inputs: &[(&str, &str)]) -> Result<CommandOutput, CliError> {
        let args: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let parsed = parse(&args)?;
        let inputs: Vec<(String, String)> = inputs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        let open = move |path: &str| -> Result<InputReader, CliError> {
            inputs
                .iter()
                .find(|(p, _)| p == path)
                .map(|(_, text)| {
                    Box::new(std::io::Cursor::new(text.clone().into_bytes())) as InputReader
                })
                .ok_or_else(|| CliError::Io(format!("no such file: {path}")))
        };
        let mut empty = std::io::Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        run(&parsed, &open, &mut empty, &mut prompts)
    }

    #[test]
    fn help_prints_usage() {
        let out = run_cli(&["help"], &[]).unwrap();
        assert!(out.stdout.contains("SUBCOMMANDS"));
        assert!(out.files.is_empty());
        let out = run_cli(&[], &[]).unwrap();
        assert!(out.stdout.contains("SUBCOMMANDS"));
    }

    #[test]
    fn missing_input_file_is_an_io_error() {
        let err = run_cli(&["profile", "--input", "nope.csv"], &[]).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn end_to_end_generate_then_profile_then_consolidate() {
        // Generate a small Address dataset to a file...
        let generated = run_cli(
            &[
                "generate",
                "--dataset",
                "address",
                "--clusters",
                "12",
                "--seed",
                "9",
                "--output",
                "addr.csv",
            ],
            &[],
        )
        .unwrap();
        assert_eq!(generated.files.len(), 1);
        let (path, csv) = &generated.files[0];
        assert_eq!(path, "addr.csv");
        assert!(csv.starts_with("cluster,source,"));

        // ...profile it...
        let profiled = run_cli(&["profile", "--input", "addr.csv"], &[("addr.csv", csv)]).unwrap();
        assert!(profiled.stdout.contains("standardization priority"));

        // ...and consolidate it with the simulated oracle.
        let consolidated = run_cli(
            &[
                "consolidate",
                "--input",
                "addr.csv",
                "--budget",
                "15",
                "--mode",
                "auto",
                "--output",
                "out.csv",
                "--golden",
                "golden.csv",
            ],
            &[("addr.csv", csv)],
        )
        .unwrap();
        assert!(consolidated.stdout.contains("golden records"));
        assert_eq!(consolidated.files.len(), 2);
        let golden = &consolidated
            .files
            .iter()
            .find(|(p, _)| p == "golden.csv")
            .unwrap()
            .1;
        assert!(golden.lines().count() > 1);
    }

    #[test]
    fn error_display_prefixes_the_kind() {
        assert!(CliError::Usage("x".into())
            .to_string()
            .starts_with("usage error"));
        assert!(CliError::Io("x".into()).to_string().starts_with("io error"));
        assert!(CliError::Data("x".into())
            .to_string()
            .starts_with("data error"));
    }
}
