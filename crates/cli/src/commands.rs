//! The `ec` subcommands.
//!
//! Every function takes the already-parsed arguments plus a reader over the
//! input (commands parse it incrementally through the `ec-data` streaming
//! readers, never materializing the document) and returns a
//! [`CommandOutput`]; nothing here touches the file system or the terminal
//! directly (interactive review writes prompts through the writer handed in
//! by the caller).

use crate::args::ParsedArgs;
use crate::interactive::InteractiveOracle;
use crate::{CliError, CommandOutput};
use ec_core::{
    ApproveAllOracle, ColumnReport, ConsolidationConfig, FusedPipeline, Pipeline, SimulatedOracle,
    TruthMethod,
};
use ec_data::csv::CsvWriter;
use ec_data::{
    dataset_to_csv, ClusteredCsvReader, Dataset, FlatCsvReader, GeneratorConfig, PaperDataset,
};
use ec_grouping::{GroupingConfig, Parallelism, StructuredGrouper};
use ec_profile::{prioritize_columns, render_dataset_profile, render_priorities, DatasetProfile};
use ec_replace::{generate_candidates, CandidateConfig};
use ec_report::table::fmt_f64;
use ec_report::TextTable;
use ec_resolution::{Resolver, ResolverConfig};
use std::io::{BufRead, Read, Write};

/// `ec generate`: produce one of the paper's synthetic datasets as clustered
/// CSV (to a file with `--output`, otherwise to stdout).
pub fn generate(parsed: &ParsedArgs) -> Result<CommandOutput, CliError> {
    let which = match parsed
        .get("dataset")
        .unwrap_or("address")
        .to_ascii_lowercase()
        .as_str()
    {
        "authorlist" | "author-list" | "authors" => PaperDataset::AuthorList,
        "address" | "addresses" => PaperDataset::Address,
        "journaltitle" | "journal-title" | "journals" => PaperDataset::JournalTitle,
        other => {
            return Err(CliError::Usage(format!(
                "unknown dataset '{other}'; expected authorlist, address, or journaltitle"
            )))
        }
    };
    let defaults = which.default_config();
    let config = GeneratorConfig {
        num_clusters: parsed.get_usize("clusters", defaults.num_clusters)?,
        seed: parsed.get_u64("seed", defaults.seed)?,
        num_sources: parsed.get_usize("sources", defaults.num_sources)?,
    };
    let dataset = which.generate(&config);
    let flat = parsed.has("flat");
    let csv = if flat {
        flat_records_csv(&dataset)
    } else {
        dataset_to_csv(&dataset)
    };
    let stats = dataset.stats(0);
    let summary = format!(
        "generated {} as {} ({} clusters, {} records, {} distinct value pairs on column 0, seed {})\n",
        which.name(),
        if flat { "flat records" } else { "clustered CSV" },
        stats.num_clusters,
        stats.num_records,
        stats.distinct_value_pairs,
        config.seed,
    );
    match parsed.get("output") {
        Some(path) => Ok(CommandOutput::text(summary).with_file(path, csv)),
        None => Ok(CommandOutput::text(csv)),
    }
}

/// Serializes a dataset's rows as flat record CSV (`source,<attributes...>`,
/// cluster structure and ground truth dropped) — the input format of
/// `ec resolve` and `ec pipeline`.
fn flat_records_csv(dataset: &Dataset) -> String {
    let mut writer = CsvWriter::new(Vec::new());
    let header = std::iter::once("source").chain(dataset.columns.iter().map(String::as_str));
    writer
        .write_record(header)
        .expect("writing to a Vec cannot fail");
    for cluster in &dataset.clusters {
        for row in &cluster.rows {
            let fields = std::iter::once(row.source.to_string())
                .chain(row.cells.iter().map(|c| c.observed.clone()));
            writer
                .write_record(fields)
                .expect("writing to a Vec cannot fail");
        }
    }
    String::from_utf8(writer.into_inner()).expect("CSV output is valid UTF-8")
}

/// Parses a clustered CSV from a reader, returning the dataset plus whether
/// the header declared `__truth` columns (which decides whether the `auto`
/// consolidation mode can use the simulated expert).
fn read_clustered(name: &str, input: impl Read) -> Result<(Dataset, bool), CliError> {
    let reader = ClusteredCsvReader::new(input).map_err(|e| CliError::Data(e.to_string()))?;
    let has_truth = reader.has_truth_columns();
    let dataset = reader
        .into_dataset(name)
        .map_err(|e| CliError::Data(e.to_string()))?;
    Ok((dataset, has_truth))
}

/// `ec profile`: per-column statistics plus the standardization priority
/// ranking of a clustered CSV.
pub fn profile(parsed: &ParsedArgs, input: impl Read) -> Result<CommandOutput, CliError> {
    let name = parsed.get("name").unwrap_or("input");
    let (dataset, _) = read_clustered(name, input)?;
    let profile = DatasetProfile::profile(&dataset);
    let mut out = render_dataset_profile(&profile);
    out.push_str("\nstandardization priority:\n");
    out.push_str(&render_priorities(&prioritize_columns(&profile)));
    Ok(CommandOutput::text(out))
}

/// `ec groups`: print the largest replacement groups of one column — a dry
/// run of what the human would be asked to confirm.
pub fn groups(parsed: &ParsedArgs, input: impl Read) -> Result<CommandOutput, CliError> {
    let (dataset, _) = read_clustered("input", input)?;
    let col = resolve_column(&dataset, parsed.require("column")?)?;
    let top = parsed.get_usize("top", 10)?;

    let parallelism = Parallelism::from(parsed.get_usize("threads", 0)?);
    let mut config = GroupingConfig::default();
    config.max_path_len = parsed.get_usize("max-path-len", config.max_path_len)?;
    config.parallelism = parallelism;
    if parsed.has("no-affix") {
        config.graph.enable_affix = false;
    }
    if parsed.has("no-structure") {
        config.structure_refinement = false;
    }

    let candidate_config = CandidateConfig {
        parallelism,
        ..CandidateConfig::default()
    };
    let candidates = generate_candidates(&dataset.column_values(col), &candidate_config);
    let mut grouper = StructuredGrouper::new(&candidates.replacements, config);
    let mut out = format!(
        "column '{}': {} candidate replacements\n",
        dataset.columns[col],
        candidates.replacements.len()
    );
    let mut shown = 0usize;
    while shown < top {
        let Some(group) = grouper.next_group() else {
            break;
        };
        shown += 1;
        out.push_str(&format!("\n#{shown} — {} replacements", group.size()));
        if let Some(program) = group.program() {
            out.push_str(&format!("  (shared transformation: {program})"));
        }
        out.push('\n');
        for member in group.members().iter().take(6) {
            out.push_str(&format!("   {:?} -> {:?}\n", member.lhs(), member.rhs()));
        }
        if group.size() > 6 {
            out.push_str(&format!("   … and {} more\n", group.size() - 6));
        }
    }
    if shown == 0 {
        out.push_str("no groups (the column has no non-identical value pairs inside clusters)\n");
    }
    Ok(CommandOutput::text(out))
}

/// `ec consolidate`: standardize one or all columns under a budget and emit
/// the standardized dataset and its golden records.
pub fn consolidate(
    parsed: &ParsedArgs,
    input: impl Read,
    stdin: &mut dyn BufRead,
    prompt_out: &mut dyn Write,
) -> Result<CommandOutput, CliError> {
    // The `__truth` columns are what the simulated expert judges against; when
    // they are absent the automatic mode falls back to approving everything
    // (an upper bound a user can then restrict interactively).
    let (mut dataset, has_truth) = read_clustered("input", input)?;
    let pipeline = Pipeline::new(
        ConsolidationConfig {
            budget: parsed.get_usize("budget", 100)?,
            ..ConsolidationConfig::default()
        }
        .with_threads(parsed.get_usize("threads", 0)?),
    );
    consolidate_dataset(
        parsed,
        &mut dataset,
        has_truth,
        &pipeline,
        stdin,
        prompt_out,
    )
}

/// The shared consolidation driver behind `ec consolidate` and the
/// consolidation half of `ec pipeline`: standardizes the requested columns
/// with the mode's oracle, runs truth discovery, and renders the summary plus
/// the `--output` / `--golden` files.
fn consolidate_dataset(
    parsed: &ParsedArgs,
    dataset: &mut Dataset,
    has_truth: bool,
    pipeline: &Pipeline,
    stdin: &mut dyn BufRead,
    prompt_out: &mut dyn Write,
) -> Result<CommandOutput, CliError> {
    let columns: Vec<usize> = match parsed.get("column") {
        Some(spec) => vec![resolve_column(dataset, spec)?],
        None => (0..dataset.columns.len()).collect(),
    };
    let budget = pipeline.config().budget;
    let mode = parsed.get("mode").unwrap_or("auto");
    let truth_method = match parsed.get("truth-method").unwrap_or("majority") {
        "majority" | "mc" => TruthMethod::MajorityConsensus,
        "reliability" | "source-reliability" => TruthMethod::SourceReliability,
        other => {
            return Err(CliError::Usage(format!(
                "unknown truth method '{other}'; expected majority or reliability"
            )))
        }
    };
    let mut reports: Vec<ColumnReport> = Vec::new();
    for &col in &columns {
        let report = match mode {
            "interactive" => {
                writeln!(
                    prompt_out,
                    "== reviewing groups of column '{}' ==",
                    dataset.columns[col]
                )
                .map_err(|e| CliError::Io(e.to_string()))?;
                let mut oracle = InteractiveOracle::new(stdin, prompt_out);
                pipeline.standardize_column(dataset, col, &mut oracle)
            }
            "approve-all" => pipeline.standardize_column(dataset, col, &mut ApproveAllOracle),
            "auto" => {
                if has_truth {
                    let mut oracle = SimulatedOracle::for_column(dataset, col, 7 + col as u64);
                    pipeline.standardize_column(dataset, col, &mut oracle)
                } else {
                    pipeline.standardize_column(dataset, col, &mut ApproveAllOracle)
                }
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown mode '{other}'; expected auto, approve-all, or interactive"
                )))
            }
        };
        reports.push(report);
    }

    let golden = pipeline.discover_golden_records(dataset, truth_method);

    // Summary of the standardization work.
    let mut summary_table = TextTable::new([
        "column",
        "candidates",
        "groups reviewed",
        "approved",
        "cells updated",
    ]);
    for report in &reports {
        summary_table.push_row([
            dataset.columns[report.column].clone(),
            report.candidates.to_string(),
            report.groups_reviewed.to_string(),
            report.groups_approved.to_string(),
            report.cells_updated.to_string(),
        ]);
    }
    let mut out = String::new();
    out.push_str(&format!(
        "consolidated {} clusters / {} records with budget {} per column ({} mode)\n\n",
        dataset.clusters.len(),
        dataset.num_records(),
        budget,
        mode
    ));
    out.push_str(&summary_table.to_plain_text());

    // Golden-record preview and the decided fraction.
    let decided: usize = golden
        .iter()
        .map(|g| g.iter().filter(|v| v.is_some()).count())
        .sum();
    let total = golden.len() * dataset.columns.len().max(1);
    out.push_str(&format!(
        "\ngolden records: {} of {} cluster-columns decided ({}%)\n",
        decided,
        total,
        fmt_f64(100.0 * decided as f64 / total.max(1) as f64, 1)
    ));
    let mut preview = TextTable::new(
        std::iter::once("cluster".to_string()).chain(dataset.columns.iter().cloned()),
    );
    for (i, record) in golden.iter().enumerate().take(10) {
        preview.push_row(
            std::iter::once(i.to_string()).chain(
                record
                    .iter()
                    .map(|v| v.clone().unwrap_or_else(|| "(undecided)".into())),
            ),
        );
    }
    out.push_str(&preview.to_plain_text());

    let mut output = CommandOutput::text(out);
    if let Some(path) = parsed.get("output") {
        output = output.with_file(path, dataset_to_csv(dataset));
    }
    if let Some(path) = parsed.get("golden") {
        output = output.with_file(path, golden_records_csv(dataset, &golden));
    }
    Ok(output)
}

/// Parses and validates the `--threshold` flag shared by `resolve` and
/// `pipeline`.
fn match_threshold(parsed: &ParsedArgs) -> Result<f64, CliError> {
    let threshold = parsed.get_f64("threshold", 0.75)?;
    if !(0.0..=1.0).contains(&threshold) {
        return Err(CliError::Usage(format!(
            "--threshold must be between 0 and 1, got {threshold}"
        )));
    }
    Ok(threshold)
}

/// `ec resolve`: cluster flat records into a clustered CSV. The input is
/// consumed record by record through the streaming resolver, so it never has
/// to fit in memory.
pub fn resolve(parsed: &ParsedArgs, input: impl Read) -> Result<CommandOutput, CliError> {
    let threshold = match_threshold(parsed)?;
    let mut stream = FlatCsvReader::new(input).map_err(|e| CliError::Data(e.to_string()))?;
    let name = parsed.get("name").unwrap_or("resolved");
    let resolver = Resolver::new(ResolverConfig {
        threshold,
        ..ResolverConfig::default()
    });
    let dataset = resolver
        .resolve_stream(name, &mut stream)
        .map_err(|e| CliError::Data(e.to_string()))?;
    let csv = dataset_to_csv(&dataset);
    let summary = format!(
        "resolved {} records into {} clusters (threshold {})\n",
        dataset.num_records(),
        dataset.clusters.len(),
        threshold
    );
    match parsed.get("output") {
        Some(path) => Ok(CommandOutput::text(summary).with_file(path, csv)),
        None => Ok(CommandOutput::text(csv)),
    }
}

/// `ec pipeline`: the fused resolve → standardize → truth-discovery run.
/// Flat record CSV streams in, golden-record CSV comes out, and no
/// intermediate clustered file ever exists; the output files are
/// bit-identical to running `ec resolve` and then `ec consolidate` on its
/// output with the same flags.
pub fn pipeline(
    parsed: &ParsedArgs,
    input: impl Read,
    stdin: &mut dyn BufRead,
    prompt_out: &mut dyn Write,
) -> Result<CommandOutput, CliError> {
    let threshold = match_threshold(parsed)?;
    let mut stream = FlatCsvReader::new(input).map_err(|e| CliError::Data(e.to_string()))?;
    let name = parsed.get("name").unwrap_or("resolved");
    let fused = FusedPipeline::new(
        ResolverConfig {
            threshold,
            ..ResolverConfig::default()
        },
        ConsolidationConfig {
            budget: parsed.get_usize("budget", 100)?,
            ..ConsolidationConfig::default()
        }
        .with_threads(parsed.get_usize("threads", 0)?),
    );
    let mut dataset = fused
        .resolve_stream(name, &mut stream)
        .map_err(|e| CliError::Data(e.to_string()))?;
    let summary = format!(
        "resolved {} records into {} clusters (threshold {})\n",
        dataset.num_records(),
        dataset.clusters.len(),
        threshold
    );
    // Resolver output always carries per-cell truth (set to the observed
    // value), exactly as the clustered CSV written by `ec resolve` declares
    // `__truth` columns — so `auto` mode uses the simulated expert, matching
    // the two-pass flow.
    let consolidated = consolidate_dataset(
        parsed,
        &mut dataset,
        true,
        fused.pipeline(),
        stdin,
        prompt_out,
    )?;
    Ok(CommandOutput {
        stdout: summary + &consolidated.stdout,
        files: consolidated.files,
    })
}

/// Resolves a `--column` argument given either a column name or an index.
fn resolve_column(dataset: &Dataset, spec: &str) -> Result<usize, CliError> {
    if let Some(idx) = dataset.column_index(spec) {
        return Ok(idx);
    }
    if let Ok(idx) = spec.parse::<usize>() {
        if idx < dataset.columns.len() {
            return Ok(idx);
        }
    }
    Err(CliError::Usage(format!(
        "no column '{}'; available columns: {}",
        spec,
        dataset.columns.join(", ")
    )))
}

/// Serializes golden records as CSV: one row per cluster.
fn golden_records_csv(dataset: &Dataset, golden: &[Vec<Option<String>>]) -> String {
    let mut records = Vec::with_capacity(golden.len() + 1);
    let mut header = vec!["cluster".to_string()];
    header.extend(dataset.columns.iter().cloned());
    records.push(header);
    for (i, record) in golden.iter().enumerate() {
        let mut row = vec![i.to_string()];
        row.extend(record.iter().map(|v| v.clone().unwrap_or_default()));
        records.push(row);
    }
    ec_data::csv::write(&records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use ec_data::{dataset_from_csv, RecordStream};
    use std::io::Cursor;

    fn parsed(argv: &[&str]) -> ParsedArgs {
        let args: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        parse(&args).unwrap()
    }

    fn address_csv(clusters: usize) -> String {
        let dataset = PaperDataset::Address.generate(&GeneratorConfig {
            num_clusters: clusters,
            seed: 11,
            num_sources: 4,
        });
        dataset_to_csv(&dataset)
    }

    #[test]
    fn generate_to_stdout_and_to_file() {
        let out = generate(&parsed(&[
            "generate",
            "--dataset",
            "journaltitle",
            "--clusters",
            "8",
        ]))
        .unwrap();
        assert!(out.stdout.starts_with("cluster,source,"));
        assert!(out.files.is_empty());

        let out = generate(&parsed(&[
            "generate",
            "--dataset",
            "authorlist",
            "--clusters",
            "5",
            "--output",
            "a.csv",
        ]))
        .unwrap();
        assert!(out.stdout.contains("AuthorList"));
        assert_eq!(out.files[0].0, "a.csv");
    }

    #[test]
    fn generate_rejects_unknown_dataset() {
        let err = generate(&parsed(&["generate", "--dataset", "movies"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn profile_renders_columns_and_priorities() {
        let csv = address_csv(10);
        let out = profile(&parsed(&["profile", "--input", "x.csv"]), csv.as_bytes()).unwrap();
        assert!(out.stdout.contains("standardization priority"));
        assert!(
            out.stdout.contains("address"),
            "the Address dataset's column is named 'address': {}",
            out.stdout
        );
    }

    #[test]
    fn profile_rejects_malformed_input() {
        let err = profile(
            &parsed(&["profile", "--input", "x.csv"]),
            "not,a,clustered\n1,2,3\n".as_bytes(),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Data(_)));
    }

    #[test]
    fn groups_lists_the_largest_groups_first() {
        let csv = address_csv(20);
        let out = groups(
            &parsed(&["groups", "--input", "x.csv", "--column", "0", "--top", "3"]),
            csv.as_bytes(),
        )
        .unwrap();
        assert!(out.stdout.contains("#1"));
        let sizes: Vec<usize> = out
            .stdout
            .lines()
            .filter(|l| l.starts_with('#'))
            .map(|l| {
                l.split_whitespace()
                    .nth(2)
                    .and_then(|n| n.parse().ok())
                    .unwrap_or(0)
            })
            .collect();
        assert!(!sizes.is_empty());
        assert!(
            sizes.windows(2).all(|w| w[0] >= w[1]),
            "groups are size-ordered: {sizes:?}"
        );
    }

    #[test]
    fn groups_rejects_unknown_columns() {
        let csv = address_csv(5);
        let err = groups(
            &parsed(&["groups", "--input", "x.csv", "--column", "Phone"]),
            csv.as_bytes(),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(msg) if msg.contains("Phone")));
    }

    #[test]
    fn consolidate_auto_uses_truth_and_writes_outputs() {
        let csv = address_csv(15);
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        let out = consolidate(
            &parsed(&[
                "consolidate",
                "--input",
                "x.csv",
                "--budget",
                "12",
                "--output",
                "std.csv",
                "--golden",
                "g.csv",
            ]),
            csv.as_bytes(),
            &mut stdin,
            &mut prompts,
        )
        .unwrap();
        assert!(out.stdout.contains("golden records"));
        assert_eq!(out.files.len(), 2);
        let golden = &out.files.iter().find(|(p, _)| p == "g.csv").unwrap().1;
        assert!(golden.starts_with("cluster,"));
        assert!(prompts.is_empty(), "auto mode never prompts");
    }

    #[test]
    fn consolidate_interactive_prompts_and_honours_answers() {
        let csv = address_csv(6);
        // Approve the first group forward, reject everything else (input runs out).
        let mut stdin = Cursor::new(b"f\nr\nr\nr\nr\nr\nr\nr\nr\nr\n".to_vec());
        let mut prompts = Vec::new();
        let out = consolidate(
            &parsed(&[
                "consolidate",
                "--input",
                "x.csv",
                "--column",
                "0",
                "--budget",
                "5",
                "--mode",
                "interactive",
            ]),
            csv.as_bytes(),
            &mut stdin,
            &mut prompts,
        )
        .unwrap();
        let transcript = String::from_utf8(prompts).unwrap();
        assert!(transcript.contains("reviewing groups"));
        assert!(transcript.contains("replace left with right"));
        assert!(out.stdout.contains("consolidated"));
    }

    #[test]
    fn consolidate_without_truth_falls_back_to_approve_all() {
        let csv = "cluster,source,Name\n0,0,Mary Lee\n0,1,\"Lee, Mary\"\n0,2,M. Lee\n";
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        let out = consolidate(
            &parsed(&["consolidate", "--input", "x.csv", "--budget", "10"]),
            csv.as_bytes(),
            &mut stdin,
            &mut prompts,
        )
        .unwrap();
        assert!(out.stdout.contains("approved"));
    }

    #[test]
    fn consolidate_rejects_bad_mode_and_truth_method() {
        let csv = address_csv(3);
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        assert!(consolidate(
            &parsed(&["consolidate", "--input", "x", "--mode", "psychic"]),
            csv.as_bytes(),
            &mut stdin,
            &mut prompts
        )
        .is_err());
        assert!(consolidate(
            &parsed(&["consolidate", "--input", "x", "--truth-method", "magic"]),
            csv.as_bytes(),
            &mut stdin,
            &mut prompts
        )
        .is_err());
    }

    #[test]
    fn resolve_clusters_flat_records() {
        let flat = "source,Name,Address\n\
                    0,Mary Lee,\"9 St, 02141 Wisconsin\"\n\
                    1,M. Lee,\"9th St, 02141 WI\"\n\
                    2,\"Lee, Mary\",\"9 Street, 02141 WI\"\n\
                    0,Robert Brown,\"77 Mass Ave, 02139 MA\"\n\
                    1,Bob Brown,\"77 Massachusetts Ave, 02139 MA\"\n";
        let out = resolve(
            &parsed(&[
                "resolve",
                "--input",
                "x.csv",
                "--threshold",
                "0.5",
                "--output",
                "c.csv",
            ]),
            flat.as_bytes(),
        )
        .unwrap();
        assert!(out.stdout.contains("resolved 5 records"));
        let csv = &out.files[0].1;
        let clustered = dataset_from_csv("r", csv).unwrap();
        assert!(
            clustered.clusters.len() < 5,
            "similar records were merged: {csv}"
        );
    }

    #[test]
    fn resolve_validates_threshold_and_input() {
        assert!(resolve(
            &parsed(&["resolve", "--input", "x", "--threshold", "3"]),
            "source,A\n0,x\n".as_bytes()
        )
        .is_err());
        assert!(resolve(
            &parsed(&["resolve", "--input", "x"]),
            "bogus\n1\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn generate_flat_emits_flat_record_csv() {
        let out = generate(&parsed(&[
            "generate",
            "--dataset",
            "address",
            "--clusters",
            "6",
            "--seed",
            "2",
            "--flat",
        ]))
        .unwrap();
        assert!(out.stdout.starts_with("source,"));
        assert!(!out.stdout.contains("__truth"));
        // The flat output feeds straight back into the resolver.
        let stream = FlatCsvReader::new(out.stdout.as_bytes()).unwrap();
        assert!(!stream.columns().is_empty());
    }

    #[test]
    fn pipeline_output_is_bit_identical_to_resolve_then_consolidate() {
        let flat = generate(&parsed(&[
            "generate",
            "--dataset",
            "address",
            "--clusters",
            "10",
            "--seed",
            "5",
            "--flat",
        ]))
        .unwrap()
        .stdout;

        // Two passes through an intermediate clustered CSV...
        let resolved = resolve(
            &parsed(&[
                "resolve",
                "--input",
                "f.csv",
                "--threshold",
                "0.6",
                "--output",
                "c.csv",
            ]),
            flat.as_bytes(),
        )
        .unwrap();
        let clustered = &resolved.files[0].1;
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        let two_pass = consolidate(
            &parsed(&[
                "consolidate",
                "--input",
                "c.csv",
                "--budget",
                "15",
                "--output",
                "std.csv",
                "--golden",
                "g.csv",
            ]),
            clustered.as_bytes(),
            &mut stdin,
            &mut prompts,
        )
        .unwrap();

        // ...versus the fused pipeline with the same flags.
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        let fused = pipeline(
            &parsed(&[
                "pipeline",
                "--input",
                "f.csv",
                "--threshold",
                "0.6",
                "--budget",
                "15",
                "--output",
                "std.csv",
                "--golden",
                "g.csv",
            ]),
            flat.as_bytes(),
            &mut stdin,
            &mut prompts,
        )
        .unwrap();

        assert_eq!(
            fused.files, two_pass.files,
            "output files are bit-identical"
        );
        assert!(fused.stdout.contains("resolved"));
        assert!(fused.stdout.contains("golden records"));
        assert!(fused.stdout.ends_with(&two_pass.stdout));
    }

    #[test]
    fn pipeline_validates_threshold_and_input() {
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        assert!(pipeline(
            &parsed(&["pipeline", "--input", "x", "--threshold", "7"]),
            "source,A\n0,x\n".as_bytes(),
            &mut stdin,
            &mut prompts,
        )
        .is_err());
        assert!(pipeline(
            &parsed(&["pipeline", "--input", "x"]),
            "bogus\n1\n".as_bytes(),
            &mut stdin,
            &mut prompts,
        )
        .is_err());
    }

    #[test]
    fn column_resolution_by_name_and_index() {
        let dataset = PaperDataset::Address.generate(&GeneratorConfig {
            num_clusters: 2,
            seed: 1,
            num_sources: 2,
        });
        assert_eq!(resolve_column(&dataset, "0").unwrap(), 0);
        assert_eq!(resolve_column(&dataset, &dataset.columns[0]).unwrap(), 0);
        assert!(resolve_column(&dataset, "999").is_err());
    }
}
