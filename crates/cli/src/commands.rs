//! The `ec` subcommands.
//!
//! Every function takes the already-parsed arguments plus a reader over the
//! input (commands parse it incrementally through the `ec-data` streaming
//! readers, never materializing the document) and, for commands that write
//! files, the output opener they stream results through cluster-at-a-time.
//! Each returns a [`CommandOutput`]; nothing here touches the file system or
//! the terminal directly (interactive review writes prompts through the
//! writer handed in by the caller).

use crate::args::ParsedArgs;
use crate::interactive::InteractiveOracle;
use crate::{CliError, CommandOutput, OpenInput, OpenOutput};
use ec_core::{
    compile_dataset, resolve_column_spec, standardize_columns, standardize_columns_compiled,
    write_golden_records_csv, ApplyReport, AutoMode, ColumnReport, CompiledDataset,
    ConsolidationConfig, DeltaPipeline, FusedPipeline, Pipeline, ProgramLibrary, TruthMethod,
};
use ec_data::csv::CsvWriter;
use ec_data::stream::DatasetSink;
use ec_data::{
    ClusteredCsvReader, ClusteredCsvWriter, Dataset, FlatCsvReader, GeneratorConfig, PaperDataset,
    RecordStream,
};
use ec_grouping::{GroupingConfig, Parallelism, StructuredGrouper};
use ec_profile::{prioritize_columns, render_dataset_profile, render_priorities, DatasetProfile};
use ec_replace::{generate_candidates, CandidateConfig};
use ec_report::table::fmt_f64;
use ec_report::TextTable;
use ec_resolution::{RawRecord, Resolver, ResolverConfig};
use ec_serve::{Router, RouterConfig, ServeConfig, Server};
use std::io::{BufRead, Read, Write};

/// Maps a write failure on `path` to a [`CliError::Io`].
fn write_failed(path: &str) -> impl Fn(std::io::Error) -> CliError + '_ {
    move |e| CliError::Io(format!("failed to write {path}: {e}"))
}

/// Streams a dataset as clustered CSV, cluster-at-a-time.
fn stream_clustered_csv(dataset: &Dataset, out: &mut dyn Write) -> std::io::Result<()> {
    let mut csv = ClusteredCsvWriter::new(&mut *out, &dataset.columns)?;
    for cluster in &dataset.clusters {
        csv.write_cluster(cluster)?;
    }
    csv.finish()?;
    out.flush()
}

/// Streams a dataset's rows as flat record CSV (`source,<attributes...>`,
/// cluster structure and ground truth dropped) — the input format of
/// `ec resolve` and `ec pipeline`.
fn stream_flat_csv(dataset: &Dataset, out: &mut dyn Write) -> std::io::Result<()> {
    let mut writer = CsvWriter::new(&mut *out);
    let header = std::iter::once("source").chain(dataset.columns.iter().map(String::as_str));
    writer.write_record(header)?;
    for cluster in &dataset.clusters {
        for row in &cluster.rows {
            let fields = std::iter::once(row.source.to_string())
                .chain(row.cells.iter().map(|c| c.observed.clone()));
            writer.write_record(fields)?;
        }
    }
    writer.flush()?;
    out.flush()
}

/// Renders a dataset to an in-memory string with one of the streaming
/// writers (the stdout path when no `--output` file was requested).
fn csv_string(
    dataset: &Dataset,
    write: impl Fn(&Dataset, &mut dyn Write) -> std::io::Result<()>,
) -> String {
    let mut buffer = Vec::new();
    write(dataset, &mut buffer).expect("writing to a Vec cannot fail");
    String::from_utf8(buffer).expect("CSV output is valid UTF-8")
}

/// `ec generate`: produce one of the paper's synthetic datasets as clustered
/// CSV (streamed to a file with `--output`, otherwise to stdout).
pub fn generate(
    parsed: &ParsedArgs,
    open_output: OpenOutput<'_>,
) -> Result<CommandOutput, CliError> {
    let which = match parsed
        .get("dataset")
        .unwrap_or("address")
        .to_ascii_lowercase()
        .as_str()
    {
        "authorlist" | "author-list" | "authors" => PaperDataset::AuthorList,
        "address" | "addresses" => PaperDataset::Address,
        "journaltitle" | "journal-title" | "journals" => PaperDataset::JournalTitle,
        other => {
            return Err(CliError::Usage(format!(
                "unknown dataset '{other}'; expected authorlist, address, or journaltitle"
            )))
        }
    };
    let defaults = which.default_config();
    let config = GeneratorConfig {
        num_clusters: parsed.get_usize("clusters", defaults.num_clusters)?,
        seed: parsed.get_u64("seed", defaults.seed)?,
        num_sources: parsed.get_usize("sources", defaults.num_sources)?,
    };
    let dataset = which.generate(&config);
    let flat = parsed.has("flat");
    let writer = if flat {
        stream_flat_csv
    } else {
        stream_clustered_csv
    };
    let stats = dataset.stats(0);
    let summary = format!(
        "generated {} as {} ({} clusters, {} records, {} distinct value pairs on column 0, seed {})\n",
        which.name(),
        if flat { "flat records" } else { "clustered CSV" },
        stats.num_clusters,
        stats.num_records,
        stats.distinct_value_pairs,
        config.seed,
    );
    match parsed.get("output") {
        Some(path) => {
            let mut sink = open_output(path)?;
            writer(&dataset, &mut sink).map_err(write_failed(path))?;
            Ok(CommandOutput::text(summary).note_written(path))
        }
        None => Ok(CommandOutput::text(csv_string(&dataset, writer))),
    }
}

/// Parses a clustered CSV from a reader, returning the dataset plus whether
/// the header declared `__truth` columns (which decides whether the `auto`
/// consolidation mode can use the simulated expert).
fn read_clustered(name: &str, input: impl Read) -> Result<(Dataset, bool), CliError> {
    let reader = ClusteredCsvReader::new(input).map_err(|e| CliError::Data(e.to_string()))?;
    let has_truth = reader.has_truth_columns();
    let dataset = reader
        .into_dataset(name)
        .map_err(|e| CliError::Data(e.to_string()))?;
    Ok((dataset, has_truth))
}

/// `ec profile`: per-column statistics plus the standardization priority
/// ranking of a clustered CSV.
pub fn profile(parsed: &ParsedArgs, input: impl Read) -> Result<CommandOutput, CliError> {
    let name = parsed.get("name").unwrap_or("input");
    let (dataset, _) = read_clustered(name, input)?;
    let profile = DatasetProfile::profile(&dataset);
    let mut out = render_dataset_profile(&profile);
    out.push_str("\nstandardization priority:\n");
    out.push_str(&render_priorities(&prioritize_columns(&profile)));
    Ok(CommandOutput::text(out))
}

/// `ec groups`: print the largest replacement groups of one column — a dry
/// run of what the human would be asked to confirm.
pub fn groups(parsed: &ParsedArgs, input: impl Read) -> Result<CommandOutput, CliError> {
    let (dataset, _) = read_clustered("input", input)?;
    let col = resolve_column(&dataset, parsed.require("column")?)?;
    let top = parsed.get_usize("top", 10)?;

    let parallelism = Parallelism::from(parsed.get_usize("threads", 0)?);
    let mut config = GroupingConfig::default();
    config.max_path_len = parsed.get_usize("max-path-len", config.max_path_len)?;
    config.parallelism = parallelism;
    if parsed.has("no-affix") {
        config.graph.enable_affix = false;
    }
    if parsed.has("no-structure") {
        config.structure_refinement = false;
    }

    let candidate_config = CandidateConfig {
        parallelism,
        ..CandidateConfig::default()
    };
    let candidates = generate_candidates(&dataset.column_values(col), &candidate_config);
    let mut grouper = StructuredGrouper::new(&candidates.replacements, config);
    let mut out = format!(
        "column '{}': {} candidate replacements\n",
        dataset.columns[col],
        candidates.replacements.len()
    );
    let mut shown = 0usize;
    while shown < top {
        let Some(group) = grouper.next_group() else {
            break;
        };
        shown += 1;
        out.push_str(&format!("\n#{shown} — {} replacements", group.size()));
        if let Some(program) = group.program() {
            out.push_str(&format!("  (shared transformation: {program})"));
        }
        out.push('\n');
        for member in group.members().iter().take(6) {
            out.push_str(&format!("   {:?} -> {:?}\n", member.lhs(), member.rhs()));
        }
        if group.size() > 6 {
            out.push_str(&format!("   … and {} more\n", group.size() - 6));
        }
    }
    if shown == 0 {
        out.push_str("no groups (the column has no non-identical value pairs inside clusters)\n");
    }
    Ok(CommandOutput::text(out))
}

/// Loads a compiled artifact off the real file system — deliberately outside
/// the test-friendly opener indirection, because memory-mapping the file
/// *is* the point. Returns the compiled state plus whether it was mapped
/// (as opposed to read and decoded into fresh allocations).
fn load_artifact(path: &str) -> Result<(CompiledDataset, bool), CliError> {
    ec_artifact::read_artifact(std::path::Path::new(path))
        .map_err(|e| CliError::Data(format!("{path}: {e}")))
}

/// The startup line a loaded artifact prints: what was skipped and how the
/// bytes came in.
fn artifact_summary(path: &str, compiled: &CompiledDataset, mapped: bool) -> String {
    format!(
        "loaded compiled artifact {path} ({}): {} records in {} clusters, threshold {} — \
         parse, resolve, candidate generation and index build all skipped\n",
        if mapped {
            "memory-mapped"
        } else {
            "decoded into memory"
        },
        compiled.dataset.num_records(),
        compiled.dataset.clusters.len(),
        compiled.threshold,
    )
}

/// Resolves `--artifact` for `consolidate`/`pipeline`: `Ok(Some(...))` when
/// the artifact loaded, `Ok(None)` for a failed load that can fall back to
/// `--input` (a warning goes to `prompt_out`), `Err` when there is nothing
/// to fall back to. An explicit `--threshold` different from the artifact's
/// is refused — the clusters were formed at compile time.
fn resolve_artifact(
    parsed: &ParsedArgs,
    prompt_out: &mut dyn Write,
) -> Result<Option<(String, CompiledDataset, bool)>, CliError> {
    let Some(path) = parsed.get("artifact") else {
        return Ok(None);
    };
    match load_artifact(path) {
        Ok((compiled, mapped)) => {
            if parsed.get("threshold").is_some() {
                let threshold = match_threshold(parsed)?;
                if threshold != compiled.threshold {
                    return Err(CliError::Usage(format!(
                        "{path} was compiled at threshold {}, not {threshold}; \
                         re-run `ec compile` to change it",
                        compiled.threshold
                    )));
                }
            }
            Ok(Some((path.to_string(), compiled, mapped)))
        }
        Err(e) if parsed.get("input").is_some() => {
            writeln!(
                prompt_out,
                "warning: cannot load artifact {path} ({e}); rebuilding from --input"
            )
            .map_err(|e| CliError::Io(e.to_string()))?;
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

/// `ec consolidate`: standardize one or all columns under a budget and emit
/// the standardized dataset and its golden records.
pub fn consolidate(
    parsed: &ParsedArgs,
    input: impl Read,
    open_output: OpenOutput<'_>,
    stdin: &mut dyn BufRead,
    prompt_out: &mut dyn Write,
) -> Result<CommandOutput, CliError> {
    let pipeline = Pipeline::new(
        ConsolidationConfig {
            budget: parsed.get_usize("budget", 100)?,
            ..ConsolidationConfig::default()
        }
        .with_threads(parsed.get_usize("threads", 0)?),
    );
    if let Some((path, compiled, mapped)) = resolve_artifact(parsed, prompt_out)? {
        let summary = artifact_summary(&path, &compiled, mapped);
        let mut dataset = compiled.dataset.clone();
        let consolidated = consolidate_dataset(
            parsed,
            &mut dataset,
            compiled.has_truth,
            &pipeline,
            Some(&compiled),
            open_output,
            stdin,
            prompt_out,
        )?;
        return Ok(CommandOutput {
            stdout: summary + &consolidated.stdout,
            written: consolidated.written,
        });
    }
    // The `__truth` columns are what the simulated expert judges against; when
    // they are absent the automatic mode falls back to approving everything
    // (an upper bound a user can then restrict interactively).
    let (mut dataset, has_truth) = read_clustered("input", input)?;
    consolidate_dataset(
        parsed,
        &mut dataset,
        has_truth,
        &pipeline,
        None,
        open_output,
        stdin,
        prompt_out,
    )
}

/// The shared consolidation driver behind `ec consolidate` and the
/// consolidation half of `ec pipeline`: standardizes the requested columns
/// with the mode's oracle, runs truth discovery, renders the summary, and
/// streams the `--output` / `--golden` / `--save-library` files. With
/// `compiled` set (a loaded `--artifact`), candidate generation, grouping
/// preparation and index building are all skipped — the precompiled state
/// is replayed instead, byte-identically.
#[allow(clippy::too_many_arguments)]
fn consolidate_dataset(
    parsed: &ParsedArgs,
    dataset: &mut Dataset,
    has_truth: bool,
    pipeline: &Pipeline,
    compiled: Option<&CompiledDataset>,
    open_output: OpenOutput<'_>,
    stdin: &mut dyn BufRead,
    prompt_out: &mut dyn Write,
) -> Result<CommandOutput, CliError> {
    let columns: Vec<usize> = match parsed.get("column") {
        Some(spec) => vec![resolve_column(dataset, spec)?],
        None => (0..dataset.columns.len()).collect(),
    };
    let budget = pipeline.config().budget;
    let mode = parsed.get("mode").unwrap_or("auto");
    let truth_method = match parsed.get("truth-method").unwrap_or("majority") {
        "majority" | "mc" => TruthMethod::MajorityConsensus,
        "reliability" | "source-reliability" => TruthMethod::SourceReliability,
        other => {
            return Err(CliError::Usage(format!(
                "unknown truth method '{other}'; expected majority or reliability"
            )))
        }
    };
    // Open every requested sink before any work runs (and before any file
    // is truncated): a bad path must fail the command while pre-existing
    // output files are still intact.
    let mut output_sink = match parsed.get("output") {
        Some(path) => Some((path, open_output(path)?)),
        None => None,
    };
    let mut golden_sink = match parsed.get("golden") {
        Some(path) => Some((path, open_output(path)?)),
        None => None,
    };
    let mut library_sink = match parsed.get("save-library") {
        Some(path) => Some((path, open_output(path)?)),
        None => None,
    };
    // `--save-library` persists the verification work of this run as a
    // learned-program snapshot (`ec apply` / `ec serve` re-use it).
    let mut library = library_sink.as_ref().map(|_| ProgramLibrary::new());
    let reports: Vec<ColumnReport> = if mode == "interactive" {
        let mut reports = Vec::with_capacity(columns.len());
        for &col in &columns {
            writeln!(
                prompt_out,
                "== reviewing groups of column '{}' ==",
                dataset.columns[col]
            )
            .map_err(|e| CliError::Io(e.to_string()))?;
            let mut oracle = InteractiveOracle::new(stdin, prompt_out);
            let (report, approved) = match compiled {
                Some(compiled) => pipeline.standardize_column_traced_compiled(
                    dataset,
                    col,
                    &compiled.columns[col],
                    &mut oracle,
                ),
                None => pipeline.standardize_column_traced(dataset, col, &mut oracle),
            };
            if let Some(library) = &mut library {
                for group in &approved {
                    library.record(&dataset.columns[col], group);
                }
            }
            reports.push(report);
        }
        reports
    } else {
        let auto_mode = AutoMode::parse(mode).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown mode '{mode}'; expected auto, approve-all, or interactive"
            ))
        })?;
        match compiled {
            Some(compiled) => standardize_columns_compiled(
                pipeline,
                compiled,
                dataset,
                &columns,
                auto_mode,
                library.as_mut(),
            ),
            None => standardize_columns(
                pipeline,
                dataset,
                &columns,
                auto_mode,
                has_truth,
                library.as_mut(),
            ),
        }
    };

    let golden = pipeline.discover_golden_records(dataset, truth_method);

    // Summary of the standardization work.
    let mut summary_table = TextTable::new([
        "column",
        "candidates",
        "groups reviewed",
        "approved",
        "cells updated",
    ]);
    for report in &reports {
        summary_table.push_row([
            dataset.columns[report.column].clone(),
            report.candidates.to_string(),
            report.groups_reviewed.to_string(),
            report.groups_approved.to_string(),
            report.cells_updated.to_string(),
        ]);
    }
    let mut out = String::new();
    out.push_str(&format!(
        "consolidated {} clusters / {} records with budget {} per column ({} mode)\n\n",
        dataset.clusters.len(),
        dataset.num_records(),
        budget,
        mode
    ));
    out.push_str(&summary_table.to_plain_text());

    // Golden-record preview and the decided fraction.
    let decided: usize = golden
        .iter()
        .map(|g| g.iter().filter(|v| v.is_some()).count())
        .sum();
    let total = golden.len() * dataset.columns.len().max(1);
    out.push_str(&format!(
        "\ngolden records: {} of {} cluster-columns decided ({}%)\n",
        decided,
        total,
        fmt_f64(100.0 * decided as f64 / total.max(1) as f64, 1)
    ));
    let mut preview = TextTable::new(
        std::iter::once("cluster".to_string()).chain(dataset.columns.iter().cloned()),
    );
    for (i, record) in golden.iter().enumerate().take(10) {
        preview.push_row(
            std::iter::once(i.to_string()).chain(
                record
                    .iter()
                    .map(|v| v.clone().unwrap_or_else(|| "(undecided)".into())),
            ),
        );
    }
    out.push_str(&preview.to_plain_text());

    let mut output = CommandOutput::text(out);
    if let Some((path, sink)) = output_sink.as_mut() {
        stream_clustered_csv(dataset, sink).map_err(write_failed(path))?;
        output = output.note_written(*path);
    }
    if let Some((path, sink)) = golden_sink.as_mut() {
        write_golden_records_csv(&dataset.columns, &golden, sink)
            .and_then(|()| sink.flush())
            .map_err(write_failed(path))?;
        output = output.note_written(*path);
    }
    if let Some((path, sink)) = library_sink.as_mut() {
        let library = library.expect("library accumulates when --save-library is set");
        sink.write_all(library.to_snapshot().as_bytes())
            .and_then(|()| sink.flush())
            .map_err(write_failed(path))?;
        output.stdout.push_str(&format!(
            "\nsaved {} learned programs to the library\n",
            library.len()
        ));
        output = output.note_written(*path);
    }
    Ok(output)
}

/// Parses and validates the `--threshold` flag shared by `resolve` and
/// `pipeline`.
fn match_threshold(parsed: &ParsedArgs) -> Result<f64, CliError> {
    let threshold = parsed.get_f64("threshold", 0.75)?;
    if !(0.0..=1.0).contains(&threshold) {
        return Err(CliError::Usage(format!(
            "--threshold must be between 0 and 1, got {threshold}"
        )));
    }
    Ok(threshold)
}

/// `ec resolve`: cluster flat records into a clustered CSV. The input is
/// consumed record by record through the streaming resolver, and the output
/// is streamed cluster by cluster, so neither has to fit in memory.
pub fn resolve(
    parsed: &ParsedArgs,
    input: impl Read,
    open_output: OpenOutput<'_>,
) -> Result<CommandOutput, CliError> {
    let threshold = match_threshold(parsed)?;
    let mut stream = FlatCsvReader::new(input).map_err(|e| CliError::Data(e.to_string()))?;
    let name = parsed.get("name").unwrap_or("resolved");
    let resolver = Resolver::new(ResolverConfig {
        threshold,
        ..ResolverConfig::default()
    })
    .with_parallelism(Parallelism::from(parsed.get_usize("threads", 0)?));
    let dataset = resolver
        .resolve_stream(name, &mut stream)
        .map_err(|e| CliError::Data(e.to_string()))?;
    let summary = format!(
        "resolved {} records into {} clusters (threshold {})\n",
        dataset.num_records(),
        dataset.clusters.len(),
        threshold
    );
    match parsed.get("output") {
        Some(path) => {
            let mut sink = open_output(path)?;
            stream_clustered_csv(&dataset, &mut sink).map_err(write_failed(path))?;
            Ok(CommandOutput::text(summary).note_written(path))
        }
        None => Ok(CommandOutput::text(csv_string(
            &dataset,
            stream_clustered_csv,
        ))),
    }
}

/// `ec pipeline`: the fused resolve → standardize → truth-discovery run.
/// Flat record CSV streams in, golden-record CSV comes out, and no
/// intermediate clustered file ever exists; the output files are
/// bit-identical to running `ec resolve` and then `ec consolidate` on its
/// output with the same flags.
pub fn pipeline(
    parsed: &ParsedArgs,
    input: impl Read,
    open_output: OpenOutput<'_>,
    stdin: &mut dyn BufRead,
    prompt_out: &mut dyn Write,
) -> Result<CommandOutput, CliError> {
    if let Some((path, compiled, mapped)) = resolve_artifact(parsed, prompt_out)? {
        // The artifact already holds the resolved clusters and every prepared
        // structure; replay the consolidation, skipping resolve entirely.
        let summary = artifact_summary(&path, &compiled, mapped);
        let pipeline = Pipeline::new(
            ConsolidationConfig {
                budget: parsed.get_usize("budget", 100)?,
                ..ConsolidationConfig::default()
            }
            .with_threads(parsed.get_usize("threads", 0)?),
        );
        let mut dataset = compiled.dataset.clone();
        let consolidated = consolidate_dataset(
            parsed,
            &mut dataset,
            compiled.has_truth,
            &pipeline,
            Some(&compiled),
            open_output,
            stdin,
            prompt_out,
        )?;
        return Ok(CommandOutput {
            stdout: summary + &consolidated.stdout,
            written: consolidated.written,
        });
    }
    let threshold = match_threshold(parsed)?;
    let mut stream = FlatCsvReader::new(input).map_err(|e| CliError::Data(e.to_string()))?;
    let name = parsed.get("name").unwrap_or("resolved");
    let fused = FusedPipeline::new(
        ResolverConfig {
            threshold,
            ..ResolverConfig::default()
        },
        ConsolidationConfig {
            budget: parsed.get_usize("budget", 100)?,
            ..ConsolidationConfig::default()
        }
        .with_threads(parsed.get_usize("threads", 0)?),
    );
    let mut dataset = fused
        .resolve_stream(name, &mut stream)
        .map_err(|e| CliError::Data(e.to_string()))?;
    let summary = format!(
        "resolved {} records into {} clusters (threshold {})\n",
        dataset.num_records(),
        dataset.clusters.len(),
        threshold
    );
    // Resolver output always carries per-cell truth (set to the observed
    // value), exactly as the clustered CSV written by `ec resolve` declares
    // `__truth` columns — so `auto` mode uses the simulated expert, matching
    // the two-pass flow.
    let consolidated = consolidate_dataset(
        parsed,
        &mut dataset,
        true,
        fused.pipeline(),
        None,
        open_output,
        stdin,
        prompt_out,
    )?;
    Ok(CommandOutput {
        stdout: summary + &consolidated.stdout,
        written: consolidated.written,
    })
}

/// `ec ingest`: the incremental (delta) pipeline. Flat records stream in
/// batch by batch through a persistent [`DeltaPipeline`]: resolution state,
/// candidate caches and prepared grouping partitions survive between batches,
/// so a batch of already-seen shapes costs ~a lookup per record instead of a
/// full rebuild. The final `--output` / `--golden` files are byte-identical
/// to `ec pipeline` over the same records with the same flags.
pub fn ingest(
    parsed: &ParsedArgs,
    input: impl Read,
    open_output: OpenOutput<'_>,
) -> Result<CommandOutput, CliError> {
    let threshold = match_threshold(parsed)?;
    let batch_size = parsed.get_usize("batch-size", 256)?;
    if batch_size == 0 {
        return Err(CliError::Usage("--batch-size must be positive".to_string()));
    }
    let name = parsed.get("name").unwrap_or("resolved");
    let mode_name = parsed.get("mode").unwrap_or("auto");
    let mode = AutoMode::parse(mode_name).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown mode '{mode_name}'; expected auto or approve-all"
        ))
    })?;
    let truth_method = match parsed.get("truth-method").unwrap_or("majority") {
        "majority" | "mc" => TruthMethod::MajorityConsensus,
        "reliability" | "source-reliability" => TruthMethod::SourceReliability,
        other => {
            return Err(CliError::Usage(format!(
                "unknown truth method '{other}'; expected majority or reliability"
            )))
        }
    };
    let mut stream = FlatCsvReader::new(input).map_err(|e| CliError::Data(e.to_string()))?;
    let columns = stream.columns().to_vec();

    // Open every requested sink before any work runs (same contract as
    // consolidate: a bad path fails before pre-existing files are touched).
    let mut output_sink = match parsed.get("output") {
        Some(path) => Some((path, open_output(path)?)),
        None => None,
    };
    let mut golden_sink = match parsed.get("golden") {
        Some(path) => Some((path, open_output(path)?)),
        None => None,
    };
    let mut library_sink = match parsed.get("save-library") {
        Some(path) => Some((path, open_output(path)?)),
        None => None,
    };

    let mut delta = DeltaPipeline::new(
        name,
        columns,
        ResolverConfig {
            threshold,
            ..ResolverConfig::default()
        },
        ConsolidationConfig {
            budget: parsed.get_usize("budget", 100)?,
            ..ConsolidationConfig::default()
        }
        .with_threads(parsed.get_usize("threads", 0)?),
        mode,
        truth_method,
    )
    // `--ingest-cache-cap N` bounds the per-cluster candidate cache;
    // eviction is memory-only, outputs never change.
    .with_cache_cap(Some(parsed.get_usize("ingest-cache-cap", 0)?));

    let mut out = String::new();
    let mut batch: Vec<RawRecord> = Vec::with_capacity(batch_size);
    loop {
        batch.clear();
        while batch.len() < batch_size {
            match stream.next_record() {
                Some(record) => {
                    let record = record.map_err(|e| CliError::Data(e.to_string()))?;
                    batch.push(RawRecord {
                        source: record.source,
                        fields: record.fields,
                    });
                }
                None => break,
            }
        }
        if batch.is_empty() && delta.batches() > 0 {
            break;
        }
        let report = delta.ingest_batch(std::mem::take(&mut batch));
        out.push_str(&format!(
            "batch {}: {} records ({} fast-path hits / {} residue), {} clusters, \
             {} records total, replayed {}/{} columns\n",
            delta.batches(),
            report.batch_records,
            report.library_hits,
            report.residue,
            report.clusters,
            report.total_records,
            report.replayed_columns,
            report.columns.len(),
        ));
        if report.batch_records < batch_size {
            break;
        }
    }

    let hits = delta.library_hits();
    let seen = hits + delta.library_misses();
    out.push_str(&format!(
        "ingested {} records in {} batches of up to {} (threshold {}, {} mode): {} clusters\n\
         fast path: {} hits / {} residue ({}% seen shapes)\n",
        delta.len(),
        delta.batches(),
        batch_size,
        threshold,
        mode_name,
        delta.standardized().map_or(0, |d| d.clusters.len()),
        hits,
        delta.library_misses(),
        fmt_f64(100.0 * hits as f64 / seen.max(1) as f64, 1),
    ));

    let mut output = CommandOutput::text(out);
    if let Some((path, sink)) = output_sink.as_mut() {
        if let Some(dataset) = delta.standardized() {
            stream_clustered_csv(dataset, sink).map_err(write_failed(path))?;
        }
        output = output.note_written(*path);
    }
    if let Some((path, sink)) = golden_sink.as_mut() {
        delta
            .write_golden_csv(sink)
            .and_then(|()| sink.flush())
            .map_err(write_failed(path))?;
        output = output.note_written(*path);
    }
    if let Some((path, sink)) = library_sink.as_mut() {
        sink.write_all(delta.library().to_snapshot().as_bytes())
            .and_then(|()| sink.flush())
            .map_err(write_failed(path))?;
        output.stdout.push_str(&format!(
            "saved {} learned programs to the library\n",
            delta.library().len()
        ));
        output = output.note_written(*path);
    }
    Ok(output)
}

/// `ec apply`: standardize flat records through a learned-program library
/// snapshot — no re-learning, no oracle, record-at-a-time streaming in and
/// out. Values the library does not cover pass through unchanged and are
/// reported.
pub fn apply(
    parsed: &ParsedArgs,
    open_input: OpenInput<'_>,
    open_output: OpenOutput<'_>,
) -> Result<CommandOutput, CliError> {
    let library_path = parsed.require("library")?;
    let mut snapshot = String::new();
    open_input(library_path)?
        .read_to_string(&mut snapshot)
        .map_err(|e| CliError::Io(format!("{library_path}: {e}")))?;
    let library = ProgramLibrary::from_snapshot(&snapshot)
        .map_err(|e| CliError::Data(format!("{library_path}: {e}")))?;

    // `--artifact` replaces `--input`: the compiled dataset's own records
    // (flattened cluster-major, exactly like `ec compile --emit-flat`) are
    // what gets standardized.
    let input: Box<dyn Read> = match parsed.get("artifact") {
        Some(artifact_path) => {
            if parsed.get("input").is_some() {
                return Err(CliError::Usage(
                    "pass either --input or --artifact, not both".to_string(),
                ));
            }
            let (compiled, _mapped) = load_artifact(artifact_path)?;
            let mut flat = Vec::new();
            stream_flat_csv(&compiled.dataset, &mut flat).expect("writing to a Vec cannot fail");
            Box::new(std::io::Cursor::new(flat))
        }
        None => open_input(parsed.require("input")?)?,
    };
    let mut stream = FlatCsvReader::new(input).map_err(|e| CliError::Data(e.to_string()))?;
    let columns = stream.columns().to_vec();
    let applier = library.applier(&columns);
    let mut report = ApplyReport::default();

    let output_path = parsed.get("output");
    let mut sink: Box<dyn Write> = match output_path {
        Some(path) => open_output(path)?,
        None => Box::new(Vec::new()),
    };
    let mut stdout_csv = Vec::new();
    {
        let out: &mut dyn Write = if output_path.is_some() {
            &mut sink
        } else {
            &mut stdout_csv
        };
        let mut csv = CsvWriter::new(out);
        let header = std::iter::once("source").chain(columns.iter().map(String::as_str));
        csv.write_record(header)
            .map_err(|e| CliError::Io(e.to_string()))?;
        while let Some(record) = stream.next_record() {
            let mut record = record.map_err(|e| CliError::Data(e.to_string()))?;
            applier.apply_fields(&mut record.fields, &mut report);
            let fields = std::iter::once(record.source.to_string()).chain(record.fields);
            csv.write_record(fields)
                .map_err(|e| CliError::Io(e.to_string()))?;
        }
        csv.flush().map_err(|e| CliError::Io(e.to_string()))?;
    }
    sink.flush().map_err(|e| CliError::Io(e.to_string()))?;

    let mut out = String::new();
    if output_path.is_none() {
        out.push_str(&String::from_utf8(stdout_csv).expect("CSV output is valid UTF-8"));
    }
    out.push_str(&format!(
        "applied library {library_path} (version {}, {} programs): {}\n",
        library.version(),
        library.len(),
        report
    ));
    for (column, value) in &report.unmatched_sample {
        out.push_str(&format!("  unmatched {column}: {value:?}\n"));
    }
    let mut output = CommandOutput::text(out);
    if let Some(path) = output_path {
        output = output.note_written(path);
    }
    Ok(output)
}

/// `ec compile`: compile a dataset into the binary artifact that
/// `--artifact` consumers memory-map at startup. Flat record CSV is resolved
/// first (threshold applies); clustered CSV — recognized by its
/// `cluster,source,...` header — is taken as already resolved. Everything
/// expensive happens here, once: candidate generation, partitioning, graph
/// preparation and the CSR inverted index all land in the artifact.
pub fn compile(
    parsed: &ParsedArgs,
    input: impl Read,
    open_output: OpenOutput<'_>,
) -> Result<CommandOutput, CliError> {
    let threshold = match_threshold(parsed)?;
    let threads = parsed.get_usize("threads", 0)?;
    let name = parsed.get("name").unwrap_or("resolved");
    let output_path = parsed.require("output")?;
    // Open every sink before the (expensive) compile runs.
    let mut sink = open_output(output_path)?;
    let mut flat_sink = match parsed.get("emit-flat") {
        Some(path) => Some((path, open_output(path)?)),
        None => None,
    };
    // Compiling is a whole-dataset batch operation, so reading the input up
    // front (to sniff the header) costs nothing extra.
    let mut text = String::new();
    let mut input = input;
    input
        .read_to_string(&mut text)
        .map_err(|e| CliError::Io(e.to_string()))?;
    let config = ConsolidationConfig::default().with_threads(threads);
    let (dataset, has_truth) = if text.starts_with("cluster,") {
        read_clustered(name, text.as_bytes())?
    } else {
        let mut stream =
            FlatCsvReader::new(text.as_bytes()).map_err(|e| CliError::Data(e.to_string()))?;
        let fused = FusedPipeline::new(
            ResolverConfig {
                threshold,
                ..ResolverConfig::default()
            },
            config.clone(),
        );
        let dataset = fused
            .resolve_stream(name, &mut stream)
            .map_err(|e| CliError::Data(e.to_string()))?;
        // Resolver output carries per-cell truth, like `ec resolve` output.
        (dataset, true)
    };
    let compiled = compile_dataset(dataset, threshold, has_truth, &config);
    let bytes = ec_artifact::encode_artifact(&compiled);
    sink.write_all(&bytes)
        .and_then(|()| sink.flush())
        .map_err(write_failed(output_path))?;
    let candidates: usize = compiled
        .columns
        .iter()
        .map(|c| c.candidates.replacements.len())
        .sum();
    let partitions: usize = compiled.columns.iter().map(|c| c.partitions.len()).sum();
    let mut output = CommandOutput::text(format!(
        "compiled {}: {} records in {} clusters, {} columns, {} candidate replacements, \
         {} prepared partitions — {} artifact bytes (threshold {})\n",
        compiled.name,
        compiled.dataset.num_records(),
        compiled.dataset.clusters.len(),
        compiled.dataset.columns.len(),
        candidates,
        partitions,
        bytes.len(),
        compiled.threshold,
    ))
    .note_written(output_path);
    if let Some((path, sink)) = flat_sink.as_mut() {
        stream_flat_csv(&compiled.dataset, sink).map_err(write_failed(path))?;
        output = output.note_written(*path);
    }
    Ok(output)
}

/// `ec serve`: the long-lived consolidation service (see the `ec-serve`
/// crate docs for the endpoints). Blocks until `POST /shutdown`.
pub fn serve(
    parsed: &ParsedArgs,
    open_input: OpenInput<'_>,
    prompt_out: &mut dyn Write,
) -> Result<CommandOutput, CliError> {
    // `--route b1:port,b2:port,...` turns this process into a shard router
    // in front of backend `ec serve` processes; a router holds no library
    // and runs no consolidation, so the single-node flags make no sense
    // alongside it.
    if let Some(route) = parsed.get("route") {
        for conflicting in [
            "library",
            "library-cap",
            "library-ttl",
            "threads",
            "artifact",
        ] {
            if parsed.get(conflicting).is_some() {
                return Err(CliError::Usage(format!(
                    "--{conflicting} does not apply to a router; set it on the backends"
                )));
            }
        }
        let backends: Vec<String> = route
            .split(',')
            .map(str::trim)
            .filter(|b| !b.is_empty())
            .map(str::to_string)
            .collect();
        if backends.is_empty() {
            return Err(CliError::Usage(
                "--route needs at least one backend HOST:PORT".to_string(),
            ));
        }
        let mut config = RouterConfig::new(
            parsed.get("addr").unwrap_or("127.0.0.1:7171").to_string(),
            backends,
        );
        config.max_connections = parsed.get_usize("max-connections", 0)?;
        config.auth_token = parsed.get("auth-token").map(str::to_string);
        let router = Router::bind(config).map_err(|e| CliError::Io(format!("cannot bind: {e}")))?;
        writeln!(
            prompt_out,
            "ec serve router listening on {} routing {} backends",
            router.local_addr(),
            router.handle().backends(),
        )
        .map_err(|e| CliError::Io(e.to_string()))?;
        prompt_out
            .flush()
            .map_err(|e| CliError::Io(e.to_string()))?;
        let handle = router.handle();
        router
            .run()
            .map_err(|e| CliError::Io(format!("router failed: {e}")))?;
        return Ok(CommandOutput::text(format!(
            "router stopped after {} requests\n",
            handle.requests()
        )));
    }
    let mut library = match parsed.get("library") {
        None => ProgramLibrary::new(),
        Some(path) => {
            let mut snapshot = String::new();
            open_input(path)?
                .read_to_string(&mut snapshot)
                .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            ProgramLibrary::from_snapshot(&snapshot)
                .map_err(|e| CliError::Data(format!("{path}: {e}")))?
        }
    };
    // `--library-cap N` bounds the in-memory library of a long-running
    // server (N entries per column, least-recently-learned evicted first);
    // 0 — the default — keeps it unbounded.
    let library_cap = parsed.get_usize("library-cap", 0)?;
    if library_cap > 0 {
        library.set_column_capacity(Some(library_cap));
    }
    // `--library-ttl SECS` additionally ages entries out by recency —
    // a long-running server forgets programs nothing has touched lately;
    // 0 (the default) keeps entries forever.
    let library_ttl = parsed.get_usize("library-ttl", 0)?;
    // `--artifact FILE` memory-maps a compiled dataset at startup: an
    // empty-body POST /pipeline (or /apply) then replays the compiled
    // consolidation with no parse, resolve, candidate or index work.
    let preloaded = match parsed.get("artifact") {
        None => None,
        Some(path) => {
            let (compiled, mapped) = load_artifact(path)?;
            let summary = artifact_summary(path, &compiled, mapped);
            Some((std::sync::Arc::new(compiled), summary))
        }
    };
    let config = ServeConfig {
        addr: parsed.get("addr").unwrap_or("127.0.0.1:7171").to_string(),
        threads: parsed.get_usize("threads", 0)?,
        library,
        max_connections: parsed.get_usize("max-connections", 0)?,
        library_ttl: (library_ttl > 0).then(|| std::time::Duration::from_secs(library_ttl as u64)),
        preloaded: preloaded.as_ref().map(|(compiled, _)| compiled.clone()),
        auth_token: parsed.get("auth-token").map(str::to_string),
        ingest_cache_cap: Some(parsed.get_usize("ingest-cache-cap", 0)?),
    };
    let server = Server::bind(config).map_err(|e| CliError::Io(format!("cannot bind: {e}")))?;
    writeln!(
        prompt_out,
        "ec serve listening on {} (endpoints: /healthz /library /ingest /pipeline /apply /shutdown)",
        server.local_addr()
    )
    .map_err(|e| CliError::Io(e.to_string()))?;
    if let Some((_, summary)) = &preloaded {
        write!(prompt_out, "{summary}").map_err(|e| CliError::Io(e.to_string()))?;
    }
    prompt_out
        .flush()
        .map_err(|e| CliError::Io(e.to_string()))?;
    let handle = server.handle();
    server
        .run()
        .map_err(|e| CliError::Io(format!("server failed: {e}")))?;
    Ok(CommandOutput::text(format!(
        "server stopped after {} requests\n",
        handle.requests()
    )))
}

/// Resolves a `--column` argument given either a column name or an index.
fn resolve_column(dataset: &Dataset, spec: &str) -> Result<usize, CliError> {
    resolve_column_spec(&dataset.columns, spec).ok_or_else(|| {
        CliError::Usage(format!(
            "no column '{}'; available columns: {}",
            spec,
            dataset.columns.join(", ")
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use crate::memio::MemFiles;
    use ec_data::{dataset_from_csv, dataset_to_csv};
    use std::io::Cursor;

    fn parsed(argv: &[&str]) -> ParsedArgs {
        let args: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        parse(&args).unwrap()
    }

    fn address_csv(clusters: usize) -> String {
        let dataset = PaperDataset::Address.generate(&GeneratorConfig {
            num_clusters: clusters,
            seed: 11,
            num_sources: 4,
        });
        dataset_to_csv(&dataset)
    }

    /// Runs `generate` against an in-memory namespace, returning the output
    /// and the namespace.
    fn generate_mem(argv: &[&str]) -> Result<(CommandOutput, MemFiles), CliError> {
        let fs = MemFiles::new();
        let out = generate(&parsed(argv), &fs.output_opener())?;
        Ok((out, fs))
    }

    #[test]
    fn generate_to_stdout_and_to_file() {
        let (out, _) =
            generate_mem(&["generate", "--dataset", "journaltitle", "--clusters", "8"]).unwrap();
        assert!(out.stdout.starts_with("cluster,source,"));
        assert!(out.written.is_empty());

        let (out, fs) = generate_mem(&[
            "generate",
            "--dataset",
            "authorlist",
            "--clusters",
            "5",
            "--output",
            "a.csv",
        ])
        .unwrap();
        assert!(out.stdout.contains("AuthorList"));
        assert_eq!(out.written, vec!["a.csv".to_string()]);
        assert!(fs.get("a.csv").unwrap().starts_with("cluster,source,"));
    }

    #[test]
    fn generate_rejects_unknown_dataset() {
        let err = generate_mem(&["generate", "--dataset", "movies"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn streamed_writers_match_the_whole_document_adapters() {
        let dataset = PaperDataset::Address.generate(&GeneratorConfig {
            num_clusters: 7,
            seed: 3,
            num_sources: 3,
        });
        assert_eq!(
            csv_string(&dataset, stream_clustered_csv),
            dataset_to_csv(&dataset),
            "the streamed clustered CSV is byte-identical to the in-memory one"
        );
        let flat = csv_string(&dataset, stream_flat_csv);
        assert!(flat.starts_with("source,"));
        assert!(!flat.contains("__truth"));
    }

    #[test]
    fn profile_renders_columns_and_priorities() {
        let csv = address_csv(10);
        let out = profile(&parsed(&["profile", "--input", "x.csv"]), csv.as_bytes()).unwrap();
        assert!(out.stdout.contains("standardization priority"));
        assert!(
            out.stdout.contains("address"),
            "the Address dataset's column is named 'address': {}",
            out.stdout
        );
    }

    #[test]
    fn profile_rejects_malformed_input() {
        let err = profile(
            &parsed(&["profile", "--input", "x.csv"]),
            "not,a,clustered\n1,2,3\n".as_bytes(),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Data(_)));
    }

    #[test]
    fn groups_lists_the_largest_groups_first() {
        let csv = address_csv(20);
        let out = groups(
            &parsed(&["groups", "--input", "x.csv", "--column", "0", "--top", "3"]),
            csv.as_bytes(),
        )
        .unwrap();
        assert!(out.stdout.contains("#1"));
        let sizes: Vec<usize> = out
            .stdout
            .lines()
            .filter(|l| l.starts_with('#'))
            .map(|l| {
                l.split_whitespace()
                    .nth(2)
                    .and_then(|n| n.parse().ok())
                    .unwrap_or(0)
            })
            .collect();
        assert!(!sizes.is_empty());
        assert!(
            sizes.windows(2).all(|w| w[0] >= w[1]),
            "groups are size-ordered: {sizes:?}"
        );
    }

    #[test]
    fn groups_rejects_unknown_columns() {
        let csv = address_csv(5);
        let err = groups(
            &parsed(&["groups", "--input", "x.csv", "--column", "Phone"]),
            csv.as_bytes(),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(msg) if msg.contains("Phone")));
    }

    #[test]
    fn consolidate_auto_uses_truth_and_writes_outputs() {
        let csv = address_csv(15);
        let fs = MemFiles::new();
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        let out = consolidate(
            &parsed(&[
                "consolidate",
                "--input",
                "x.csv",
                "--budget",
                "12",
                "--output",
                "std.csv",
                "--golden",
                "g.csv",
            ]),
            csv.as_bytes(),
            &fs.output_opener(),
            &mut stdin,
            &mut prompts,
        )
        .unwrap();
        assert!(out.stdout.contains("golden records"));
        assert_eq!(out.written.len(), 2);
        let golden = fs.get("g.csv").unwrap();
        assert!(golden.starts_with("cluster,"));
        assert!(prompts.is_empty(), "auto mode never prompts");
    }

    #[test]
    fn consolidate_opens_every_sink_before_truncating_any() {
        // A bad --golden path must fail the command before the --output file
        // is opened (and truncated); the old buffer-then-write flow had this
        // property and the streaming flow must keep it.
        let csv = address_csv(4);
        let opened = std::sync::Arc::new(std::sync::Mutex::new(Vec::<String>::new()));
        let opened_log = std::sync::Arc::clone(&opened);
        let open_output = move |path: &str| -> Result<crate::OutputSink, CliError> {
            opened_log.lock().unwrap().push(path.to_string());
            if path.starts_with("/no/such/dir/") {
                Err(CliError::Io(format!("failed to create {path}: denied")))
            } else {
                Ok(Box::new(Vec::new()))
            }
        };
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        let err = consolidate(
            &parsed(&[
                "consolidate",
                "--input",
                "x.csv",
                "--budget",
                "2",
                "--output",
                "std.csv",
                "--golden",
                "/no/such/dir/g.csv",
            ]),
            csv.as_bytes(),
            &open_output,
            &mut stdin,
            &mut prompts,
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
        let opened = opened.lock().unwrap();
        // std.csv may be opened (all sinks open up front), but nothing was
        // ever streamed into it — consolidation never ran.
        assert!(opened.contains(&"/no/such/dir/g.csv".to_string()));
    }

    #[test]
    fn consolidate_saves_a_reusable_library() {
        let csv = address_csv(15);
        let fs = MemFiles::new();
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        let out = consolidate(
            &parsed(&[
                "consolidate",
                "--input",
                "x.csv",
                "--budget",
                "12",
                "--save-library",
                "lib.txt",
            ]),
            csv.as_bytes(),
            &fs.output_opener(),
            &mut stdin,
            &mut prompts,
        )
        .unwrap();
        assert!(out.stdout.contains("saved"), "{}", out.stdout);
        let snapshot = fs.get("lib.txt").unwrap();
        let library = ProgramLibrary::from_snapshot(&snapshot).unwrap();
        assert!(!library.is_empty(), "approved groups landed in the library");

        // The saved library standardizes the very pairs it was learned from.
        let apply_fs = MemFiles::new();
        apply_fs.insert("lib.txt", &snapshot);
        let column = library.columns().next().unwrap().to_string();
        let from = library.entries(&column)[0].rewrites[0].0.clone();
        let to = library.entries(&column)[0].rewrites[0].1.clone();
        let dataset = dataset_from_csv("x", &csv).unwrap();
        let col_idx = dataset.columns.iter().position(|c| *c == column).unwrap();
        let mut header = vec!["source".to_string()];
        header.extend(dataset.columns.iter().cloned());
        let mut flat = format!("{}\n", header.join(","));
        let mut fields = vec!["0".to_string(); header.len()];
        fields[col_idx + 1] = from.clone();
        flat.push_str(&format!("{}\n", fields.join(",")));
        // Quick sanity only when the value is CSV-safe.
        if !from.contains(',') && !from.contains('"') && !to.contains(',') {
            apply_fs.insert("in.csv", &flat);
            let out = apply(
                &parsed(&["apply", "--library", "lib.txt", "--input", "in.csv"]),
                &apply_fs.input_opener(),
                &apply_fs.output_opener(),
            )
            .unwrap();
            assert!(out.stdout.contains(&to), "{}", out.stdout);
        }
    }

    #[test]
    fn consolidate_interactive_prompts_and_honours_answers() {
        let csv = address_csv(6);
        let fs = MemFiles::new();
        // Approve the first group forward, reject everything else (input runs out).
        let mut stdin = Cursor::new(b"f\nr\nr\nr\nr\nr\nr\nr\nr\nr\n".to_vec());
        let mut prompts = Vec::new();
        let out = consolidate(
            &parsed(&[
                "consolidate",
                "--input",
                "x.csv",
                "--column",
                "0",
                "--budget",
                "5",
                "--mode",
                "interactive",
            ]),
            csv.as_bytes(),
            &fs.output_opener(),
            &mut stdin,
            &mut prompts,
        )
        .unwrap();
        let transcript = String::from_utf8(prompts).unwrap();
        assert!(transcript.contains("reviewing groups"));
        assert!(transcript.contains("replace left with right"));
        assert!(out.stdout.contains("consolidated"));
    }

    #[test]
    fn consolidate_without_truth_falls_back_to_approve_all() {
        let csv = "cluster,source,Name\n0,0,Mary Lee\n0,1,\"Lee, Mary\"\n0,2,M. Lee\n";
        let fs = MemFiles::new();
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        let out = consolidate(
            &parsed(&["consolidate", "--input", "x.csv", "--budget", "10"]),
            csv.as_bytes(),
            &fs.output_opener(),
            &mut stdin,
            &mut prompts,
        )
        .unwrap();
        assert!(out.stdout.contains("approved"));
    }

    #[test]
    fn consolidate_rejects_bad_mode_and_truth_method() {
        let csv = address_csv(3);
        let fs = MemFiles::new();
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        assert!(consolidate(
            &parsed(&["consolidate", "--input", "x", "--mode", "psychic"]),
            csv.as_bytes(),
            &fs.output_opener(),
            &mut stdin,
            &mut prompts
        )
        .is_err());
        assert!(consolidate(
            &parsed(&["consolidate", "--input", "x", "--truth-method", "magic"]),
            csv.as_bytes(),
            &fs.output_opener(),
            &mut stdin,
            &mut prompts
        )
        .is_err());
    }

    #[test]
    fn resolve_clusters_flat_records() {
        let flat = "source,Name,Address\n\
                    0,Mary Lee,\"9 St, 02141 Wisconsin\"\n\
                    1,M. Lee,\"9th St, 02141 WI\"\n\
                    2,\"Lee, Mary\",\"9 Street, 02141 WI\"\n\
                    0,Robert Brown,\"77 Mass Ave, 02139 MA\"\n\
                    1,Bob Brown,\"77 Massachusetts Ave, 02139 MA\"\n";
        let fs = MemFiles::new();
        let out = resolve(
            &parsed(&[
                "resolve",
                "--input",
                "x.csv",
                "--threshold",
                "0.5",
                "--output",
                "c.csv",
            ]),
            flat.as_bytes(),
            &fs.output_opener(),
        )
        .unwrap();
        assert!(out.stdout.contains("resolved 5 records"));
        let csv = fs.get("c.csv").unwrap();
        let clustered = dataset_from_csv("r", &csv).unwrap();
        assert!(
            clustered.clusters.len() < 5,
            "similar records were merged: {csv}"
        );
    }

    #[test]
    fn resolve_validates_threshold_and_input() {
        let fs = MemFiles::new();
        assert!(resolve(
            &parsed(&["resolve", "--input", "x", "--threshold", "3"]),
            "source,A\n0,x\n".as_bytes(),
            &fs.output_opener(),
        )
        .is_err());
        assert!(resolve(
            &parsed(&["resolve", "--input", "x"]),
            "bogus\n1\n".as_bytes(),
            &fs.output_opener(),
        )
        .is_err());
    }

    #[test]
    fn generate_flat_emits_flat_record_csv() {
        let (out, _) = generate_mem(&[
            "generate",
            "--dataset",
            "address",
            "--clusters",
            "6",
            "--seed",
            "2",
            "--flat",
        ])
        .unwrap();
        assert!(out.stdout.starts_with("source,"));
        assert!(!out.stdout.contains("__truth"));
        // The flat output feeds straight back into the resolver.
        let stream = FlatCsvReader::new(out.stdout.as_bytes()).unwrap();
        assert!(!stream.columns().is_empty());
    }

    #[test]
    fn pipeline_output_is_bit_identical_to_resolve_then_consolidate() {
        let (flat_out, _) = generate_mem(&[
            "generate",
            "--dataset",
            "address",
            "--clusters",
            "10",
            "--seed",
            "5",
            "--flat",
        ])
        .unwrap();
        let flat = flat_out.stdout;

        // Two passes through an intermediate clustered CSV...
        let two_pass_fs = MemFiles::new();
        resolve(
            &parsed(&[
                "resolve",
                "--input",
                "f.csv",
                "--threshold",
                "0.6",
                "--output",
                "c.csv",
            ]),
            flat.as_bytes(),
            &two_pass_fs.output_opener(),
        )
        .unwrap();
        let clustered = two_pass_fs.get("c.csv").unwrap();
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        let two_pass = consolidate(
            &parsed(&[
                "consolidate",
                "--input",
                "c.csv",
                "--budget",
                "15",
                "--output",
                "std.csv",
                "--golden",
                "g.csv",
            ]),
            clustered.as_bytes(),
            &two_pass_fs.output_opener(),
            &mut stdin,
            &mut prompts,
        )
        .unwrap();

        // ...versus the fused pipeline with the same flags.
        let fused_fs = MemFiles::new();
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        let fused = pipeline(
            &parsed(&[
                "pipeline",
                "--input",
                "f.csv",
                "--threshold",
                "0.6",
                "--budget",
                "15",
                "--output",
                "std.csv",
                "--golden",
                "g.csv",
            ]),
            flat.as_bytes(),
            &fused_fs.output_opener(),
            &mut stdin,
            &mut prompts,
        )
        .unwrap();

        for file in ["std.csv", "g.csv"] {
            assert_eq!(
                fused_fs.get(file),
                two_pass_fs.get(file),
                "{file} is bit-identical"
            );
        }
        assert_eq!(fused.written, two_pass.written);
        assert!(fused.stdout.contains("resolved"));
        assert!(fused.stdout.contains("golden records"));
        assert!(fused.stdout.ends_with(&two_pass.stdout));
    }

    #[test]
    fn pipeline_validates_threshold_and_input() {
        let fs = MemFiles::new();
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        assert!(pipeline(
            &parsed(&["pipeline", "--input", "x", "--threshold", "7"]),
            "source,A\n0,x\n".as_bytes(),
            &fs.output_opener(),
            &mut stdin,
            &mut prompts,
        )
        .is_err());
        assert!(pipeline(
            &parsed(&["pipeline", "--input", "x"]),
            "bogus\n1\n".as_bytes(),
            &fs.output_opener(),
            &mut stdin,
            &mut prompts,
        )
        .is_err());
    }

    #[test]
    fn ingest_outputs_are_bit_identical_to_pipeline() {
        let flat = flat_csv(10, 5);
        let flags = [
            "--threshold",
            "0.6",
            "--budget",
            "15",
            "--output",
            "std.csv",
            "--golden",
            "g.csv",
        ];

        let pipeline_fs = MemFiles::new();
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        let mut argv = vec!["pipeline", "--input", "f.csv"];
        argv.extend(flags);
        pipeline(
            &parsed(&argv),
            flat.as_bytes(),
            &pipeline_fs.output_opener(),
            &mut stdin,
            &mut prompts,
        )
        .unwrap();

        for batch_size in ["7", "1000"] {
            let ingest_fs = MemFiles::new();
            let mut argv = vec!["ingest", "--input", "f.csv", "--batch-size", batch_size];
            argv.extend(flags);
            let out = ingest(&parsed(&argv), flat.as_bytes(), &ingest_fs.output_opener()).unwrap();
            assert!(out.stdout.contains("batch 1:"), "{}", out.stdout);
            assert!(out.stdout.contains("fast path:"), "{}", out.stdout);
            for file in ["std.csv", "g.csv"] {
                assert_eq!(
                    ingest_fs.get(file),
                    pipeline_fs.get(file),
                    "{file} diverged at batch size {batch_size}"
                );
            }
        }
    }

    #[test]
    fn ingest_validates_batch_size_and_mode() {
        let fs = MemFiles::new();
        assert!(ingest(
            &parsed(&["ingest", "--input", "x", "--batch-size", "0"]),
            "source,A\n0,x\n".as_bytes(),
            &fs.output_opener(),
        )
        .is_err());
        assert!(ingest(
            &parsed(&["ingest", "--input", "x", "--mode", "interactive"]),
            "source,A\n0,x\n".as_bytes(),
            &fs.output_opener(),
        )
        .is_err());
        // Header-only input is fine: one empty batch, empty outputs.
        let out = ingest(
            &parsed(&["ingest", "--input", "x", "--golden", "g.csv"]),
            "source,A\n".as_bytes(),
            &fs.output_opener(),
        )
        .unwrap();
        assert!(out.stdout.contains("ingested 0 records"), "{}", out.stdout);
        assert_eq!(fs.get("g.csv").unwrap(), "cluster,A\n");
    }

    #[test]
    fn apply_standardizes_through_a_snapshot_and_reports_unmatched() {
        use ec_core::ApprovedGroup;
        use ec_replace::Direction;
        let mut library = ProgramLibrary::new();
        library.record(
            "Name",
            &ApprovedGroup {
                group: ec_core::Group::new(
                    None,
                    vec![ec_graph::Replacement::new("Lee, Mary", "Mary Lee")],
                ),
                direction: Direction::Forward,
            },
        );
        let fs = MemFiles::new();
        fs.insert("lib.txt", &library.to_snapshot());
        fs.insert(
            "in.csv",
            "source,Name\n0,\"Lee, Mary\"\n1,Mary Lee\n2,unknown\n",
        );
        let out = apply(
            &parsed(&[
                "apply",
                "--library",
                "lib.txt",
                "--input",
                "in.csv",
                "--output",
                "out.csv",
            ]),
            &fs.input_opener(),
            &fs.output_opener(),
        )
        .unwrap();
        assert_eq!(
            fs.get("out.csv").unwrap(),
            "source,Name\n0,Mary Lee\n1,Mary Lee\n2,unknown\n"
        );
        assert!(out.stdout.contains("1 cells rewritten"), "{}", out.stdout);
        assert!(out.stdout.contains("1 unmatched"), "{}", out.stdout);
        assert!(out.stdout.contains("unmatched Name: \"unknown\""));
        assert_eq!(out.written, vec!["out.csv".to_string()]);

        // Without --output the standardized CSV goes to stdout.
        let out = apply(
            &parsed(&["apply", "--library", "lib.txt", "--input", "in.csv"]),
            &fs.input_opener(),
            &fs.output_opener(),
        )
        .unwrap();
        assert!(out.stdout.starts_with("source,Name\n0,Mary Lee\n"));
    }

    #[test]
    fn apply_rejects_bad_libraries_and_inputs() {
        let fs = MemFiles::new();
        fs.insert("bad.txt", "not a library\n");
        fs.insert("in.csv", "source,Name\n0,x\n");
        let err = apply(
            &parsed(&["apply", "--library", "bad.txt", "--input", "in.csv"]),
            &fs.input_opener(),
            &fs.output_opener(),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Data(_)));
        let err = apply(
            &parsed(&["apply", "--library", "missing.txt", "--input", "in.csv"]),
            &fs.input_opener(),
            &fs.output_opener(),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn serve_starts_serves_and_stops() {
        let fs = MemFiles::new();
        let mut library = ProgramLibrary::new();
        library.record(
            "Name",
            &ec_core::ApprovedGroup {
                group: ec_core::Group::new(None, vec![ec_graph::Replacement::new("Street", "St")]),
                direction: ec_replace::Direction::Forward,
            },
        );
        fs.insert("lib.txt", &library.to_snapshot());
        // Run the blocking serve command on a helper thread, parse the bound
        // address from its startup line, then drive it over HTTP.
        let (sender, receiver) = std::sync::mpsc::channel();
        let opener = fs.input_opener();
        let join = std::thread::spawn(move || {
            struct LineTap(std::sync::mpsc::Sender<String>);
            impl Write for LineTap {
                fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                    let _ = self.0.send(String::from_utf8_lossy(buf).into_owned());
                    Ok(buf.len())
                }
                fn flush(&mut self) -> std::io::Result<()> {
                    Ok(())
                }
            }
            let mut tap = LineTap(sender);
            serve(
                &parsed(&["serve", "--addr", "127.0.0.1:0", "--library", "lib.txt"]),
                &opener,
                &mut tap,
            )
        });
        // `writeln!` may emit the line in fragments; accumulate to the EOL.
        let mut startup = String::new();
        while !startup.contains('\n') {
            startup.push_str(
                &receiver
                    .recv_timeout(std::time::Duration::from_secs(10))
                    .expect("serve prints its address"),
            );
        }
        let addr: std::net::SocketAddr = startup
            .split_whitespace()
            .nth(4)
            .expect("address in startup line")
            .parse()
            .expect("parsable address");
        let health = ec_serve::http::request(addr, "GET", "/healthz", b"").unwrap();
        assert_eq!(health.status, 200);
        let snapshot = ec_serve::http::request(addr, "GET", "/library", b"").unwrap();
        assert!(String::from_utf8(snapshot.body).unwrap().contains("Street"));
        let stop = ec_serve::http::request(addr, "POST", "/shutdown", b"").unwrap();
        assert_eq!(stop.status, 200);
        let out = join.join().unwrap().unwrap();
        assert!(out.stdout.contains("server stopped"), "{}", out.stdout);
    }

    #[test]
    fn column_resolution_by_name_and_index() {
        let dataset = PaperDataset::Address.generate(&GeneratorConfig {
            num_clusters: 2,
            seed: 1,
            num_sources: 2,
        });
        assert_eq!(resolve_column(&dataset, "0").unwrap(), 0);
        assert_eq!(resolve_column(&dataset, &dataset.columns[0]).unwrap(), 0);
        assert!(resolve_column(&dataset, "999").is_err());
    }

    /// A flat Address CSV straight out of `ec generate --flat`.
    fn flat_csv(clusters: usize, seed: u64) -> String {
        let (out, _) = generate_mem(&[
            "generate",
            "--dataset",
            "address",
            "--clusters",
            &clusters.to_string(),
            "--seed",
            &seed.to_string(),
            "--flat",
        ])
        .unwrap();
        out.stdout
    }

    /// Writes an artifact compiled from `flat` to a real temp file and
    /// returns its path. `load_artifact` deliberately bypasses the opener
    /// indirection — memory-mapping the file *is* the point — so artifact
    /// consumers need a genuine file on disk.
    fn compiled_temp_artifact(flat: &str, threshold: &str, tag: &str) -> std::path::PathBuf {
        let fs = MemFiles::new();
        compile(
            &parsed(&[
                "compile",
                "--input",
                "f.csv",
                "--output",
                "a.eca",
                "--threshold",
                threshold,
            ]),
            flat.as_bytes(),
            &fs.output_opener(),
        )
        .unwrap();
        let path = std::env::temp_dir().join(format!("ec-cli-{tag}-{}.eca", std::process::id()));
        std::fs::write(&path, fs.get_bytes("a.eca").unwrap()).unwrap();
        path
    }

    #[test]
    fn compile_writes_a_decodable_artifact_and_flat_csv() {
        let flat = flat_csv(8, 7);
        let fs = MemFiles::new();
        let out = compile(
            &parsed(&[
                "compile",
                "--input",
                "f.csv",
                "--output",
                "a.eca",
                "--threshold",
                "0.6",
                "--emit-flat",
                "flat.csv",
            ]),
            flat.as_bytes(),
            &fs.output_opener(),
        )
        .unwrap();
        assert!(
            out.stdout.starts_with("compiled resolved:"),
            "{}",
            out.stdout
        );
        assert!(out.stdout.contains("artifact bytes"), "{}", out.stdout);
        assert_eq!(
            out.written,
            vec!["a.eca".to_string(), "flat.csv".to_string()]
        );

        let bytes = fs.get_bytes("a.eca").unwrap();
        let compiled = ec_artifact::read_artifact_bytes(&bytes).expect("the artifact decodes");
        assert_eq!(compiled.threshold, 0.6);
        assert!(compiled.has_truth, "resolver output carries per-cell truth");
        assert_eq!(compiled.columns.len(), compiled.dataset.columns.len());
        assert!(!compiled.dataset.clusters.is_empty());

        let emitted = fs.get("flat.csv").unwrap();
        assert!(emitted.starts_with("source,"));
        assert_eq!(
            emitted.lines().count(),
            compiled.dataset.num_records() + 1,
            "one line per record plus the header"
        );

        // Clustered input is recognized by its header and skips the resolver.
        let clustered = address_csv(4);
        let fs = MemFiles::new();
        compile(
            &parsed(&["compile", "--input", "c.csv", "--output", "c.eca"]),
            clustered.as_bytes(),
            &fs.output_opener(),
        )
        .unwrap();
        let compiled = ec_artifact::read_artifact_bytes(&fs.get_bytes("c.eca").unwrap()).unwrap();
        assert_eq!(compiled.dataset.clusters.len(), 4);
    }

    #[test]
    fn pipeline_from_artifact_matches_the_fresh_run_byte_for_byte() {
        let flat = flat_csv(10, 5);
        let flags = [
            "--threshold",
            "0.6",
            "--budget",
            "15",
            "--output",
            "std.csv",
            "--golden",
            "g.csv",
            "--save-library",
            "lib.txt",
        ];

        let fresh_fs = MemFiles::new();
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        let mut argv = vec!["pipeline", "--input", "f.csv"];
        argv.extend(flags);
        pipeline(
            &parsed(&argv),
            flat.as_bytes(),
            &fresh_fs.output_opener(),
            &mut stdin,
            &mut prompts,
        )
        .unwrap();

        let path = compiled_temp_artifact(&flat, "0.6", "pipeline");
        let preloaded_fs = MemFiles::new();
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        let mut argv = vec!["pipeline", "--artifact", path.to_str().unwrap()];
        argv.extend(flags);
        let out = pipeline(
            &parsed(&argv),
            std::io::empty(),
            &preloaded_fs.output_opener(),
            &mut stdin,
            &mut prompts,
        )
        .unwrap();
        std::fs::remove_file(&path).unwrap();

        assert!(
            out.stdout.starts_with("loaded compiled artifact"),
            "{}",
            out.stdout
        );
        assert!(out.stdout.contains("skipped"), "{}", out.stdout);
        for file in ["std.csv", "g.csv", "lib.txt"] {
            assert_eq!(
                preloaded_fs.get(file),
                fresh_fs.get(file),
                "{file} is bit-identical"
            );
        }
    }

    #[test]
    fn artifact_threshold_mismatch_is_a_usage_error() {
        let flat = flat_csv(3, 2);
        let path = compiled_temp_artifact(&flat, "0.6", "mismatch");
        let fs = MemFiles::new();
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        let err = pipeline(
            &parsed(&[
                "pipeline",
                "--artifact",
                path.to_str().unwrap(),
                "--threshold",
                "0.9",
            ]),
            std::io::empty(),
            &fs.output_opener(),
            &mut stdin,
            &mut prompts,
        )
        .unwrap_err();
        std::fs::remove_file(&path).unwrap();
        match err {
            CliError::Usage(msg) => {
                assert!(
                    msg.contains("was compiled at threshold 0.6, not 0.9"),
                    "{msg}"
                );
            }
            other => panic!("expected a usage error, got {other:?}"),
        }
    }

    #[test]
    fn artifact_fallback_rebuilds_from_input_with_a_warning() {
        let path = std::env::temp_dir().join(format!("ec-cli-fallback-{}.eca", std::process::id()));
        std::fs::write(&path, b"not an artifact").unwrap();
        let flat = flat_csv(3, 2);

        // With --input, a bad artifact degrades to a warning plus a fresh build.
        let fs = MemFiles::new();
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        let out = pipeline(
            &parsed(&[
                "pipeline",
                "--artifact",
                path.to_str().unwrap(),
                "--input",
                "f.csv",
                "--threshold",
                "0.6",
                "--output",
                "std.csv",
            ]),
            flat.as_bytes(),
            &fs.output_opener(),
            &mut stdin,
            &mut prompts,
        )
        .unwrap();
        assert!(out.stdout.contains("resolved"), "{}", out.stdout);
        let warning = String::from_utf8(prompts).unwrap();
        assert!(
            warning.contains("warning: cannot load artifact"),
            "{warning}"
        );
        assert!(warning.contains("rebuilding from --input"), "{warning}");

        // Without --input there is nothing to fall back to.
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        let err = pipeline(
            &parsed(&["pipeline", "--artifact", path.to_str().unwrap()]),
            std::io::empty(),
            &fs.output_opener(),
            &mut stdin,
            &mut prompts,
        )
        .unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(err, CliError::Data(_)), "{err:?}");
    }

    #[test]
    fn apply_from_artifact_matches_apply_on_the_emitted_flat_csv() {
        let flat = flat_csv(6, 3);
        let fs = MemFiles::new();
        // A real library learned from the same records.
        let mut stdin = Cursor::new(Vec::new());
        let mut prompts = Vec::new();
        pipeline(
            &parsed(&[
                "pipeline",
                "--input",
                "f.csv",
                "--threshold",
                "0.6",
                "--budget",
                "15",
                "--save-library",
                "lib.txt",
            ]),
            flat.as_bytes(),
            &fs.output_opener(),
            &mut stdin,
            &mut prompts,
        )
        .unwrap();
        // The artifact plus its own --emit-flat rendering of the records.
        compile(
            &parsed(&[
                "compile",
                "--input",
                "f.csv",
                "--output",
                "a.eca",
                "--threshold",
                "0.6",
                "--emit-flat",
                "emitted.csv",
            ]),
            flat.as_bytes(),
            &fs.output_opener(),
        )
        .unwrap();
        let path = std::env::temp_dir().join(format!("ec-cli-apply-{}.eca", std::process::id()));
        std::fs::write(&path, fs.get_bytes("a.eca").unwrap()).unwrap();

        let from_input = apply(
            &parsed(&[
                "apply",
                "--library",
                "lib.txt",
                "--input",
                "emitted.csv",
                "--output",
                "out1.csv",
            ]),
            &fs.input_opener(),
            &fs.output_opener(),
        )
        .unwrap();
        let from_artifact = apply(
            &parsed(&[
                "apply",
                "--library",
                "lib.txt",
                "--artifact",
                path.to_str().unwrap(),
                "--output",
                "out2.csv",
            ]),
            &fs.input_opener(),
            &fs.output_opener(),
        )
        .unwrap();
        let both = apply(
            &parsed(&[
                "apply",
                "--library",
                "lib.txt",
                "--artifact",
                path.to_str().unwrap(),
                "--input",
                "emitted.csv",
            ]),
            &fs.input_opener(),
            &fs.output_opener(),
        );
        std::fs::remove_file(&path).unwrap();

        assert_eq!(
            fs.get("out1.csv"),
            fs.get("out2.csv"),
            "the artifact's records standardize identically to the emitted flat CSV"
        );
        assert_eq!(from_input.stdout, from_artifact.stdout);
        match both.unwrap_err() {
            CliError::Usage(msg) => assert!(msg.contains("not both"), "{msg}"),
            other => panic!("expected a usage error, got {other:?}"),
        }
    }
}
