//! A small, dependency-free command-line argument parser.
//!
//! The `ec` tool only needs `--flag value` options, `--switch` booleans, and
//! one leading subcommand, so a hand-rolled parser keeps the dependency
//! surface to the sanctioned crate list (no `clap`). Unknown flags are
//! rejected so typos fail loudly instead of being ignored.

use crate::CliError;
use std::collections::{BTreeMap, BTreeSet};

/// Parsed command-line arguments: a subcommand plus its options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The subcommand name (the first non-flag argument).
    pub command: String,
    /// `--key value` options.
    pub options: BTreeMap<String, String>,
    /// `--switch` options with no value.
    pub switches: BTreeSet<String>,
}

impl ParsedArgs {
    /// A string-valued option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required string-valued option.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError::Usage(format!("missing required option --{key}")))
    }

    /// An optional numeric option with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key} expects an integer, got '{v}'"))),
        }
    }

    /// An optional u64 option with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key} expects an integer, got '{v}'"))),
        }
    }

    /// An optional float option with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key} expects a number, got '{v}'"))),
        }
    }

    /// Whether a boolean switch was passed.
    pub fn has(&self, switch: &str) -> bool {
        self.switches.contains(switch)
    }
}

/// The flags each subcommand accepts: (value options, boolean switches).
fn accepted(command: &str) -> Option<(&'static [&'static str], &'static [&'static str])> {
    match command {
        "generate" => Some((
            &["dataset", "clusters", "seed", "sources", "output"],
            &["flat"],
        )),
        "profile" => Some((&["input", "name"], &[])),
        "groups" => Some((
            &["input", "column", "top", "max-path-len", "threads"],
            &["no-affix", "no-structure"],
        )),
        "consolidate" => Some((
            &[
                "input",
                "artifact",
                "column",
                "budget",
                "mode",
                "output",
                "golden",
                "truth-method",
                "threads",
                "save-library",
            ],
            &[],
        )),
        "resolve" => Some((&["input", "threshold", "output", "name", "threads"], &[])),
        "pipeline" => Some((
            &[
                "input",
                "artifact",
                "threshold",
                "name",
                "column",
                "budget",
                "mode",
                "output",
                "golden",
                "truth-method",
                "threads",
                "save-library",
            ],
            &[],
        )),
        "ingest" => Some((
            &[
                "input",
                "batch-size",
                "threshold",
                "name",
                "budget",
                "mode",
                "truth-method",
                "output",
                "golden",
                "threads",
                "save-library",
                "ingest-cache-cap",
            ],
            &[],
        )),
        "apply" => Some((&["input", "artifact", "library", "output"], &[])),
        "compile" => Some((
            &[
                "input",
                "output",
                "threshold",
                "name",
                "threads",
                "emit-flat",
            ],
            &[],
        )),
        "serve" => Some((
            &[
                "addr",
                "threads",
                "library",
                "library-cap",
                "library-ttl",
                "max-connections",
                "route",
                "artifact",
                "auth-token",
                "ingest-cache-cap",
            ],
            &[],
        )),
        "help" | "" => Some((&[], &[])),
        _ => None,
    }
}

/// Parses the raw argument list (excluding the program name).
pub fn parse(args: &[String]) -> Result<ParsedArgs, CliError> {
    let mut parsed = ParsedArgs::default();
    let mut iter = args.iter().peekable();
    match iter.next() {
        None => {
            parsed.command = "help".to_string();
            return Ok(parsed);
        }
        Some(cmd) if cmd.starts_with("--") => {
            return Err(CliError::Usage(format!(
                "expected a subcommand before '{cmd}'; run `ec help`"
            )))
        }
        Some(cmd) => parsed.command = cmd.clone(),
    }
    let Some((value_opts, switch_opts)) = accepted(&parsed.command) else {
        return Err(CliError::Usage(format!(
            "unknown subcommand '{}'; run `ec help`",
            parsed.command
        )));
    };
    while let Some(arg) = iter.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(CliError::Usage(format!(
                "unexpected positional argument '{arg}'"
            )));
        };
        if switch_opts.contains(&name) {
            parsed.switches.insert(name.to_string());
        } else if value_opts.contains(&name) || name == "trace" {
            // `--trace FILE` is global: every subcommand can write its stage
            // spans as JSONL (equivalent to running with EC_TRACE=FILE).
            let value = iter
                .next()
                .ok_or_else(|| CliError::Usage(format!("--{name} requires a value")))?;
            parsed.options.insert(name.to_string(), value.clone());
        } else {
            return Err(CliError::Usage(format!(
                "unknown option --{name} for subcommand '{}'",
                parsed.command
            )));
        }
    }
    Ok(parsed)
}

/// The `ec help` text.
pub fn usage() -> String {
    "\
ec — entity consolidation from the command line

USAGE:
  ec <subcommand> [options]

SUBCOMMANDS:
  generate     generate one of the paper's synthetic datasets as clustered CSV
               (or as flat record CSV with --flat)
                 --dataset authorlist|address|journaltitle  --clusters N
                 --seed N  --sources N  [--flat]  --output FILE
  profile      profile a clustered CSV: per-column statistics, structure
               histograms and a standardization priority ranking
                 --input FILE  [--name NAME]
  groups       show the largest replacement groups of one column
                 --input FILE  --column NAME|INDEX  [--top K]
                 [--max-path-len N]  [--no-affix]  [--no-structure]
                 [--threads N]
  consolidate  standardize columns and emit golden records
                 --input FILE  [--artifact FILE]  [--column NAME|INDEX]
                 [--budget N]  [--mode auto|approve-all|interactive]
                 [--truth-method majority|reliability]
                 [--output FILE]  [--golden FILE]  [--threads N]
                 [--save-library FILE]
  resolve      cluster flat (unresolved) records into a clustered CSV,
               streaming the input record by record
                 --input FILE  [--threshold T]  [--name NAME]  [--output FILE]
                 [--threads N]
  pipeline     fused resolve + consolidate: flat record CSV in, golden-record
               CSV out, with no intermediate clustered file; output is
               bit-identical to running resolve then consolidate
                 --input FILE  [--artifact FILE]  [--threshold T]
                 [--name NAME]  [--column NAME|INDEX]  [--budget N]
                 [--mode auto|approve-all|interactive]
                 [--truth-method majority|reliability]
                 [--output FILE]  [--golden FILE]  [--threads N]
                 [--save-library FILE]
  ingest       incremental (delta) pipeline: stream flat records in batches
               through a persistent consolidation state instead of a full
               rebuild per batch; the final golden output is byte-identical
               to `ec pipeline` over the same records, but seen shapes cost
               ~a lookup per record (residue pays for the learning)
                 --input FILE  [--batch-size N]  [--threshold T]
                 [--name NAME]  [--budget N]  [--mode auto|approve-all]
                 [--truth-method majority|reliability]
                 [--output FILE]  [--golden FILE]  [--threads N]
                 [--save-library FILE]
                 [--ingest-cache-cap N]  (bound the per-cluster candidate
                                      cache to N clusters per column,
                                      least-recently-hit evicted; evicted
                                      work is regenerated on demand, so
                                      outputs never change; 0 = unbounded)
  apply        standardize flat records through a saved program library —
               learn once, apply forever, no re-learning
                 --input FILE  --library FILE  [--output FILE]
                 (--artifact FILE replaces --input: apply to the compiled
                 dataset's own records)
  compile      compile a dataset into a binary artifact for instant cold
               start: interned label tables, prepared transformation graphs
               and the CSR inverted index, ready to be memory-mapped by
               pipeline/consolidate/apply/serve via --artifact — no parse,
               resolve, candidate generation or index build at load time
                 --input FILE (flat or clustered CSV)  --output FILE
                 [--threshold T]  [--name NAME]  [--threads N]
                 [--emit-flat FILE]  (also write the compiled records as
                                      flat CSV, for byte-compare testing)
  serve        run the consolidation HTTP service on the shared worker pool
               (endpoints: /healthz /metrics /library /pipeline /apply
               /shutdown; connections are kept alive across sequential
               requests)
                 [--addr HOST:PORT]  [--threads N]  [--library FILE]
                 [--library-cap N]   (cap learned entries per column, LRU
                                      eviction; 0 = unbounded, the default)
                 [--library-ttl SECS]  (evict library entries untouched for
                                      SECS seconds; 0 = never, the default)
                 [--max-connections N]  (reject connections over N with 503
                                      + Retry-After; 0 = unbounded)
                 [--auth-token SECRET]  (require `Authorization: Bearer
                                      SECRET` on all mutating endpoints;
                                      routers forward it to their backends)
                 [--artifact FILE]  (memory-map a compiled artifact at
                                      startup; an empty-body POST /pipeline
                                      or /apply then replays the compiled
                                      dataset instead of parsing a body)
                 [--ingest-cache-cap N]  (bound the /ingest session's
                                      per-cluster candidate cache, as for
                                      `ec ingest`; 0 = unbounded)
               with --route, run as a shard router instead: partition work
               across backend ec serve processes over a consistent-hash
               ring (/apply shards by column, /pipeline routes whole by
               blocking key, libraries replicate across backends)
                 --route HOST:PORT,HOST:PORT,...  [--addr HOST:PORT]
  help         show this message

Clustered CSV has columns: cluster, source, <attr>..., [<attr>__truth]...
Flat CSV has columns: source, <attr>...

Inputs are consumed through streaming, buffered readers, and --output files
are streamed cluster-at-a-time: neither the CSV document nor the produced
file is ever buffered whole (only the parsed records / clusters a command
works on are held in memory). --threads N sets the worker shards for
candidate generation and grouping (0 = auto: the EC_THREADS environment
variable, else the machine); the work runs on one process-wide
work-stealing pool. Results are bit-identical for every thread count.

The program-library workflow is learn -> save -> apply: a consolidate or
pipeline run with --save-library FILE stores every group the oracle
approved as a text snapshot; `ec apply` (or a running `ec serve`)
standardizes new records through that snapshot without re-learning.

Every subcommand accepts --trace FILE (equivalent to EC_TRACE=FILE):
pipeline stages append one JSON line per span — name, span/parent ids,
thread, start/end/duration in microseconds — for offline latency analysis.
A running serve/router additionally exposes the live metrics registry
(counters, gauges, latency histograms) on GET /metrics in Prometheus text
format.
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_options_and_switches() {
        let p = parse(&args(&[
            "groups",
            "--input",
            "data.csv",
            "--column",
            "Address",
            "--top",
            "5",
            "--no-affix",
        ]))
        .unwrap();
        assert_eq!(p.command, "groups");
        assert_eq!(p.get("input"), Some("data.csv"));
        assert_eq!(p.get("column"), Some("Address"));
        assert_eq!(p.get_usize("top", 10).unwrap(), 5);
        assert!(p.has("no-affix"));
        assert!(!p.has("no-structure"));
    }

    #[test]
    fn empty_args_mean_help() {
        assert_eq!(parse(&[]).unwrap().command, "help");
    }

    #[test]
    fn unknown_subcommand_is_rejected() {
        let err = parse(&args(&["frobnicate"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(msg) if msg.contains("frobnicate")));
    }

    #[test]
    fn unknown_option_is_rejected() {
        let err = parse(&args(&["profile", "--bogus", "x"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(msg) if msg.contains("--bogus")));
    }

    #[test]
    fn option_without_value_is_rejected() {
        let err = parse(&args(&["profile", "--input"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(msg) if msg.contains("requires a value")));
    }

    #[test]
    fn flag_before_subcommand_is_rejected() {
        assert!(parse(&args(&["--input", "x"])).is_err());
        assert!(parse(&args(&["generate", "stray"])).is_err());
    }

    #[test]
    fn numeric_accessors_validate() {
        let p = parse(&args(&["generate", "--clusters", "abc"])).unwrap();
        assert!(p.get_usize("clusters", 10).is_err());
        assert_eq!(
            p.get_usize("seed", 7).unwrap(),
            7,
            "missing option falls back to default"
        );
        let p = parse(&args(&["resolve", "--threshold", "0.8"])).unwrap();
        assert!((p.get_f64("threshold", 0.5).unwrap() - 0.8).abs() < 1e-9);
        assert!(parse(&args(&["resolve", "--threshold", "x"]))
            .unwrap()
            .get_f64("threshold", 0.5)
            .is_err());
    }

    #[test]
    fn require_reports_the_missing_flag() {
        let p = parse(&args(&["profile"])).unwrap();
        let err = p.require("input").unwrap_err();
        assert!(matches!(err, CliError::Usage(msg) if msg.contains("--input")));
    }

    #[test]
    fn usage_mentions_every_subcommand() {
        let text = usage();
        for cmd in [
            "generate",
            "profile",
            "groups",
            "consolidate",
            "resolve",
            "pipeline",
            "ingest",
            "apply",
            "compile",
            "serve",
        ] {
            assert!(text.contains(cmd));
        }
    }
}
