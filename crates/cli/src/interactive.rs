//! The interactive review oracle.
//!
//! `ec consolidate --mode interactive` plays the role of the paper's human
//! expert: each replacement group is printed with a handful of its member
//! pairs and the shared transformation program, and the user answers with a
//! single letter — approve forward, approve backward, or reject — exactly the
//! decision surface of Section 3, Step 3.

use ec_core::{Oracle, Verdict};
use ec_grouping::Group;
use ec_replace::Direction;
use std::io::{BufRead, Write};

/// How many member replacements of a group are printed for review.
const SHOWN_MEMBERS: usize = 8;

/// An [`Oracle`] that asks a human over a line-oriented text channel.
pub struct InteractiveOracle<'a> {
    input: &'a mut dyn BufRead,
    output: &'a mut dyn Write,
    reviewed: usize,
    approved: usize,
}

impl<'a> InteractiveOracle<'a> {
    /// Creates an oracle reading answers from `input` and writing prompts to
    /// `output` (stdin/stdout in the CLI, in-memory buffers in tests).
    pub fn new(input: &'a mut dyn BufRead, output: &'a mut dyn Write) -> Self {
        InteractiveOracle {
            input,
            output,
            reviewed: 0,
            approved: 0,
        }
    }

    /// Number of groups reviewed so far.
    pub fn reviewed(&self) -> usize {
        self.reviewed
    }

    /// Number of groups approved so far.
    pub fn approved(&self) -> usize {
        self.approved
    }

    fn prompt(&mut self, group: &Group) -> std::io::Result<Verdict> {
        writeln!(self.output)?;
        writeln!(
            self.output,
            "group #{} — {} replacements",
            self.reviewed,
            group.size()
        )?;
        if let Some(program) = group.program() {
            writeln!(self.output, "shared transformation: {program}")?;
        }
        for member in group.members().iter().take(SHOWN_MEMBERS) {
            writeln!(self.output, "  {:?} -> {:?}", member.lhs(), member.rhs())?;
        }
        if group.size() > SHOWN_MEMBERS {
            writeln!(self.output, "  … and {} more", group.size() - SHOWN_MEMBERS)?;
        }
        loop {
            write!(
                self.output,
                "[f] replace left with right  [b] replace right with left  [r] reject  > "
            )?;
            self.output.flush()?;
            let mut line = String::new();
            if self.input.read_line(&mut line)? == 0 {
                // End of input: stop approving anything further.
                return Ok(Verdict::Reject);
            }
            match line.trim().to_ascii_lowercase().as_str() {
                "f" | "forward" | "y" | "yes" | "a" | "approve" => {
                    return Ok(Verdict::Approve(Direction::Forward))
                }
                "b" | "backward" => return Ok(Verdict::Approve(Direction::Backward)),
                "r" | "reject" | "n" | "no" => return Ok(Verdict::Reject),
                other => {
                    writeln!(
                        self.output,
                        "unrecognized answer '{other}', please type f, b or r"
                    )?;
                }
            }
        }
    }
}

impl Oracle for InteractiveOracle<'_> {
    fn review(&mut self, group: &Group) -> Verdict {
        self.reviewed += 1;
        let verdict = self.prompt(group).unwrap_or(Verdict::Reject);
        if matches!(verdict, Verdict::Approve(_)) {
            self.approved += 1;
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_graph::Replacement;
    use std::io::Cursor;

    fn group() -> Group {
        Group::new(
            None,
            vec![
                Replacement::new("Street", "St"),
                Replacement::new("Avenue", "Ave"),
            ],
        )
    }

    fn review_with(answers: &str) -> (Verdict, String, usize, usize) {
        let mut input = Cursor::new(answers.as_bytes().to_vec());
        let mut output = Vec::new();
        let mut oracle = InteractiveOracle::new(&mut input, &mut output);
        let verdict = oracle.review(&group());
        let reviewed = oracle.reviewed();
        let approved = oracle.approved();
        (
            verdict,
            String::from_utf8(output).unwrap(),
            reviewed,
            approved,
        )
    }

    #[test]
    fn forward_backward_and_reject_answers() {
        assert_eq!(review_with("f\n").0, Verdict::Approve(Direction::Forward));
        assert_eq!(review_with("yes\n").0, Verdict::Approve(Direction::Forward));
        assert_eq!(review_with("b\n").0, Verdict::Approve(Direction::Backward));
        assert_eq!(review_with("r\n").0, Verdict::Reject);
        assert_eq!(review_with("no\n").0, Verdict::Reject);
    }

    #[test]
    fn prompt_shows_the_members_and_counts_reviews() {
        let (verdict, transcript, reviewed, approved) = review_with("f\n");
        assert_eq!(verdict, Verdict::Approve(Direction::Forward));
        assert!(transcript.contains("2 replacements"));
        assert!(transcript.contains("\"Street\" -> \"St\""));
        assert_eq!(reviewed, 1);
        assert_eq!(approved, 1);
    }

    #[test]
    fn unrecognized_answers_reprompt() {
        let (verdict, transcript, _, approved) = review_with("maybe\nf\n");
        assert_eq!(verdict, Verdict::Approve(Direction::Forward));
        assert!(transcript.contains("unrecognized answer 'maybe'"));
        assert_eq!(approved, 1);
    }

    #[test]
    fn end_of_input_rejects() {
        let (verdict, _, reviewed, approved) = review_with("");
        assert_eq!(verdict, Verdict::Reject);
        assert_eq!(reviewed, 1);
        assert_eq!(approved, 0);
    }

    #[test]
    fn large_groups_are_truncated_in_the_prompt() {
        let members: Vec<Replacement> = (0..20)
            .map(|i| Replacement::new(format!("v{i}"), format!("w{i}")))
            .collect();
        let big = Group::new(None, members);
        let mut input = Cursor::new(b"r\n".to_vec());
        let mut output = Vec::new();
        let mut oracle = InteractiveOracle::new(&mut input, &mut output);
        oracle.review(&big);
        let transcript = String::from_utf8(output).unwrap();
        assert!(transcript.contains("… and 12 more"));
    }
}
