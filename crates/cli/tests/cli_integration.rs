//! Integration tests for the `ec` command-line tool, at two levels:
//!
//! 1. the public library API (`ec_cli::parse` + `ec_cli::run`) that the
//!    binary is a thin wrapper over, and
//! 2. the compiled `ec` binary itself (via `CARGO_BIN_EXE_ec`), asserting the
//!    process exit codes and the files it writes to disk.

use ec_cli::memio::MemFiles;
use ec_cli::{parse, run, CliError, CommandOutput};
use std::path::PathBuf;
use std::process::Command;

/// Drives `parse` + `run` with an in-memory filesystem, like the binary does
/// with the real one; returns the output plus the namespace holding any
/// files the command streamed out.
fn run_library(
    argv: &[&str],
    inputs: &[(&str, &str)],
) -> Result<(CommandOutput, MemFiles), CliError> {
    let args: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let parsed = parse(&args)?;
    let fs = MemFiles::new();
    for (path, text) in inputs {
        fs.insert(path, text);
    }
    let mut stdin = std::io::Cursor::new(Vec::new());
    let mut prompts = Vec::new();
    let output = run(
        &parsed,
        &fs.input_opener(),
        &fs.output_opener(),
        &mut stdin,
        &mut prompts,
    )?;
    Ok((output, fs))
}

#[test]
fn library_help_succeeds_and_writes_nothing() {
    let (out, fs) = run_library(&["help"], &[]).expect("help must succeed");
    assert!(
        out.stdout.contains("SUBCOMMANDS"),
        "usage text lists subcommands"
    );
    assert!(
        out.stdout.contains("consolidate"),
        "usage text mentions consolidate"
    );
    assert!(out.written.is_empty(), "help writes no files");
    assert!(fs.paths().is_empty());
}

#[test]
fn library_rejects_unknown_subcommand_and_flag() {
    // Unknown subcommands and unknown flags are both rejected at parse time,
    // so typos fail loudly before any input is read.
    let args: Vec<String> = vec!["frobnicate".into()];
    assert!(
        matches!(parse(&args), Err(CliError::Usage(msg)) if msg.contains("frobnicate")),
        "unknown subcommand is a usage error"
    );

    let bad: Vec<String> = vec!["generate".into(), "--no-such-flag".into(), "1".into()];
    assert!(
        matches!(parse(&bad), Err(CliError::Usage(_))),
        "unknown flag is rejected"
    );
}

#[test]
fn library_end_to_end_generate_consolidate_produces_files() {
    let (generated, gen_fs) = run_library(
        &[
            "generate",
            "--dataset",
            "journals",
            "--clusters",
            "10",
            "--seed",
            "4",
            "--output",
            "j.csv",
        ],
        &[],
    )
    .expect("generate must succeed");
    assert_eq!(
        generated.written,
        vec!["j.csv".to_string()],
        "generate writes exactly the requested file"
    );
    let csv = gen_fs.get("j.csv").expect("generate streamed the file");
    assert!(csv.starts_with("cluster,source,"), "clustered CSV header");

    let (consolidated, fs) = run_library(
        &[
            "consolidate",
            "--input",
            "j.csv",
            "--budget",
            "10",
            "--mode",
            "auto",
            "--output",
            "std.csv",
            "--golden",
            "gold.csv",
        ],
        &[("j.csv", &csv)],
    )
    .expect("consolidate must succeed");
    assert!(
        consolidated.written.contains(&"std.csv".to_string())
            && consolidated.written.contains(&"gold.csv".to_string()),
        "both outputs written"
    );
    for path in ["std.csv", "gold.csv"] {
        assert!(
            fs.get(path).expect("output written").lines().count() > 1,
            "{path} is non-empty CSV"
        );
    }
}

#[test]
fn library_threads_flag_does_not_change_results() {
    let (_, gen_fs) = run_library(
        &[
            "generate",
            "--dataset",
            "address",
            "--clusters",
            "12",
            "--seed",
            "9",
            "--output",
            "a.csv",
        ],
        &[],
    )
    .expect("generate must succeed");
    let csv = gen_fs.get("a.csv").unwrap();
    let outputs: Vec<(CommandOutput, MemFiles)> = ["1", "4"]
        .iter()
        .map(|threads| {
            run_library(
                &[
                    "consolidate",
                    "--input",
                    "a.csv",
                    "--budget",
                    "8",
                    "--mode",
                    "auto",
                    "--threads",
                    threads,
                    "--output",
                    "std.csv",
                ],
                &[("a.csv", &csv)],
            )
            .expect("consolidate with --threads must succeed")
        })
        .collect();
    assert_eq!(
        outputs[0].1.get("std.csv"),
        outputs[1].1.get("std.csv"),
        "--threads must not change the standardized output"
    );
    assert_eq!(outputs[0].0.stdout, outputs[1].0.stdout);

    // `groups` accepts the flag too and is equally thread-count independent.
    let groups: Vec<String> = ["1", "3"]
        .iter()
        .map(|threads| {
            run_library(
                &[
                    "groups",
                    "--input",
                    "a.csv",
                    "--column",
                    "0",
                    "--top",
                    "5",
                    "--threads",
                    threads,
                ],
                &[("a.csv", &csv)],
            )
            .expect("groups with --threads must succeed")
            .0
            .stdout
        })
        .collect();
    assert_eq!(groups[0], groups[1]);
}

#[test]
fn library_pipeline_matches_resolve_then_consolidate() {
    let flat = run_library(
        &[
            "generate",
            "--dataset",
            "address",
            "--clusters",
            "10",
            "--seed",
            "6",
            "--flat",
        ],
        &[],
    )
    .expect("generate --flat must succeed")
    .0
    .stdout;
    assert!(flat.starts_with("source,"), "flat record CSV header");

    let (_, resolve_fs) = run_library(
        &[
            "resolve",
            "--input",
            "flat.csv",
            "--threshold",
            "0.6",
            "--output",
            "clustered.csv",
        ],
        &[("flat.csv", &flat)],
    )
    .expect("resolve must succeed");
    let clustered = resolve_fs.get("clustered.csv").unwrap();
    let (_, two_pass_fs) = run_library(
        &[
            "consolidate",
            "--input",
            "clustered.csv",
            "--budget",
            "12",
            "--output",
            "std.csv",
            "--golden",
            "gold.csv",
        ],
        &[("clustered.csv", &clustered)],
    )
    .expect("consolidate must succeed");

    let (_, fused_fs) = run_library(
        &[
            "pipeline",
            "--input",
            "flat.csv",
            "--threshold",
            "0.6",
            "--budget",
            "12",
            "--output",
            "std.csv",
            "--golden",
            "gold.csv",
        ],
        &[("flat.csv", &flat)],
    )
    .expect("pipeline must succeed");
    for file in ["std.csv", "gold.csv"] {
        assert_eq!(
            fused_fs.get(file),
            two_pass_fs.get(file),
            "fused {file} is bit-identical to the two-pass flow"
        );
    }
}

/// A scratch directory under the target-controlled temp dir, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("ec-cli-it-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn ec() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ec"))
}

#[test]
fn binary_help_exits_zero_with_usage() {
    let out = ec().arg("help").output().expect("spawn ec");
    assert!(out.status.success(), "`ec help` exits 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SUBCOMMANDS"), "usage text on stdout");
}

#[test]
fn binary_usage_error_exits_two() {
    let out = ec()
        .args(["generate", "--no-such-flag", "1"])
        .output()
        .expect("spawn ec");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage error"), "diagnostic on stderr");
}

#[test]
fn binary_missing_input_exits_one() {
    let out = ec()
        .args(["profile", "--input", "definitely-not-here.csv"])
        .output()
        .expect("spawn ec");
    assert_eq!(out.status.code(), Some(1), "io errors exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("io error"), "diagnostic on stderr");
}

#[test]
fn binary_pipeline_runs_flat_csv_to_golden_records() {
    let scratch = ScratchDir::new("pipeline");
    let flat = scratch.path("flat.csv");
    let golden = scratch.path("golden.csv");

    let out = ec()
        .args([
            "generate",
            "--dataset",
            "address",
            "--clusters",
            "8",
            "--seed",
            "4",
            "--flat",
            "--output",
        ])
        .arg(&flat)
        .output()
        .expect("spawn ec");
    assert!(
        out.status.success(),
        "generate --flat exits 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = ec()
        .args(["pipeline", "--budget", "10", "--input"])
        .arg(&flat)
        .arg("--golden")
        .arg(&golden)
        .output()
        .expect("spawn ec");
    assert!(
        out.status.success(),
        "pipeline exits 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("resolved"), "resolution summary printed");
    assert!(stdout.contains("golden records"), "golden summary printed");
    let contents = std::fs::read_to_string(&golden).expect("golden file exists");
    assert!(contents.starts_with("cluster,"), "golden-record CSV header");
    assert!(contents.lines().count() > 1);
}

#[test]
fn binary_learn_save_apply_round_trip() {
    // The program-library workflow end to end through real files: learn
    // programs from a clustered dataset (consolidate --save-library), then
    // standardize the matching flat records through the snapshot (apply).
    let scratch = ScratchDir::new("library");
    let clustered = scratch.path("clustered.csv");
    let flat = scratch.path("flat.csv");
    let library = scratch.path("library.txt");
    let applied = scratch.path("applied.csv");

    for extra in [&["--output"][..], &["--flat", "--output"][..]] {
        let mut cmd = ec();
        cmd.args([
            "generate",
            "--dataset",
            "address",
            "--clusters",
            "12",
            "--seed",
            "9",
        ]);
        cmd.args(extra);
        cmd.arg(if extra.len() == 1 { &clustered } else { &flat });
        let out = cmd.output().expect("spawn ec");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let out = ec()
        .args(["consolidate", "--budget", "15", "--input"])
        .arg(&clustered)
        .arg("--save-library")
        .arg(&library)
        .output()
        .expect("spawn ec");
    assert!(
        out.status.success(),
        "consolidate --save-library exits 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let snapshot = std::fs::read_to_string(&library).expect("library written");
    assert!(snapshot.starts_with("ec-program-library v1"), "{snapshot}");

    let out = ec()
        .args(["apply", "--library"])
        .arg(&library)
        .arg("--input")
        .arg(&flat)
        .arg("--output")
        .arg(&applied)
        .output()
        .expect("spawn ec");
    assert!(
        out.status.success(),
        "apply exits 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("applied library"), "{stdout}");
    let applied_csv = std::fs::read_to_string(&applied).expect("applied file exists");
    assert!(applied_csv.starts_with("source,"));
    assert_eq!(
        applied_csv.lines().count(),
        std::fs::read_to_string(&flat).unwrap().lines().count(),
        "apply preserves every record"
    );
}

#[test]
fn binary_end_to_end_writes_output_files() {
    let scratch = ScratchDir::new("e2e");
    let input = scratch.path("addr.csv");
    let golden = scratch.path("golden.csv");
    let standardized = scratch.path("std.csv");

    let out = ec()
        .args([
            "generate",
            "--dataset",
            "address",
            "--clusters",
            "8",
            "--seed",
            "3",
            "--output",
        ])
        .arg(&input)
        .output()
        .expect("spawn ec");
    assert!(
        out.status.success(),
        "generate exits 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(input.is_file(), "generate wrote the dataset file");

    let out = ec()
        .args(["consolidate", "--budget", "10", "--mode", "auto", "--input"])
        .arg(&input)
        .arg("--output")
        .arg(&standardized)
        .arg("--golden")
        .arg(&golden)
        .output()
        .expect("spawn ec");
    assert!(
        out.status.success(),
        "consolidate exits 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote"), "binary reports written files");
    for path in [&standardized, &golden] {
        let contents = std::fs::read_to_string(path).expect("output file exists");
        assert!(
            contents.lines().count() > 1,
            "{} is non-empty CSV",
            path.display()
        );
    }
}
