//! Value alignment: the fine-grained candidate generation of Appendix A.
//!
//! Two non-identical values in the same cluster often differ only in a few
//! segments (`"9 St, 02141 Wisconsin"` vs `"9th St, 02141 WI"`). Splitting
//! both into whitespace tokens and aligning them with their longest common
//! subsequence isolates the differing segments, each of which becomes a pair
//! of token-level candidate replacements. A character-level
//! Damerau–Levenshtein distance is also provided, both because the paper
//! cites it as an alternative alignment driver and because the dataset
//! generators use it in tests as an independent similarity check.

/// Splits a value into whitespace-separated tokens.
pub fn tokens(s: &str) -> Vec<&str> {
    s.split_whitespace().collect()
}

/// The longest common subsequence of two token sequences, returned as index
/// pairs `(i, j)` meaning `a[i] == b[j]`, in increasing order.
fn lcs_indices(a: &[&str], b: &[&str]) -> Vec<(usize, usize)> {
    let n = a.len();
    let m = b.len();
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i][j] = if a[i] == b[j] {
                dp[i + 1][j + 1] + 1
            } else {
                dp[i + 1][j].max(dp[i][j + 1])
            };
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            out.push((i, j));
            i += 1;
            j += 1;
        } else if dp[i + 1][j] >= dp[i][j + 1] {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Aligns two values token-wise via their LCS and returns the pairs of
/// non-identical aligned segments (Appendix A). Each returned pair
/// `(left, right)` is a maximal run of tokens of `a` (joined by single spaces)
/// paired with the corresponding run of tokens of `b`; one side may be empty.
///
/// For `"9 St, 02141 Wisconsin"` vs `"9th St, 02141 WI"` this yields
/// `("9", "9th")` and `("Wisconsin", "WI")`.
pub fn lcs_token_pairs(a: &str, b: &str) -> Vec<(String, String)> {
    let ta = tokens(a);
    let tb = tokens(b);
    let lcs = lcs_indices(&ta, &tb);
    let mut out = Vec::new();
    let mut prev = (0usize, 0usize);
    let push_gap = |out: &mut Vec<(String, String)>,
                    ra: std::ops::Range<usize>,
                    rb: std::ops::Range<usize>| {
        if ra.is_empty() && rb.is_empty() {
            return;
        }
        let left = ta[ra].join(" ");
        let right = tb[rb].join(" ");
        if left != right {
            out.push((left, right));
        }
    };
    for &(i, j) in &lcs {
        push_gap(&mut out, prev.0..i, prev.1..j);
        prev = (i + 1, j + 1);
    }
    push_gap(&mut out, prev.0..ta.len(), prev.1..tb.len());
    out
}

/// The Damerau–Levenshtein distance (optimal string alignment variant:
/// insertions, deletions, substitutions and adjacent transpositions) between
/// two strings, over characters.
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let n = a.len();
    let m = b.len();
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in dp.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in dp[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (dp[i - 1][j] + 1)
                .min(dp[i][j - 1] + 1)
                .min(dp[i - 1][j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(dp[i - 2][j - 2] + 1);
            }
            dp[i][j] = best;
        }
    }
    dp[n][m]
}

#[cfg(test)]
mod tests {
    use super::*;

    // Paper Example A.1.
    #[test]
    fn paper_example_a1() {
        let pairs = lcs_token_pairs("9 St, 02141 Wisconsin", "9th St, 02141 WI");
        assert_eq!(
            pairs,
            vec![
                ("9".to_string(), "9th".to_string()),
                ("Wisconsin".to_string(), "WI".to_string())
            ]
        );
    }

    #[test]
    fn identical_values_produce_no_pairs() {
        assert!(lcs_token_pairs("a b c", "a b c").is_empty());
    }

    #[test]
    fn completely_different_values_produce_one_pair() {
        let pairs = lcs_token_pairs("alpha beta", "gamma delta");
        assert_eq!(
            pairs,
            vec![("alpha beta".to_string(), "gamma delta".to_string())]
        );
    }

    #[test]
    fn insertion_only_gap_has_empty_side() {
        let pairs = lcs_token_pairs("5 Main St", "5 E Main St");
        assert_eq!(pairs, vec![("".to_string(), "E".to_string())]);
    }

    #[test]
    fn multi_token_segments_are_joined() {
        let pairs = lcs_token_pairs("3 E Avenue, 33990 CA", "3rd E Ave, 33990 CA");
        assert_eq!(
            pairs,
            vec![
                ("3".to_string(), "3rd".to_string()),
                ("Avenue,".to_string(), "Ave,".to_string()),
            ]
        );
    }

    #[test]
    fn whitespace_normalisation_in_tokens() {
        assert_eq!(tokens("  a   b  "), vec!["a", "b"]);
        assert!(lcs_token_pairs("a  b", "a b").is_empty());
    }

    #[test]
    fn damerau_levenshtein_basic() {
        assert_eq!(damerau_levenshtein("", ""), 0);
        assert_eq!(damerau_levenshtein("abc", "abc"), 0);
        assert_eq!(damerau_levenshtein("abc", ""), 3);
        assert_eq!(damerau_levenshtein("", "ab"), 2);
        assert_eq!(damerau_levenshtein("kitten", "sitting"), 3);
        // Adjacent transposition counts as one edit.
        assert_eq!(damerau_levenshtein("ab", "ba"), 1);
        assert_eq!(damerau_levenshtein("Street", "Stret"), 1);
    }

    #[test]
    fn damerau_levenshtein_symmetry() {
        for (a, b) in [("Mary Lee", "Lee, Mary"), ("9th", "9"), ("WI", "Wisconsin")] {
            assert_eq!(damerau_levenshtein(a, b), damerau_levenshtein(b, a));
        }
    }
}
