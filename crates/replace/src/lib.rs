//! # ec-replace — candidate replacements and their application
//!
//! This crate covers the two ends of the paper's pipeline that sit around the
//! unsupervised grouping:
//!
//! * **Generating candidate replacements** (Section 3 Step 1 and Appendix A):
//!   every pair of non-identical values within a cluster yields two
//!   directional full-value replacements, and — optionally — finer-grained
//!   token-level replacements obtained by aligning the two values with a
//!   longest-common-subsequence over their whitespace tokens.
//! * **Applying approved replacement groups** (Section 7.1): every candidate
//!   replacement remembers the cells it was generated from (its *replacement
//!   set* `L[lhs → rhs]`), and applying an approved group rewrites exactly
//!   those cells, maintaining the replacement sets of the remaining candidates
//!   as values change.
//!
//! The crate is deliberately independent of any dataset representation: it
//! works on a single column given as `&[Vec<String>]` — one `Vec<String>` of
//! cell values per cluster.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod engine;
pub mod generate;

pub use align::{damerau_levenshtein, lcs_token_pairs};
pub use ec_graph::Parallelism;
pub use engine::{CellRef, Direction, ReplacementEngine};
pub use generate::{generate_candidates, CandidateConfig, CandidateSet};
