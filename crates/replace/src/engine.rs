//! Applying approved replacement groups (Section 7.1).
//!
//! Once a group is approved (in one direction), every place the approved
//! replacements were generated from is rewritten. The engine keeps the
//! *replacement sets* `L[lhs → rhs]` — the cells each candidate was generated
//! from — and maintains them as cell values change, exactly as described in
//! Section 7.1: replacing `v₁` by `v₂` turns the candidate `v₁ → v₃` into
//! `v₂ → v₃` and removes `v₂ → v₁`, and candidates whose sets become empty
//! disappear.

use crate::generate::{generate_candidates, CandidateConfig, CandidateSet};
use ec_graph::Replacement;
use serde::{Deserialize, Serialize};

/// A cell of the column being standardized: cluster index and row index
/// within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellRef {
    /// Cluster index.
    pub cluster: usize,
    /// Row index within the cluster.
    pub row: usize,
}

/// The direction in which an approved group is applied (Section 3 Step 3: the
/// expert specifies the replacement direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Replace `lhs` with `rhs` (as written in the group's members).
    Forward,
    /// Replace `rhs` with `lhs`.
    Backward,
}

/// The application engine for one column.
#[derive(Debug, Clone)]
pub struct ReplacementEngine {
    clusters: Vec<Vec<String>>,
    candidates: CandidateSet,
    updates: usize,
}

impl ReplacementEngine {
    /// Builds the engine for one column: generates the candidate replacements
    /// and their replacement sets from the given cluster values.
    pub fn new(clusters: Vec<Vec<String>>, config: &CandidateConfig) -> Self {
        let candidates = generate_candidates(&clusters, config);
        ReplacementEngine {
            clusters,
            candidates,
            updates: 0,
        }
    }

    /// Reassembles an engine from cluster values and an already-generated
    /// candidate set, skipping candidate generation.
    ///
    /// The caller is responsible for `candidates` actually having been
    /// generated from `clusters` (e.g. a compiled artifact produced by
    /// [`generate_candidates`] over the same values); the engine behaves
    /// exactly as if [`ReplacementEngine::new`] had built it.
    pub fn from_parts(clusters: Vec<Vec<String>>, candidates: CandidateSet) -> Self {
        ReplacementEngine {
            clusters,
            candidates,
            updates: 0,
        }
    }

    /// The current cell values, grouped by cluster.
    pub fn values(&self) -> &[Vec<String>] {
        &self.clusters
    }

    /// The full candidate set (replacements plus their replacement sets), for
    /// serialization into compiled artifacts.
    pub fn candidate_set(&self) -> &CandidateSet {
        &self.candidates
    }

    /// Consumes the engine and returns the (updated) cell values.
    pub fn into_values(self) -> Vec<Vec<String>> {
        self.clusters
    }

    /// The current candidate replacements (candidates whose replacement sets
    /// became empty are excluded).
    pub fn candidates(&self) -> Vec<Replacement> {
        self.candidates
            .replacements
            .iter()
            .filter(|r| !self.candidates.set(r).is_empty())
            .cloned()
            .collect()
    }

    /// The replacement set of one candidate.
    pub fn replacement_set(&self, r: &Replacement) -> &[CellRef] {
        self.candidates.set(r)
    }

    /// Total number of cell rewrites performed so far.
    pub fn cells_updated(&self) -> usize {
        self.updates
    }

    /// Applies an approved group: every member replacement is applied in the
    /// given direction. Returns the number of cells rewritten.
    pub fn apply_group(&mut self, members: &[Replacement], direction: Direction) -> usize {
        let before = self.updates;
        for member in members {
            let (from, to) = match direction {
                Direction::Forward => (member.lhs().to_string(), member.rhs().to_string()),
                Direction::Backward => (member.rhs().to_string(), member.lhs().to_string()),
            };
            if from.is_empty() || from == to {
                continue;
            }
            self.apply_replacement(&from, &to);
        }
        self.updates - before
    }

    /// Applies a single oriented replacement `from → to` to every cell in its
    /// replacement set.
    fn apply_replacement(&mut self, from: &str, to: &str) {
        let key = match Replacement::try_new(from, to) {
            Some(k) => k,
            None => return,
        };
        let cells = match self.candidates.sets.remove(&key) {
            Some(cells) => cells,
            None => return,
        };
        for cell in cells {
            let value = self.clusters[cell.cluster][cell.row].clone();
            if value == from {
                // Full-value replacement (with replacement-set maintenance).
                self.rewrite_cell(cell, from, to);
            } else if let Some(new_value) = replace_token_run(&value, from, to) {
                // Token-level replacement: rewrite the aligned segment inside
                // the cell.
                self.clusters[cell.cluster][cell.row] = new_value;
                self.updates += 1;
            }
        }
    }

    /// Rewrites one cell from `from` to `to` and maintains the replacement
    /// sets of the candidates generated from that cluster (Section 7.1).
    fn rewrite_cell(&mut self, cell: CellRef, from: &str, to: &str) {
        self.clusters[cell.cluster][cell.row] = to.to_string();
        self.updates += 1;
        let cluster_values = self.clusters[cell.cluster].clone();
        for (k, other) in cluster_values.iter().enumerate() {
            if k == cell.row {
                continue;
            }
            // Remove the candidates that involved the old value at this cell.
            if other != from {
                remove_entry(&mut self.candidates, from, other, cell);
                remove_entry(
                    &mut self.candidates,
                    other,
                    from,
                    CellRef {
                        cluster: cell.cluster,
                        row: k,
                    },
                );
            }
            // Add the candidates that involve the new value at this cell.
            if other != to {
                add_entry(&mut self.candidates, to, other, cell);
                add_entry(
                    &mut self.candidates,
                    other,
                    to,
                    CellRef {
                        cluster: cell.cluster,
                        row: k,
                    },
                );
            }
        }
    }
}

fn remove_entry(candidates: &mut CandidateSet, lhs: &str, rhs: &str, cell: CellRef) {
    if let Some(key) = Replacement::try_new(lhs, rhs) {
        if let Some(set) = candidates.sets.get_mut(&key) {
            set.retain(|c| *c != cell);
            if set.is_empty() {
                candidates.sets.remove(&key);
            }
        }
    }
}

fn add_entry(candidates: &mut CandidateSet, lhs: &str, rhs: &str, cell: CellRef) {
    if let Some(key) = Replacement::try_new(lhs, rhs) {
        let entry = candidates.sets.entry(key.clone()).or_insert_with(|| {
            candidates.replacements.push(key);
            Vec::new()
        });
        if !entry.contains(&cell) {
            entry.push(cell);
        }
    }
}

/// Replaces the first whole-token occurrence of `from` (a space-joined run of
/// tokens) in `value` with `to`. Returns `None` when `from` does not occur as
/// a token run.
fn replace_token_run(value: &str, from: &str, to: &str) -> Option<String> {
    let value_tokens: Vec<&str> = value.split_whitespace().collect();
    let from_tokens: Vec<&str> = from.split_whitespace().collect();
    if from_tokens.is_empty() || from_tokens.len() > value_tokens.len() {
        return None;
    }
    for start in 0..=(value_tokens.len() - from_tokens.len()) {
        if value_tokens[start..start + from_tokens.len()] == from_tokens[..] {
            let mut out: Vec<&str> = Vec::new();
            out.extend_from_slice(&value_tokens[..start]);
            if !to.is_empty() {
                out.push(to);
            }
            out.extend_from_slice(&value_tokens[start + from_tokens.len()..]);
            return Some(out.join(" "));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name_column() -> Vec<Vec<String>> {
        vec![
            vec!["Mary Lee".into(), "M. Lee".into(), "Lee, Mary".into()],
            vec![
                "Smith, James".into(),
                "James Smith".into(),
                "J. Smith".into(),
            ],
        ]
    }

    #[test]
    fn applying_a_full_value_group_rewrites_the_generating_cells() {
        let mut engine = ReplacementEngine::new(name_column(), &CandidateConfig::full_value_only());
        let members = vec![
            Replacement::new("Lee, Mary", "Mary Lee"),
            Replacement::new("Smith, James", "James Smith"),
        ];
        let updated = engine.apply_group(&members, Direction::Forward);
        assert_eq!(updated, 2);
        assert_eq!(engine.values()[0][2], "Mary Lee");
        assert_eq!(engine.values()[1][0], "James Smith");
        // Untouched cells stay.
        assert_eq!(engine.values()[0][1], "M. Lee");
    }

    #[test]
    fn backward_direction_swaps_the_rewrite() {
        let mut engine = ReplacementEngine::new(name_column(), &CandidateConfig::full_value_only());
        let members = vec![Replacement::new("Mary Lee", "Lee, Mary")];
        engine.apply_group(&members, Direction::Backward);
        // Backward means replace rhs ("Lee, Mary") with lhs ("Mary Lee").
        assert_eq!(engine.values()[0][2], "Mary Lee");
        assert_eq!(engine.values()[0][0], "Mary Lee");
    }

    // Paper Section 7.1 worked example: after approving v1 → v2 (replace
    // "Mary Lee" with "M. Lee"), the candidate v1 → v3 becomes v2 → v3 and
    // v2 → v1 no longer exists.
    #[test]
    fn replacement_sets_are_maintained_as_in_section_7_1() {
        let mut engine = ReplacementEngine::new(name_column(), &CandidateConfig::full_value_only());
        let v1 = "Mary Lee";
        let v2 = "M. Lee";
        let v3 = "Lee, Mary";
        engine.apply_group(&[Replacement::new(v1, v2)], Direction::Forward);
        assert_eq!(engine.values()[0][0], v2);
        let remaining = engine.candidates();
        // v1 -> v3 is gone (v1 no longer occurs in the cluster)…
        assert!(!remaining.contains(&Replacement::new(v1, v3)));
        assert!(!remaining.contains(&Replacement::new(v3, v1)));
        // …and v2 -> v1 no longer exists either.
        assert!(!remaining.contains(&Replacement::new(v2, v1)));
        assert!(!remaining.contains(&Replacement::new(v1, v2)));
        // The surviving relation between row 0 and row 2 is v2 <-> v3, and the
        // set of v2 -> v3 now contains both row 0 and row 1 (both hold v2).
        assert!(remaining.contains(&Replacement::new(v2, v3)));
        assert!(remaining.contains(&Replacement::new(v3, v2)));
        let set = engine.replacement_set(&Replacement::new(v2, v3));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn token_level_replacement_rewrites_inside_the_cell() {
        let clusters = vec![vec![
            "9 St, 02141 Wisconsin".to_string(),
            "9th St, 02141 WI".to_string(),
        ]];
        let config = CandidateConfig {
            full_value_pairs: false,
            token_level_pairs: true,
            max_distinct_values_per_cluster: None,
            ..CandidateConfig::default()
        };
        let mut engine = ReplacementEngine::new(clusters, &config);
        let n = engine.apply_group(
            &[
                Replacement::new("9", "9th"),
                Replacement::new("Wisconsin", "WI"),
            ],
            Direction::Forward,
        );
        assert_eq!(n, 2);
        assert_eq!(engine.values()[0][0], "9th St, 02141 WI");
        assert_eq!(engine.values()[0][1], "9th St, 02141 WI");
    }

    #[test]
    fn applying_an_unknown_replacement_is_a_no_op() {
        let mut engine = ReplacementEngine::new(name_column(), &CandidateConfig::full_value_only());
        let n = engine.apply_group(
            &[Replacement::new("nope", "still nope")],
            Direction::Forward,
        );
        assert_eq!(n, 0);
        assert_eq!(engine.values(), &name_column()[..]);
    }

    #[test]
    fn applying_the_same_group_twice_is_idempotent() {
        let mut engine = ReplacementEngine::new(name_column(), &CandidateConfig::full_value_only());
        let members = vec![Replacement::new("Lee, Mary", "Mary Lee")];
        let first = engine.apply_group(&members, Direction::Forward);
        let second = engine.apply_group(&members, Direction::Forward);
        assert_eq!(first, 1);
        assert_eq!(
            second, 0,
            "the replacement set was consumed by the first application"
        );
    }

    #[test]
    fn replace_token_run_helper() {
        assert_eq!(
            replace_token_run("9 St, 02141 Wisconsin", "Wisconsin", "WI").as_deref(),
            Some("9 St, 02141 WI")
        );
        assert_eq!(
            replace_token_run("a b c d", "b c", "X").as_deref(),
            Some("a X d")
        );
        assert_eq!(replace_token_run("a b", "c", "X"), None);
        assert_eq!(replace_token_run("a b c", "b", "").as_deref(), Some("a c"));
    }

    #[test]
    fn from_parts_behaves_like_a_freshly_built_engine() {
        let built = ReplacementEngine::new(name_column(), &CandidateConfig::full_value_only());
        let mut rebuilt =
            ReplacementEngine::from_parts(name_column(), built.candidate_set().clone());
        assert_eq!(rebuilt.candidates(), built.candidates());
        let n = rebuilt.apply_group(
            &[Replacement::new("Lee, Mary", "Mary Lee")],
            Direction::Forward,
        );
        assert_eq!(n, 1);
        assert_eq!(rebuilt.values()[0][2], "Mary Lee");
    }

    #[test]
    fn cells_updated_accumulates() {
        let mut engine = ReplacementEngine::new(name_column(), &CandidateConfig::full_value_only());
        engine.apply_group(
            &[Replacement::new("Lee, Mary", "Mary Lee")],
            Direction::Forward,
        );
        engine.apply_group(
            &[Replacement::new("Smith, James", "James Smith")],
            Direction::Forward,
        );
        assert_eq!(engine.cells_updated(), 2);
        let values = engine.into_values();
        assert_eq!(values[0][2], "Mary Lee");
        assert_eq!(values[1][0], "James Smith");
    }
}
