//! Candidate-replacement generation (Section 3 Step 1, Appendix A).

use crate::align::lcs_token_pairs;
use crate::engine::CellRef;
use ec_graph::{Parallelism, Replacement};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of candidate generation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateConfig {
    /// Generate the full-value pairs `v_j → v_k` / `v_k → v_j` for every pair
    /// of non-identical values in a cluster (Section 3 Step 1).
    pub full_value_pairs: bool,
    /// Additionally generate token-level pairs from the LCS alignment of each
    /// value pair (Appendix A).
    pub token_level_pairs: bool,
    /// Skip clusters with more than this many *distinct* values in the column
    /// (quadratic pair blow-up guard). `None` disables the guard.
    pub max_distinct_values_per_cluster: Option<usize>,
    /// Worker threads for sharding the per-cluster generation work. The
    /// produced [`CandidateSet`] is bit-identical for every setting (clusters
    /// are chunked in order and the chunks merged back in order), only the
    /// wall-clock time changes.
    pub parallelism: Parallelism,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        CandidateConfig {
            full_value_pairs: true,
            token_level_pairs: true,
            max_distinct_values_per_cluster: Some(64),
            parallelism: Parallelism::AUTO,
        }
    }
}

impl CandidateConfig {
    /// Only the coarse full-value pairs (the configuration used when
    /// reproducing the paper's examples on the Name attribute of Table 1).
    pub fn full_value_only() -> Self {
        CandidateConfig {
            token_level_pairs: false,
            ..Self::default()
        }
    }
}

/// The candidate replacements of one column together with their replacement
/// sets (the cells each candidate was generated from — the paper's
/// `L[lhs → rhs]`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CandidateSet {
    /// Distinct candidate replacements, in first-seen order.
    pub replacements: Vec<Replacement>,
    /// `sets[r]` = cells whose value is `r.lhs()` and which co-occur with
    /// `r.rhs()` in their cluster (full-value candidates), or cells whose value
    /// *contains* the `r.lhs()` segment aligned against `r.rhs()` (token-level
    /// candidates).
    pub sets: HashMap<Replacement, Vec<CellRef>>,
}

impl CandidateSet {
    /// Number of distinct candidate replacements.
    pub fn len(&self) -> usize {
        self.replacements.len()
    }

    /// True when no candidate was generated.
    pub fn is_empty(&self) -> bool {
        self.replacements.is_empty()
    }

    /// The replacement set of a candidate (empty if unknown).
    pub fn set(&self, r: &Replacement) -> &[CellRef] {
        self.sets.get(r).map(|v| v.as_slice()).unwrap_or(&[])
    }

    fn push(&mut self, r: Replacement, cell: CellRef) {
        let entry = self.sets.entry(r.clone()).or_insert_with(|| {
            self.replacements.push(r);
            Vec::new()
        });
        if !entry.contains(&cell) {
            entry.push(cell);
        }
    }
}

/// Generates the candidate replacements for one column, given the cell values
/// of that column grouped by cluster (`clusters[c][r]` is the value of row `r`
/// of cluster `c`).
///
/// Clusters are independent, so the work is sharded across
/// [`CandidateConfig::parallelism`] worker threads: each worker generates the
/// candidates of one contiguous cluster chunk, and the chunks are merged back
/// in cluster order. First-seen candidate order over the in-order merge equals
/// first-seen order of the sequential scan, so the result is bit-identical for
/// every thread count.
pub fn generate_candidates(clusters: &[Vec<String>], config: &CandidateConfig) -> CandidateSet {
    let _span = ec_obs::span!("replace.generate_candidates", clusters.len());
    let shards = config.parallelism.shards(clusters.len());
    if shards <= 1 {
        return generate_cluster_range(clusters, 0, config);
    }
    let chunk_size = clusters.len().div_ceil(shards);
    // Chunks run as `'static` tasks on the shared worker pool (no scoped
    // threads), so the cluster values move behind one `Arc` and each task
    // gets an index range — no per-task copies of the column.
    let clusters: std::sync::Arc<Vec<Vec<String>>> = std::sync::Arc::new(clusters.to_vec());
    let tasks: Vec<ec_graph::PoolTask<CandidateSet>> = (0..clusters.len())
        .step_by(chunk_size)
        .map(|start| {
            let clusters = std::sync::Arc::clone(&clusters);
            let config = config.clone();
            Box::new(move || {
                let chunk = &clusters[start..(start + chunk_size).min(clusters.len())];
                generate_cluster_range(chunk, start, &config)
            }) as ec_graph::PoolTask<CandidateSet>
        })
        .collect();
    let parts: Vec<CandidateSet> = config.parallelism.run_tasks(tasks);
    let mut out = CandidateSet::default();
    for part in parts {
        let mut sets = part.sets;
        for r in part.replacements {
            // Chunks cover disjoint cluster ranges, so every (candidate, cell)
            // pair is new to `out` and the per-cell dedup scan of `push` can
            // be skipped; appending in chunk order reproduces the sequential
            // first-seen candidate and cell order exactly.
            let cells = sets.remove(&r).unwrap_or_default();
            out.sets
                .entry(r.clone())
                .or_insert_with(|| {
                    out.replacements.push(r);
                    Vec::new()
                })
                .extend(cells);
        }
    }
    out
}

/// Sequential candidate generation over `clusters`, whose first element has
/// the global cluster index `first_cluster` (used so sharded chunks emit
/// correct [`CellRef`]s).
fn generate_cluster_range(
    clusters: &[Vec<String>],
    first_cluster: usize,
    config: &CandidateConfig,
) -> CandidateSet {
    let mut out = CandidateSet::default();
    for (offset, values) in clusters.iter().enumerate() {
        let c = first_cluster + offset;
        let mut distinct: Vec<&String> = Vec::new();
        for v in values {
            if !distinct.contains(&v) {
                distinct.push(v);
            }
        }
        if let Some(max) = config.max_distinct_values_per_cluster {
            if distinct.len() > max {
                continue;
            }
        }
        for (i, a) in values.iter().enumerate() {
            for (j, b) in values.iter().enumerate() {
                if i == j || a == b {
                    continue;
                }
                if config.full_value_pairs {
                    if let Some(r) = Replacement::try_new(a.as_str(), b.as_str()) {
                        out.push(r, CellRef { cluster: c, row: i });
                    }
                }
                if config.token_level_pairs && i < j {
                    // Canonical orientation: align the lexicographically
                    // smaller value against the larger one. LCS tie-breaking
                    // is not symmetric in its arguments, so without this the
                    // generated candidate set could depend on the order the
                    // two records appear in the cluster.
                    let ((x, xi), (y, yj)) = if a <= b {
                        ((a, i), (b, j))
                    } else {
                        ((b, j), (a, i))
                    };
                    for (left, right) in lcs_token_pairs(x, y) {
                        if let Some(r) = Replacement::try_new(left.as_str(), right.as_str()) {
                            out.push(
                                r,
                                CellRef {
                                    cluster: c,
                                    row: xi,
                                },
                            );
                        }
                        if let Some(r) = Replacement::try_new(right.as_str(), left.as_str()) {
                            out.push(
                                r,
                                CellRef {
                                    cluster: c,
                                    row: yj,
                                },
                            );
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Name column of Table 1: two clusters of three records each.
    fn table1_name_column() -> Vec<Vec<String>> {
        vec![
            vec!["Mary Lee".into(), "M. Lee".into(), "Lee, Mary".into()],
            vec![
                "Smith, James".into(),
                "James Smith".into(),
                "J. Smith".into(),
            ],
        ]
    }

    // Section 3 Step 1: "We will generate 12 candidate replacements from the
    // two clusters" (full-value pairs of the Name attribute).
    #[test]
    fn table1_name_column_generates_12_full_value_candidates() {
        let set = generate_candidates(&table1_name_column(), &CandidateConfig::full_value_only());
        assert_eq!(set.len(), 12);
        assert!(set
            .replacements
            .contains(&Replacement::new("Mary Lee", "M. Lee")));
        assert!(set
            .replacements
            .contains(&Replacement::new("Lee, Mary", "Mary Lee")));
        assert!(set
            .replacements
            .contains(&Replacement::new("Smith, James", "J. Smith")));
    }

    #[test]
    fn replacement_sets_point_at_the_generating_cells() {
        let set = generate_candidates(&table1_name_column(), &CandidateConfig::full_value_only());
        let r = Replacement::new("Mary Lee", "M. Lee");
        assert_eq!(set.set(&r), &[CellRef { cluster: 0, row: 0 }]);
        let r2 = Replacement::new("J. Smith", "Smith, James");
        assert_eq!(set.set(&r2), &[CellRef { cluster: 1, row: 2 }]);
        // A replacement that was never generated has an empty set.
        assert!(set.set(&Replacement::new("x", "y")).is_empty());
    }

    // Appendix A: the Address attribute produces the four token-level
    // candidates 9→9th, 9th→9, Wisconsin→WI, WI→Wisconsin.
    #[test]
    fn token_level_candidates_from_address_example() {
        let clusters = vec![vec![
            "9 St, 02141 Wisconsin".to_string(),
            "9th St, 02141 WI".to_string(),
        ]];
        let set = generate_candidates(
            &clusters,
            &CandidateConfig {
                full_value_pairs: false,
                token_level_pairs: true,
                max_distinct_values_per_cluster: None,
                ..CandidateConfig::default()
            },
        );
        for (lhs, rhs) in [
            ("9", "9th"),
            ("9th", "9"),
            ("Wisconsin", "WI"),
            ("WI", "Wisconsin"),
        ] {
            assert!(
                set.replacements.contains(&Replacement::new(lhs, rhs)),
                "missing {lhs} -> {rhs}: {:?}",
                set.replacements
            );
        }
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn duplicate_values_in_a_cluster_do_not_pair_with_themselves() {
        let clusters = vec![vec!["a".to_string(), "a".to_string(), "b".to_string()]];
        let set = generate_candidates(&clusters, &CandidateConfig::full_value_only());
        assert_eq!(set.len(), 2); // a->b and b->a only
        let ab = Replacement::new("a", "b");
        // Both copies of "a" are recorded as generating cells.
        assert_eq!(set.set(&ab).len(), 2);
    }

    #[test]
    fn oversized_clusters_are_skipped() {
        let big: Vec<String> = (0..40).map(|i| format!("value {i}")).collect();
        let clusters = vec![big, vec!["a".to_string(), "b".to_string()]];
        let config = CandidateConfig {
            max_distinct_values_per_cluster: Some(10),
            ..CandidateConfig::default()
        };
        let set = generate_candidates(&clusters, &config);
        assert!(set
            .replacements
            .iter()
            .all(|r| !r.lhs().starts_with("value")));
        assert!(set.replacements.contains(&Replacement::new("a", "b")));
    }

    #[test]
    fn singleton_and_empty_clusters_generate_nothing() {
        let clusters = vec![vec![], vec!["only".to_string()]];
        let set = generate_candidates(&clusters, &CandidateConfig::default());
        assert!(set.is_empty());
    }

    #[test]
    fn sharded_generation_is_bit_identical_to_sequential() {
        // Enough clusters that every thread count below actually shards, with
        // duplicated values across clusters so the merge has to dedup.
        let clusters: Vec<Vec<String>> = (0..23)
            .map(|c| {
                vec![
                    format!("{} Main Street", c % 7),
                    format!("{} Main St", c % 7),
                    format!("{} Main Street, Apt 1", c % 5),
                ]
            })
            .collect();
        let sequential = generate_candidates(
            &clusters,
            &CandidateConfig {
                parallelism: Parallelism::SEQUENTIAL,
                ..CandidateConfig::default()
            },
        );
        for threads in [2, 3, 4, 9] {
            let sharded = generate_candidates(
                &clusters,
                &CandidateConfig {
                    parallelism: Parallelism::fixed(threads),
                    ..CandidateConfig::default()
                },
            );
            assert_eq!(
                sequential.replacements, sharded.replacements,
                "candidate order must not depend on thread count ({threads})"
            );
            assert_eq!(
                sequential, sharded,
                "replacement sets must not depend on thread count ({threads})"
            );
        }
    }

    #[test]
    fn candidates_are_deduplicated_across_clusters() {
        let clusters = vec![
            vec!["Street".to_string(), "St".to_string()],
            vec!["Street".to_string(), "St".to_string()],
        ];
        let set = generate_candidates(&clusters, &CandidateConfig::full_value_only());
        assert_eq!(set.len(), 2);
        let r = Replacement::new("Street", "St");
        assert_eq!(set.set(&r).len(), 2, "one generating cell per cluster");
    }
}
