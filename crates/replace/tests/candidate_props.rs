//! Property tests for candidate generation: the produced candidate sets must
//! be invariant under the two degrees of freedom the caller does not control —
//! how the work is chunked across worker threads, and the order records happen
//! to arrive in.

use ec_replace::{generate_candidates, CandidateConfig, CandidateSet, Parallelism};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Clusters of short address-ish values: empty clusters, singleton clusters
/// and duplicate values are all legal inputs.
fn arb_clusters() -> impl Strategy<Value = Vec<Vec<String>>> {
    proptest::collection::vec(
        proptest::collection::vec("[A-Za-z0-9][A-Za-z0-9 .]{0,11}", 0..5usize),
        0..7usize,
    )
}

fn generate(clusters: &[Vec<String>], parallelism: Parallelism) -> CandidateSet {
    generate_candidates(
        clusters,
        &CandidateConfig {
            parallelism,
            ..CandidateConfig::default()
        },
    )
}

/// The candidate multiset in a position-independent form: each replacement
/// with the size of its replacement set, sorted.
fn fingerprint(set: &CandidateSet) -> Vec<(String, String, usize)> {
    let mut out: Vec<(String, String, usize)> = set
        .replacements
        .iter()
        .map(|r| (r.lhs().to_string(), r.rhs().to_string(), set.set(r).len()))
        .collect();
    out.sort();
    out
}

proptest! {
    /// Chunking across worker threads is invisible: the candidate set —
    /// including candidate order and cell order — is bit-identical for every
    /// thread count.
    #[test]
    fn candidates_are_invariant_under_chunk_size(
        clusters in arb_clusters(),
        threads in 2usize..9,
    ) {
        let sequential = generate(&clusters, Parallelism::SEQUENTIAL);
        let sharded = generate(&clusters, Parallelism::fixed(threads));
        prop_assert_eq!(&sequential.replacements, &sharded.replacements);
        prop_assert_eq!(sequential, sharded);
    }

    /// Permuting the records within each cluster (and the cluster order
    /// itself) relabels cells but must not change *which* candidates are
    /// generated, nor how many cells each candidate maps to.
    #[test]
    fn candidates_are_invariant_under_record_permutation(
        clusters in arb_clusters(),
        seed in 0u64..1_000_000,
    ) {
        let baseline = fingerprint(&generate(&clusters, Parallelism::SEQUENTIAL));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut shuffled = clusters.clone();
        for cluster in &mut shuffled {
            cluster.shuffle(&mut rng);
        }
        shuffled.shuffle(&mut rng);
        let permuted = fingerprint(&generate(&shuffled, Parallelism::SEQUENTIAL));
        prop_assert_eq!(baseline, permuted);
    }

    /// Permutation and chunking compose: a shuffled input sharded across
    /// threads still yields the same candidates as the original sequential
    /// scan, up to cell relabeling.
    #[test]
    fn permutation_and_chunking_compose(
        clusters in arb_clusters(),
        threads in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        let baseline = fingerprint(&generate(&clusters, Parallelism::SEQUENTIAL));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut shuffled = clusters.clone();
        for cluster in &mut shuffled {
            cluster.shuffle(&mut rng);
        }
        let sharded = fingerprint(&generate(&shuffled, Parallelism::fixed(threads)));
        prop_assert_eq!(baseline, sharded);
    }
}
