//! Per-column profiles.

use ec_data::Dataset;
use ec_graph::structure_of;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// Minimum / maximum / mean length of the values of a column, in characters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LengthStats {
    /// Shortest value length.
    pub min: usize,
    /// Longest value length.
    pub max: usize,
    /// Mean value length.
    pub mean: f64,
}

/// One entry of the structure histogram: a structure signature (rendered with
/// the paper's `Td`/`Tl`/`TC`/`Tb` notation) and how many values have it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructureCount {
    /// The rendered structure signature, e.g. `TdTl` for `"9th"`.
    pub structure: String,
    /// Number of values with this structure.
    pub count: usize,
}

/// A profile of one column of a clustered dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Column index in the dataset.
    pub index: usize,
    /// Total number of cell values (= number of records).
    pub num_values: usize,
    /// Number of distinct observed values.
    pub num_distinct: usize,
    /// Number of empty (zero-length) values.
    pub num_empty: usize,
    /// Length statistics over the values.
    pub length: LengthStats,
    /// Number of distinct structure signatures among the values.
    pub num_structures: usize,
    /// The most frequent structure signatures, largest first (up to 10).
    pub top_structures: Vec<StructureCount>,
    /// Number of clusters with at least two records.
    pub multi_record_clusters: usize,
    /// Number of multi-record clusters whose values for this column are not
    /// all identical — the clusters a standardization pass could change.
    pub divergent_clusters: usize,
    /// Number of distinct non-identical value pairs within clusters (the size
    /// of the candidate-replacement universe for this column).
    pub distinct_value_pairs: usize,
}

impl ColumnProfile {
    /// Profiles one column of a dataset.
    ///
    /// # Panics
    /// Panics if `col` is out of range.
    pub fn profile(dataset: &Dataset, col: usize) -> Self {
        assert!(col < dataset.columns.len(), "column index out of range");
        let mut num_values = 0usize;
        let mut num_empty = 0usize;
        let mut total_len = 0usize;
        let mut min_len = usize::MAX;
        let mut max_len = 0usize;
        let mut distinct: HashSet<&str> = HashSet::new();
        let mut structures: BTreeMap<String, usize> = BTreeMap::new();
        let mut multi_record_clusters = 0usize;
        let mut divergent_clusters = 0usize;
        let mut pairs: HashSet<(String, String)> = HashSet::new();

        for cluster in &dataset.clusters {
            let values: Vec<&str> = cluster
                .rows
                .iter()
                .map(|r| r.cells[col].observed.as_str())
                .collect();
            if values.len() >= 2 {
                multi_record_clusters += 1;
                let first = values[0];
                if values.iter().any(|v| *v != first) {
                    divergent_clusters += 1;
                }
            }
            for (i, &a) in values.iter().enumerate() {
                num_values += 1;
                let len = a.chars().count();
                if len == 0 {
                    num_empty += 1;
                }
                total_len += len;
                min_len = min_len.min(len);
                max_len = max_len.max(len);
                distinct.insert(a);
                *structures.entry(structure_of(a).to_string()).or_insert(0) += 1;
                for &b in values.iter().skip(i + 1) {
                    if a != b {
                        let key = if a < b {
                            (a.to_string(), b.to_string())
                        } else {
                            (b.to_string(), a.to_string())
                        };
                        pairs.insert(key);
                    }
                }
            }
        }

        let mut top: Vec<StructureCount> = structures
            .iter()
            .map(|(structure, &count)| StructureCount {
                structure: structure.clone(),
                count,
            })
            .collect();
        top.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| a.structure.cmp(&b.structure))
        });
        let num_structures = top.len();
        top.truncate(10);

        ColumnProfile {
            name: dataset.columns[col].clone(),
            index: col,
            num_values,
            num_distinct: distinct.len(),
            num_empty,
            length: LengthStats {
                min: if num_values == 0 { 0 } else { min_len },
                max: max_len,
                mean: if num_values == 0 {
                    0.0
                } else {
                    total_len as f64 / num_values as f64
                },
            },
            num_structures,
            top_structures: top,
            multi_record_clusters,
            divergent_clusters,
            distinct_value_pairs: pairs.len(),
        }
    }

    /// Fraction of multi-record clusters whose values diverge — a quick proxy
    /// for "how dirty is this column".
    pub fn divergence(&self) -> f64 {
        if self.multi_record_clusters == 0 {
            0.0
        } else {
            self.divergent_clusters as f64 / self.multi_record_clusters as f64
        }
    }

    /// Fraction of values that are empty.
    pub fn empty_fraction(&self) -> f64 {
        if self.num_values == 0 {
            0.0
        } else {
            self.num_empty as f64 / self.num_values as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::table1;
    use ec_data::{Cell, Cluster, Dataset, Row};

    #[test]
    fn name_column_profile() {
        let d = table1();
        let p = ColumnProfile::profile(&d, 0);
        assert_eq!(p.name, "Name");
        assert_eq!(p.num_values, 5);
        // "Mary Lee", "M. Lee", "Lee, Mary", "James Smith" (x2 identical).
        assert_eq!(p.num_distinct, 4);
        assert_eq!(p.num_empty, 0);
        assert_eq!(p.length.min, "M. Lee".chars().count());
        assert_eq!(p.length.max, "James Smith".chars().count());
        assert!(p.length.mean > 6.0 && p.length.mean < 11.0);
        assert_eq!(p.multi_record_clusters, 2);
        // Cluster 0 diverges (three renderings of Mary Lee), cluster 1 does not.
        assert_eq!(p.divergent_clusters, 1);
        assert!((p.divergence() - 0.5).abs() < 1e-9);
        // Pairs: the three mutual pairs within cluster 0.
        assert_eq!(p.distinct_value_pairs, 3);
    }

    #[test]
    fn structure_histogram_groups_same_shapes() {
        let d = table1();
        let p = ColumnProfile::profile(&d, 0);
        // "Mary Lee" and "James Smith" share the structure TC Tl Tb TC Tl.
        let top = &p.top_structures[0];
        assert!(
            top.count >= 3,
            "the dominant name shape covers at least 3 values: {top:?}"
        );
        assert_eq!(
            p.top_structures.iter().map(|s| s.count).sum::<usize>(),
            p.num_values,
            "every value belongs to exactly one structure"
        );
        assert!(p.num_structures >= 2);
    }

    #[test]
    fn empty_values_are_counted() {
        let mk = |s: &str| Cell {
            observed: s.to_string(),
            truth: s.to_string(),
        };
        let mut d = Dataset::new("d", vec!["A".to_string()]);
        d.clusters.push(Cluster {
            rows: vec![
                Row {
                    source: 0,
                    cells: vec![mk("")],
                },
                Row {
                    source: 1,
                    cells: vec![mk("x")],
                },
            ],
            golden: vec!["x".to_string()],
        });
        let p = ColumnProfile::profile(&d, 0);
        assert_eq!(p.num_empty, 1);
        assert!((p.empty_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(p.length.min, 0);
        assert_eq!(p.length.max, 1);
    }

    #[test]
    fn identical_values_make_no_pairs_and_no_divergence() {
        let mk = |s: &str| Cell {
            observed: s.to_string(),
            truth: s.to_string(),
        };
        let mut d = Dataset::new("d", vec!["A".to_string()]);
        d.clusters.push(Cluster {
            rows: vec![
                Row {
                    source: 0,
                    cells: vec![mk("same")],
                },
                Row {
                    source: 1,
                    cells: vec![mk("same")],
                },
            ],
            golden: vec!["same".to_string()],
        });
        let p = ColumnProfile::profile(&d, 0);
        assert_eq!(p.distinct_value_pairs, 0);
        assert_eq!(p.divergent_clusters, 0);
        assert_eq!(p.divergence(), 0.0);
        assert_eq!(p.num_distinct, 1);
    }

    #[test]
    fn top_structures_are_capped_at_ten() {
        let mk = |s: &str| Cell {
            observed: s.to_string(),
            truth: s.to_string(),
        };
        let mut d = Dataset::new("d", vec!["A".to_string()]);
        // 15 values with 15 different punctuation-heavy structures.
        let punct = [
            '!', '?', ';', ':', '(', ')', '[', ']', '{', '}', '<', '>', '/', '%', '&',
        ];
        for (i, p) in punct.iter().enumerate() {
            d.clusters.push(Cluster {
                rows: vec![Row {
                    source: 0,
                    cells: vec![mk(&format!("a{}{}", p, "b".repeat(i + 1)))],
                }],
                golden: vec![String::new()],
            });
        }
        let p = ColumnProfile::profile(&d, 0);
        assert!(p.num_structures >= 15);
        assert_eq!(p.top_structures.len(), 10);
    }

    #[test]
    #[should_panic(expected = "column index out of range")]
    fn out_of_range_column_panics() {
        let d = table1();
        let _ = ColumnProfile::profile(&d, 99);
    }

    #[test]
    fn address_column_is_dirtier_than_name_column() {
        let d = table1();
        let name = ColumnProfile::profile(&d, 0);
        let address = ColumnProfile::profile(&d, 1);
        assert!(address.num_structures >= name.num_structures);
        assert!(address.length.mean > name.length.mean);
    }
}
