//! Plain-text rendering of profiles (used by the `ec` CLI and examples).

use crate::{ColumnPriority, DatasetProfile};
use ec_report::table::fmt_f64;
use ec_report::TextTable;

/// Renders a dataset profile as aligned plain text: a dataset summary line,
/// the cluster-size distribution, and one row per column.
pub fn render_dataset_profile(profile: &DatasetProfile) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "dataset '{}': {} clusters, {} records, avg cluster size {}, max {}\n",
        profile.name,
        profile.num_clusters,
        profile.num_records,
        fmt_f64(profile.avg_cluster_size, 1),
        profile.max_cluster_size,
    ));
    out.push_str(&format!(
        "singleton clusters: {}%\n\n",
        fmt_f64(profile.singleton_cluster_fraction() * 100.0, 1)
    ));

    let mut table = TextTable::new([
        "column",
        "values",
        "distinct",
        "empty",
        "len(min/avg/max)",
        "structures",
        "divergent clusters",
        "value pairs",
    ]);
    for col in &profile.columns {
        table.push_row([
            col.name.clone(),
            col.num_values.to_string(),
            col.num_distinct.to_string(),
            col.num_empty.to_string(),
            format!(
                "{}/{}/{}",
                col.length.min,
                fmt_f64(col.length.mean, 1),
                col.length.max
            ),
            col.num_structures.to_string(),
            format!(
                "{} ({}%)",
                col.divergent_clusters,
                fmt_f64(col.divergence() * 100.0, 1)
            ),
            col.distinct_value_pairs.to_string(),
        ]);
    }
    out.push_str(&table.to_plain_text());

    for col in &profile.columns {
        if col.top_structures.is_empty() {
            continue;
        }
        out.push_str(&format!("\ntop structures of '{}':\n", col.name));
        for s in &col.top_structures {
            out.push_str(&format!("  {:>7}  {}\n", s.count, s.structure));
        }
    }
    out
}

/// Renders a column ranking as a small table, most promising column first.
pub fn render_priorities(priorities: &[ColumnPriority]) -> String {
    let mut table = TextTable::new([
        "rank",
        "column",
        "score",
        "divergent clusters",
        "value pairs",
    ]);
    for (rank, p) in priorities.iter().enumerate() {
        table.push_row([
            (rank + 1).to_string(),
            p.name.clone(),
            fmt_f64(p.score, 2),
            p.divergent_clusters.to_string(),
            p.distinct_value_pairs.to_string(),
        ]);
    }
    table.to_plain_text()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prioritize_columns, DatasetProfile};
    use ec_data::{GeneratorConfig, PaperDataset};

    #[test]
    fn profile_rendering_mentions_every_column() {
        let dataset = PaperDataset::Address.generate(&GeneratorConfig {
            num_clusters: 10,
            seed: 1,
            num_sources: 3,
        });
        let profile = DatasetProfile::profile(&dataset);
        let text = render_dataset_profile(&profile);
        for col in &dataset.columns {
            assert!(
                text.contains(col.as_str()),
                "missing column {col} in:\n{text}"
            );
        }
        assert!(text.contains("clusters"));
        assert!(text.contains("top structures"));
    }

    #[test]
    fn priority_rendering_is_ranked() {
        let dataset = PaperDataset::JournalTitle.generate(&GeneratorConfig {
            num_clusters: 20,
            seed: 2,
            num_sources: 3,
        });
        let profile = DatasetProfile::profile(&dataset);
        let ranking = prioritize_columns(&profile);
        let text = render_priorities(&ranking);
        assert!(text.lines().count() >= 2 + ranking.len());
        assert!(text.starts_with("rank"));
    }

    #[test]
    fn empty_profile_renders_without_panicking() {
        let d = ec_data::Dataset::new("empty", vec!["A".to_string()]);
        let profile = DatasetProfile::profile(&d);
        let text = render_dataset_profile(&profile);
        assert!(text.contains("0 clusters"));
        assert!(render_priorities(&prioritize_columns(&profile)).contains("A"));
    }
}
