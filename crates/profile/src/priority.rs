//! Column prioritization.
//!
//! The framework processes one column at a time under a human budget
//! (Algorithm 1 iterates over columns). When the budget is shared across
//! columns, it should go to the columns where standardization can change the
//! most clusters — columns that diverge a lot inside clusters and whose
//! values exhibit many different shapes (a sign of formatting variants rather
//! than genuinely different values).

use crate::{ColumnProfile, DatasetProfile};
use serde::{Deserialize, Serialize};

/// How promising one column is for a standardization pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnPriority {
    /// Column name.
    pub name: String,
    /// Column index.
    pub index: usize,
    /// The priority score (higher = standardize first).
    pub score: f64,
    /// Number of clusters that disagree on this column.
    pub divergent_clusters: usize,
    /// Number of candidate replacement pairs the column would generate.
    pub distinct_value_pairs: usize,
}

/// Scores one column: the number of divergent clusters scaled by how much of
/// the divergence looks like formatting (many structures per distinct value)
/// rather than genuinely conflicting content, and penalized for emptiness.
fn score(profile: &ColumnProfile) -> f64 {
    if profile.num_values == 0 || profile.divergent_clusters == 0 {
        return 0.0;
    }
    // Structure diversity per distinct value: a column whose distinct values
    // fall into only a few shapes (e.g. all names) scores lower than one whose
    // values are rendered in many shapes (dates, addresses, abbreviations)
    // because shared transformations are what the grouping step exploits.
    let structure_diversity =
        (profile.num_structures as f64 / profile.num_distinct.max(1) as f64).min(1.0);
    let divergence = profile.divergence();
    let coverage = 1.0 - profile.empty_fraction();
    profile.divergent_clusters as f64 * (0.5 + structure_diversity) * divergence * coverage
}

/// Ranks all columns of a profiled dataset, most promising first. Ties are
/// broken by column index so the ranking is deterministic.
pub fn prioritize_columns(profile: &DatasetProfile) -> Vec<ColumnPriority> {
    let mut ranked: Vec<ColumnPriority> = profile
        .columns
        .iter()
        .map(|c| ColumnPriority {
            name: c.name.clone(),
            index: c.index,
            score: score(c),
            divergent_clusters: c.divergent_clusters,
            distinct_value_pairs: c.distinct_value_pairs,
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.index.cmp(&b.index))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_data::{Cell, Cluster, Dataset, Row};

    /// A dataset with one clean column, one dirty (variant-heavy) column and
    /// one empty column.
    fn three_column_dataset() -> Dataset {
        let mk = |s: &str| Cell {
            observed: s.to_string(),
            truth: s.to_string(),
        };
        let mut d = Dataset::new(
            "d",
            vec![
                "Clean".to_string(),
                "Dirty".to_string(),
                "Empty".to_string(),
            ],
        );
        let rows = [
            [
                ("Alice", "9 St", ""),
                ("Alice", "9th Street", ""),
                ("Alice", "9 Street", ""),
            ],
            [
                ("Bob", "5 Ave", ""),
                ("Bob", "5th Avenue", ""),
                ("Bob", "5 Avenue", ""),
            ],
            [
                ("Carol", "1 Rd", ""),
                ("Carol", "1st Road", ""),
                ("Carol", "1 Road", ""),
            ],
        ];
        for cluster_rows in rows {
            d.clusters.push(Cluster {
                rows: cluster_rows
                    .iter()
                    .map(|(a, b, c)| Row {
                        source: 0,
                        cells: vec![mk(a), mk(b), mk(c)],
                    })
                    .collect(),
                golden: vec![String::new(), String::new(), String::new()],
            });
        }
        d
    }

    #[test]
    fn dirty_column_outranks_clean_and_empty_columns() {
        let profile = DatasetProfile::profile(&three_column_dataset());
        let ranking = prioritize_columns(&profile);
        assert_eq!(ranking.len(), 3);
        assert_eq!(ranking[0].name, "Dirty");
        assert!(ranking[0].score > 0.0);
        // Clean and Empty columns never diverge, so their score is zero.
        assert_eq!(ranking[1].score, 0.0);
        assert_eq!(ranking[2].score, 0.0);
        // Zero-score ties are broken by column index.
        assert!(ranking[1].index < ranking[2].index);
    }

    #[test]
    fn ranking_is_deterministic() {
        let profile = DatasetProfile::profile(&three_column_dataset());
        assert_eq!(prioritize_columns(&profile), prioritize_columns(&profile));
    }

    #[test]
    fn priorities_carry_the_pair_counts() {
        let profile = DatasetProfile::profile(&three_column_dataset());
        let ranking = prioritize_columns(&profile);
        let dirty = ranking.iter().find(|c| c.name == "Dirty").unwrap();
        assert_eq!(dirty.divergent_clusters, 3);
        assert!(dirty.distinct_value_pairs >= 9);
    }

    #[test]
    fn empty_dataset_yields_zero_scores() {
        let d = Dataset::new("empty", vec!["A".to_string(), "B".to_string()]);
        let ranking = prioritize_columns(&DatasetProfile::profile(&d));
        assert_eq!(ranking.len(), 2);
        assert!(ranking.iter().all(|c| c.score == 0.0));
    }
}
