//! # ec-profile — dataset and column profiling
//!
//! Before spending a human budget on a column, a practitioner wants to know
//! *which* columns are worth standardizing and what shape their values have.
//! This crate profiles a clustered [`Dataset`]:
//!
//! * [`ColumnProfile`] — per-column value statistics, the histogram of
//!   structure signatures (Section 7.2's `Struc(·)`), and the intra-cluster
//!   divergence (how many clusters disagree on the column).
//! * [`DatasetProfile`] — all column profiles plus the cluster-size
//!   distribution of the dataset (the shape reported in the paper's Table 6).
//! * [`prioritize_columns`] — a ranking of the columns by how much a
//!   standardization pass is likely to help, so a bounded human budget is
//!   spent where it pays off.
//!
//! Profiles only read the *observed* values — never the ground truth — so
//! they work on real data exactly as on the synthetic datasets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod priority;
pub mod render;

pub use column::{ColumnProfile, LengthStats, StructureCount};
pub use priority::{prioritize_columns, ColumnPriority};
pub use render::{render_dataset_profile, render_priorities};

use ec_data::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A profile of a whole clustered dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Dataset name.
    pub name: String,
    /// Number of clusters.
    pub num_clusters: usize,
    /// Total number of records.
    pub num_records: usize,
    /// Histogram of cluster sizes: `size -> number of clusters of that size`.
    pub cluster_size_histogram: BTreeMap<usize, usize>,
    /// Average cluster size.
    pub avg_cluster_size: f64,
    /// Largest cluster size.
    pub max_cluster_size: usize,
    /// One profile per column, in column order.
    pub columns: Vec<ColumnProfile>,
}

impl DatasetProfile {
    /// Profiles a dataset: cluster-size distribution plus one
    /// [`ColumnProfile`] per column.
    pub fn profile(dataset: &Dataset) -> Self {
        let mut histogram: BTreeMap<usize, usize> = BTreeMap::new();
        for cluster in &dataset.clusters {
            *histogram.entry(cluster.len()).or_insert(0) += 1;
        }
        let num_records = dataset.num_records();
        let num_clusters = dataset.clusters.len();
        let columns = (0..dataset.columns.len())
            .map(|col| ColumnProfile::profile(dataset, col))
            .collect();
        DatasetProfile {
            name: dataset.name.clone(),
            num_clusters,
            num_records,
            avg_cluster_size: if num_clusters == 0 {
                0.0
            } else {
                num_records as f64 / num_clusters as f64
            },
            max_cluster_size: histogram.keys().copied().max().unwrap_or(0),
            cluster_size_histogram: histogram,
            columns,
        }
    }

    /// The profile of a column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnProfile> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Fraction of clusters that are singletons (no consolidation work to do).
    pub fn singleton_cluster_fraction(&self) -> f64 {
        if self.num_clusters == 0 {
            return 0.0;
        }
        let singletons = self.cluster_size_histogram.get(&1).copied().unwrap_or(0)
            + self.cluster_size_histogram.get(&0).copied().unwrap_or(0);
        singletons as f64 / self.num_clusters as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_data::{Cell, Cluster, Dataset, Row};

    pub(crate) fn table1() -> Dataset {
        let mk = |observed: &str| Cell {
            observed: observed.to_string(),
            truth: observed.to_string(),
        };
        let mut d = Dataset::new("table1", vec!["Name".to_string(), "Address".to_string()]);
        d.clusters.push(Cluster {
            rows: vec![
                Row {
                    source: 0,
                    cells: vec![mk("Mary Lee"), mk("9 St, 02141 Wisconsin")],
                },
                Row {
                    source: 1,
                    cells: vec![mk("M. Lee"), mk("9th St, 02141 WI")],
                },
                Row {
                    source: 2,
                    cells: vec![mk("Lee, Mary"), mk("9 Street, 02141 WI")],
                },
            ],
            golden: vec!["Mary Lee".to_string(), "9th Street, 02141 WI".to_string()],
        });
        d.clusters.push(Cluster {
            rows: vec![
                Row {
                    source: 0,
                    cells: vec![mk("James Smith"), mk("3 E Avenue, 33990 CA")],
                },
                Row {
                    source: 1,
                    cells: vec![mk("James Smith"), mk("3 E Avenue, 33990 CA")],
                },
            ],
            golden: vec![
                "James Smith".to_string(),
                "3rd E Avenue, 33990 CA".to_string(),
            ],
        });
        d
    }

    #[test]
    fn dataset_profile_counts_clusters_and_records() {
        let p = DatasetProfile::profile(&table1());
        assert_eq!(p.num_clusters, 2);
        assert_eq!(p.num_records, 5);
        assert!((p.avg_cluster_size - 2.5).abs() < 1e-9);
        assert_eq!(p.max_cluster_size, 3);
        assert_eq!(p.cluster_size_histogram.get(&3), Some(&1));
        assert_eq!(p.cluster_size_histogram.get(&2), Some(&1));
        assert_eq!(p.columns.len(), 2);
    }

    #[test]
    fn column_lookup_by_name() {
        let p = DatasetProfile::profile(&table1());
        assert!(p.column("Name").is_some());
        assert!(p.column("Address").is_some());
        assert!(p.column("Phone").is_none());
    }

    #[test]
    fn singleton_fraction() {
        let mut d = table1();
        let p = DatasetProfile::profile(&d);
        assert_eq!(p.singleton_cluster_fraction(), 0.0);
        d.clusters.push(Cluster {
            rows: vec![Row {
                source: 0,
                cells: vec![
                    Cell {
                        observed: "X".into(),
                        truth: "X".into(),
                    },
                    Cell {
                        observed: "Y".into(),
                        truth: "Y".into(),
                    },
                ],
            }],
            golden: vec!["X".to_string(), "Y".to_string()],
        });
        let p = DatasetProfile::profile(&d);
        assert!((p.singleton_cluster_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dataset_profile_is_well_defined() {
        let d = Dataset::new("empty", vec!["A".to_string()]);
        let p = DatasetProfile::profile(&d);
        assert_eq!(p.num_clusters, 0);
        assert_eq!(p.num_records, 0);
        assert_eq!(p.avg_cluster_size, 0.0);
        assert_eq!(p.singleton_cluster_fraction(), 0.0);
        assert_eq!(p.columns.len(), 1);
        assert_eq!(p.columns[0].num_values, 0);
    }
}
