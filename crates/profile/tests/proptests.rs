//! Property-based tests of the profiling invariants, run against randomly
//! shaped clustered datasets.

use ec_data::{Cell, Cluster, Dataset, Row};
use ec_profile::{prioritize_columns, DatasetProfile};
use proptest::prelude::*;

/// A random clustered dataset with 1-3 columns of short, messy strings.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    let value = prop_oneof![Just(String::new()), "[A-Za-z0-9 ,.]{1,12}".prop_map(|s| s),];
    (1usize..=3).prop_flat_map(move |num_cols| {
        let row = proptest::collection::vec(value.clone(), num_cols..=num_cols);
        let cluster = proptest::collection::vec(row, 1..6);
        proptest::collection::vec(cluster, 0..8).prop_map(move |clusters| {
            let columns = (0..num_cols).map(|i| format!("col{i}")).collect();
            let mut dataset = Dataset::new("prop", columns);
            for rows in clusters {
                dataset.clusters.push(Cluster {
                    golden: rows[0].clone(),
                    rows: rows
                        .into_iter()
                        .map(|cells| Row {
                            source: 0,
                            cells: cells
                                .into_iter()
                                .map(|v| Cell {
                                    truth: v.clone(),
                                    observed: v,
                                })
                                .collect(),
                        })
                        .collect(),
                });
            }
            dataset
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn column_profiles_are_internally_consistent(dataset in arb_dataset()) {
        let profile = DatasetProfile::profile(&dataset);
        prop_assert_eq!(profile.num_clusters, dataset.clusters.len());
        prop_assert_eq!(profile.num_records, dataset.num_records());
        prop_assert_eq!(
            profile.cluster_size_histogram.values().sum::<usize>(),
            dataset.clusters.len()
        );
        for col in &profile.columns {
            prop_assert_eq!(col.num_values, dataset.num_records());
            prop_assert!(col.num_distinct <= col.num_values.max(1));
            prop_assert!(col.num_empty <= col.num_values);
            prop_assert!(col.divergent_clusters <= col.multi_record_clusters);
            prop_assert!(col.divergence() >= 0.0 && col.divergence() <= 1.0);
            prop_assert!(col.empty_fraction() >= 0.0 && col.empty_fraction() <= 1.0);
            prop_assert!(col.length.min <= col.length.max);
            if col.num_values > 0 {
                prop_assert!(col.length.mean >= col.length.min as f64 - 1e-9);
                prop_assert!(col.length.mean <= col.length.max as f64 + 1e-9);
                // The structure histogram covers every value exactly once (the
                // top list is truncated to 10, so only check when it is not).
                if col.num_structures <= 10 {
                    prop_assert_eq!(
                        col.top_structures.iter().map(|s| s.count).sum::<usize>(),
                        col.num_values
                    );
                }
            }
        }
    }

    #[test]
    fn prioritization_is_a_permutation_with_monotone_scores(dataset in arb_dataset()) {
        let profile = DatasetProfile::profile(&dataset);
        let ranking = prioritize_columns(&profile);
        prop_assert_eq!(ranking.len(), dataset.columns.len());
        let mut indices: Vec<usize> = ranking.iter().map(|p| p.index).collect();
        indices.sort_unstable();
        prop_assert_eq!(indices, (0..dataset.columns.len()).collect::<Vec<_>>());
        for pair in ranking.windows(2) {
            prop_assert!(pair[0].score >= pair[1].score);
        }
        for p in &ranking {
            prop_assert!(p.score.is_finite());
            prop_assert!(p.score >= 0.0);
        }
    }

    #[test]
    fn profiling_ignores_ground_truth(dataset in arb_dataset()) {
        // Profiles read only observed values: scrambling the truths changes nothing.
        let mut scrambled = dataset.clone();
        for cluster in &mut scrambled.clusters {
            for row in &mut cluster.rows {
                for cell in &mut row.cells {
                    cell.truth = format!("{}-scrambled", cell.truth);
                }
            }
        }
        prop_assert_eq!(
            DatasetProfile::profile(&dataset),
            DatasetProfile::profile(&scrambled)
        );
    }
}
