//! `cold_start`: the artifact cold-start benchmark — the perf axis the
//! `ec compile` work exists for.
//!
//! Every pre-artifact run rebuilt the served state from CSV at startup:
//! parse the clustered records, generate candidate replacements, prepare
//! the partition graphs and the CSR inverted index. `ec compile` does all
//! of that once and writes a memory-mappable artifact; `--artifact`
//! consumers map it and start serving. This benchmark measures the three
//! numbers that trajectory tracks:
//!
//! * **compile** — CSV text → compiled state → encoded artifact bytes
//!   (the one-time cost a deployment pays per dataset version);
//! * **csv rebuild** — CSV text → compiled state, the per-process startup
//!   cost the artifact eliminates;
//! * **mmap load** — `ec_artifact::read_artifact` on the compiled file,
//!   checksum validation included: the startup cost that remains.
//!
//! Rebuild and load are each run `--iters` times and summarized by their
//! median, so one cold page-cache outlier cannot distort the ratio.
//! The exported report also embeds the `ec-obs` registry movement across
//! the run — most usefully the `artifact.load.map`/`artifact.load.decode`
//! stage timings accumulated by the repeated loads.
//! Results print as a table and export as `BENCH_cold_start.json`
//! (schema `cold_start/v1`) to `EC_BENCH_EXPORT_DIR` (or the current
//! directory), where CI archives them next to `BENCH_serve_load.json`.
//!
//! Usage: `cold_start [--clusters N] [--iters N]` (defaults 400 clusters,
//! 7 iterations).

use ec_bench::{export_artifact, metrics_delta_json};
use ec_core::{compile_dataset, ConsolidationConfig};
use ec_data::{dataset_from_csv, dataset_to_csv, GeneratorConfig, PaperDataset};
use ec_report::TextTable;
use std::time::{Duration, Instant};

struct Options {
    clusters: usize,
    iters: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        clusters: 400,
        iters: 7,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> Result<usize, String> {
            args.next()
                .ok_or_else(|| format!("--{name} expects a value"))?
                .parse()
                .map_err(|_| format!("--{name} expects an integer"))
        };
        match flag.as_str() {
            "--clusters" => options.clusters = value("clusters")?.max(1),
            "--iters" => options.iters = value("iters")?.max(1),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(options)
}

/// Median of repeated timings of `work` (which must not be optimized away:
/// every closure returns a value the caller consumes).
fn median_timing<T>(iters: usize, mut work: impl FnMut() -> T) -> (Duration, T) {
    let mut timings = Vec::with_capacity(iters);
    let mut last = None;
    for _ in 0..iters {
        let started = Instant::now();
        let value = work();
        timings.push(started.elapsed());
        last = Some(value);
    }
    timings.sort_unstable();
    (timings[timings.len() / 2], last.expect("iters >= 1"))
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("cold_start: {message}");
            std::process::exit(2);
        }
    };
    const THRESHOLD: f64 = 0.75;
    let config = ConsolidationConfig::default();

    // The workload: a clustered Address dataset, as CSV text — the same
    // starting point `ec pipeline`/`ec serve` have after reading a file.
    let dataset = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: options.clusters,
        seed: 17,
        num_sources: 4,
    });
    let csv = dataset_to_csv(&dataset);
    let records = dataset.num_records();
    println!(
        "cold_start: {} clusters, {} records, {} CSV bytes, {} iterations",
        options.clusters,
        records,
        csv.len(),
        options.iters
    );

    // Registry snapshot around the whole measured section: the embedded
    // metrics delta captures the artifact.load(.map/.decode) stage timings
    // of the `--iters` loads next to the compile/rebuild stage work.
    let obs_before = ec_obs::render();

    // One-time compile cost, and the artifact everything below loads.
    let compile_started = Instant::now();
    let parsed = dataset_from_csv("cold_start", &csv).expect("generated CSV parses");
    let compiled = compile_dataset(parsed, THRESHOLD, true, &config);
    let bytes = ec_artifact::encode_artifact(&compiled);
    let compile_time = compile_started.elapsed();
    let artifact_path = std::env::temp_dir().join(format!("cold_start_{}.eca", std::process::id()));
    std::fs::write(&artifact_path, &bytes).expect("write artifact");

    // Startup cost without the artifact: parse the CSV and recompile.
    let (rebuild, rebuilt) = median_timing(options.iters, || {
        let parsed = dataset_from_csv("cold_start", &csv).expect("generated CSV parses");
        compile_dataset(parsed, THRESHOLD, true, &config)
    });

    // Startup cost with the artifact: map and validate.
    let (load, (loaded, mapped)) = median_timing(options.iters, || {
        ec_artifact::read_artifact(&artifact_path).expect("artifact loads")
    });
    let _ = std::fs::remove_file(&artifact_path);
    assert_eq!(
        loaded.dataset.num_records(),
        rebuilt.dataset.num_records(),
        "the loaded artifact describes the same dataset"
    );

    let speedup = if load.as_secs_f64() > 0.0 {
        rebuild.as_secs_f64() / load.as_secs_f64()
    } else {
        f64::INFINITY
    };

    let mut table = TextTable::new(["stage", "median ms", "notes"]);
    table.push_row([
        "compile".to_string(),
        format!("{:.2}", ms(compile_time)),
        format!("one-time; {} artifact bytes", bytes.len()),
    ]);
    table.push_row([
        "csv rebuild".to_string(),
        format!("{:.2}", ms(rebuild)),
        "per-process startup without an artifact".to_string(),
    ]);
    table.push_row([
        "mmap load".to_string(),
        format!("{:.2}", ms(load)),
        format!(
            "{}; {:.1}x faster than rebuild",
            if mapped {
                "memory-mapped"
            } else {
                "decoded copy"
            },
            speedup
        ),
    ]);
    println!("{}", table.to_plain_text());

    let metrics = metrics_delta_json(
        &obs_before,
        &ec_obs::render(),
        &["ec_stage_seconds", "ec_pool_", "ec_pivot_"],
    );
    let json = format!(
        "{{\n  \"schema\": \"cold_start/v1\",\n  \"clusters\": {},\n  \"records\": {},\n  \
         \"csv_bytes\": {},\n  \"artifact_bytes\": {},\n  \"iterations\": {},\n  \
         \"mapped\": {},\n  \"compile_ms\": {:.3},\n  \"csv_rebuild_ms\": {:.3},\n  \
         \"mmap_load_ms\": {:.3},\n  \"load_speedup\": {:.1},\n  \"metrics\": {}\n}}\n",
        options.clusters,
        records,
        csv.len(),
        bytes.len(),
        options.iters,
        mapped,
        ms(compile_time),
        ms(rebuild),
        ms(load),
        speedup,
        metrics,
    );
    export_artifact("BENCH_cold_start.json", &json);

    if speedup < 10.0 {
        eprintln!(
            "cold_start: warning: mmap load is only {speedup:.1}x faster than the CSV rebuild"
        );
    }
}
