//! `ingest_rate`: the sustained-ingest benchmark behind the library-first
//! delta path.
//!
//! The harness seeds a [`DeltaPipeline`] with a base corpus, then streams
//! timed batches whose **fraction-novel** knob controls how many records come
//! from clusters the pipeline has never seen. At fraction 0 every record's
//! shape is already learned — the pair cache resolves it, the cached group
//! sequences replay, and no pivot search runs — so throughput measures the
//! pure fast path. At fraction 1 every record is new and the delta path
//! degenerates toward a full run. Each batch is compared against the
//! **full-rebuild baseline**: a one-shot pipeline over the union of
//! everything ingested so far, which is exactly what a service without the
//! delta path would have to pay per batch.
//!
//! After each sweep point the delta pipeline's golden CSV is byte-compared
//! against the one-shot rebuild over the same union — the benchmark *is* a
//! differential test; a mismatch fails the run.
//!
//! Results print as a table and export as `BENCH_ingest.json` (schema
//! `ingest/v1`) to `EC_BENCH_EXPORT_DIR` (or the current directory), where CI
//! archives them; successive PRs extend the trajectory by comparing these
//! files. Each sweep point embeds the `ec-obs` registry movement across its
//! timed batches (pair-cache hits/misses/evictions, replayed sequences,
//! stage timings), snapshotted in-process via `ec_obs::render`.
//!
//! Usage: `ingest_rate [--clusters N] [--batch-size N] [--batches N]`
//! (defaults: 300 base clusters, 8 batches of 80 records).

use ec_bench::{export_artifact, metrics_delta_json};
use ec_core::{
    standardize_columns, write_golden_records_csv, AutoMode, ConsolidationConfig, DeltaPipeline,
    Pipeline, ProgramLibrary, TruthMethod,
};
use ec_data::{FlatRecord, VecRecordStream};
use ec_report::TextTable;
use ec_resolution::{RawRecord, Resolver, ResolverConfig};
use std::time::{Duration, Instant};

const FRACTIONS: [f64; 5] = [0.0, 0.01, 0.1, 0.5, 1.0];

struct Options {
    clusters: usize,
    batch_size: usize,
    batches: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        clusters: 300,
        batch_size: 80,
        batches: 8,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> Result<usize, String> {
            args.next()
                .ok_or_else(|| format!("--{name} expects a value"))?
                .parse()
                .map_err(|_| format!("--{name} expects an integer"))
        };
        match flag.as_str() {
            "--clusters" => options.clusters = value("clusters")?.max(1),
            "--batch-size" => options.batch_size = value("batch-size")?.max(1),
            "--batches" => options.batches = value("batches")?.max(1),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(options)
}

fn columns() -> Vec<String> {
    vec!["Name".to_string(), "Address".to_string()]
}

/// Spellings per synthetic cluster; also the number of sources.
const VARIANTS: usize = 4;

/// One record of synthetic cluster `c`: realistic-length name and address
/// spellings that resolution reliably merges (shared rare tokens per cluster)
/// while distinct clusters never collide. Field lengths mirror real entity
/// data — similarity scoring over such strings is the cost the fast path
/// skips, so toy-sized fields would understate the delta win.
fn synth_record(c: usize, variant: usize) -> RawRecord {
    let name = match variant % VARIANTS {
        0 => format!("Firstname{c} Middlename{c} Lastname{c}"),
        1 => format!("Lastname{c}, Firstname{c} Middlename{c}"),
        2 => format!("F{c}. M{c}. Lastname{c}"),
        _ => format!("Firstname{c} M{c}. Lastname{c}"),
    };
    let address = match variant % 2 {
        0 => format!("{c} East Oakwood Boulevard Apt {c}, Madison, 0{c} Wisconsin"),
        _ => format!("{c} E. Oakwood Blvd Apt {c}, Madison, 0{c} WI"),
    };
    RawRecord::new(variant % VARIANTS, [name, address])
}

/// All variants of clusters `range`, in cluster-major order.
fn cluster_records(range: std::ops::Range<usize>) -> Vec<RawRecord> {
    let mut out = Vec::with_capacity(range.len() * VARIANTS);
    for c in range {
        for variant in 0..VARIANTS {
            out.push(synth_record(c, variant));
        }
    }
    out
}

/// The one-shot pipeline over `records` — exactly what `ec pipeline` runs —
/// returning the golden CSV bytes.
fn one_shot_golden(records: &[RawRecord]) -> Vec<u8> {
    let resolver = Resolver::new(ResolverConfig::default());
    let mut stream = VecRecordStream::new(
        columns(),
        records
            .iter()
            .map(|r| FlatRecord {
                source: r.source,
                fields: r.fields.clone(),
            })
            .collect(),
    );
    let mut dataset = resolver
        .resolve_stream("ingest-rate", &mut stream)
        .expect("in-memory resolve cannot fail");
    let pipeline = Pipeline::new(ConsolidationConfig::default());
    let cols: Vec<usize> = (0..dataset.columns.len()).collect();
    let mut library = ProgramLibrary::new();
    standardize_columns(
        &pipeline,
        &mut dataset,
        &cols,
        AutoMode::ApproveAll,
        true,
        Some(&mut library),
    );
    let golden = pipeline.discover_golden_records(&dataset, TruthMethod::MajorityConsensus);
    let mut out = Vec::new();
    write_golden_records_csv(&columns(), &golden, &mut out).expect("in-memory write");
    out
}

/// Registry families that tell the delta-path story per sweep point: pair
/// cache traffic, replayed sequences, and how much pivot/stage work the
/// novel records forced.
const METRIC_PREFIXES: &[&str] = &["ec_ingest_", "ec_stage_seconds", "ec_pivot_", "ec_pool_"];

struct SweepPoint {
    fraction: f64,
    total_records: usize,
    hits: u64,
    delta_total: Duration,
    baseline_total: Duration,
    latencies_us: Vec<u64>,
    golden_identical: bool,
    /// Registry movement across this point's timed batches, as a
    /// ready-to-embed JSON object (the benchmark runs in-process, so the
    /// snapshots come straight from `ec_obs::render`).
    metrics_json: String,
}

impl SweepPoint {
    fn records_per_sec(&self) -> f64 {
        self.total_records as f64 / self.delta_total.as_secs_f64().max(1e-9)
    }

    fn baseline_records_per_sec(&self) -> f64 {
        self.total_records as f64 / self.baseline_total.as_secs_f64().max(1e-9)
    }

    fn speedup(&self) -> f64 {
        self.baseline_total.as_secs_f64() / self.delta_total.as_secs_f64().max(1e-9)
    }

    fn percentile(&self, p: f64) -> u64 {
        let n = self.latencies_us.len();
        if n == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.latencies_us[rank.clamp(1, n) - 1]
    }
}

/// Runs one sweep point: seed the base corpus, stream `batches` timed batches
/// with the given novel fraction, race each batch against the full-rebuild
/// baseline, and byte-compare the final goldens.
fn run_fraction(options: &Options, fraction: f64) -> SweepPoint {
    let mut delta = DeltaPipeline::new(
        "ingest-rate",
        columns(),
        ResolverConfig::default(),
        ConsolidationConfig::default(),
        AutoMode::ApproveAll,
        TruthMethod::MajorityConsensus,
    );
    // The base corpus warms the pipeline (untimed): after it, every base
    // cluster's values and group sequences are cached.
    let mut union = cluster_records(0..options.clusters);
    delta.ingest_batch(union.clone());

    // Novel clusters draw monotonically increasing ids so they never collide
    // with the base corpus or each other across batches.
    let mut next_novel = options.clusters;
    let novel_per_batch = ((options.batch_size as f64) * fraction).round() as usize;
    let novel_per_batch = novel_per_batch.min(options.batch_size);

    let mut latencies_us = Vec::with_capacity(options.batches);
    let mut delta_total = Duration::ZERO;
    let mut baseline_total = Duration::ZERO;
    let mut total_records = 0usize;
    let hits_before = delta.library_hits();
    // Registry snapshot after the untimed warm-up, so the embedded metrics
    // delta covers exactly this point's batches. The window also spans the
    // full-rebuild baseline races, so stage/pivot/pool series include the
    // baseline's work; the ec_ingest_* family is incremented only by the
    // delta pipeline and isolates the fast path.
    let obs_before = ec_obs::render();

    for batch_index in 0..options.batches {
        let mut batch = Vec::with_capacity(options.batch_size);
        for i in 0..novel_per_batch {
            // One spelling per novel record; its siblings arrive in later
            // slots or batches, like real dirty feeds.
            batch.push(synth_record(next_novel, i));
            next_novel += 1;
        }
        // Seen records cycle deterministically through base clusters and
        // variants, shifted per batch so every batch touches different rows.
        for i in novel_per_batch..options.batch_size {
            let c = (batch_index * 31 + i * 7) % options.clusters;
            batch.push(synth_record(c, batch_index + i));
        }
        union.extend(batch.iter().cloned());
        total_records += batch.len();

        let started = Instant::now();
        delta.ingest_batch(batch);
        let elapsed = started.elapsed();
        latencies_us.push(elapsed.as_micros() as u64);
        delta_total += elapsed;

        // The baseline pays a full rebuild over the union for this batch.
        let started = Instant::now();
        let baseline_golden = one_shot_golden(&union);
        baseline_total += started.elapsed();

        if batch_index + 1 == options.batches {
            let mut ours = Vec::new();
            delta.write_golden_csv(&mut ours).expect("in-memory write");
            let identical = ours == baseline_golden;
            latencies_us.sort_unstable();
            return SweepPoint {
                fraction,
                total_records,
                hits: delta.library_hits() - hits_before,
                delta_total,
                baseline_total,
                latencies_us,
                golden_identical: identical,
                metrics_json: metrics_delta_json(&obs_before, &ec_obs::render(), METRIC_PREFIXES),
            };
        }
    }
    unreachable!("the final batch returns");
}

fn json_report(options: &Options, points: &[SweepPoint]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"ingest/v1\",\n");
    out.push_str(&format!(
        "  \"base_clusters\": {},\n  \"batch_size\": {},\n  \"batches\": {},\n",
        options.clusters, options.batch_size, options.batches
    ));
    out.push_str("  \"sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"fraction_novel\": {}, \"records\": {}, \"library_hits\": {}, \
             \"records_per_sec\": {:.1}, \"baseline_records_per_sec\": {:.1}, \
             \"speedup\": {:.2}, \
             \"batch_latency_us\": {{\"p50\": {}, \"p99\": {}, \"max\": {}}}, \
             \"golden_identical\": {}, \"metrics\": {}}}{}\n",
            p.fraction,
            p.total_records,
            p.hits,
            p.records_per_sec(),
            p.baseline_records_per_sec(),
            p.speedup(),
            p.percentile(50.0),
            p.percentile(99.0),
            p.latencies_us.last().copied().unwrap_or(0),
            p.golden_identical,
            p.metrics_json,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("ingest_rate: {message}");
            std::process::exit(2);
        }
    };
    println!(
        "ingest_rate: {} base clusters, {} batches x {} records, fraction-novel sweep {:?}",
        options.clusters, options.batches, options.batch_size, FRACTIONS
    );

    let points: Vec<SweepPoint> = FRACTIONS
        .iter()
        .map(|&fraction| {
            let point = run_fraction(&options, fraction);
            println!(
                "fraction {:.2}: {:.0} rec/s delta vs {:.0} rec/s rebuild ({:.1}x), golden {}",
                fraction,
                point.records_per_sec(),
                point.baseline_records_per_sec(),
                point.speedup(),
                if point.golden_identical {
                    "identical"
                } else {
                    "DIVERGED"
                }
            );
            point
        })
        .collect();

    let mut table = TextTable::new([
        "novel", "records", "hits", "rec/s", "base r/s", "speedup", "p50 us", "p99 us", "max us",
    ]);
    for p in &points {
        table.push_row([
            format!("{:.2}", p.fraction),
            p.total_records.to_string(),
            p.hits.to_string(),
            format!("{:.1}", p.records_per_sec()),
            format!("{:.1}", p.baseline_records_per_sec()),
            format!("{:.2}", p.speedup()),
            p.percentile(50.0).to_string(),
            p.percentile(99.0).to_string(),
            p.latencies_us.last().copied().unwrap_or(0).to_string(),
        ]);
    }
    println!("{}", table.to_plain_text());
    export_artifact("BENCH_ingest.json", &json_report(&options, &points));

    if points.iter().any(|p| !p.golden_identical) {
        eprintln!("ingest_rate: delta golden records diverged from the full rebuild");
        std::process::exit(1);
    }
}
