//! Figure 9: group-generation time for the three grouping methods.
//!
//! `OneShot` and `EarlyTerm` pay their full cost upfront (all groups are
//! generated before the first one can be shown to the human); `Incremental`
//! pays per invocation. The paper reports the incremental method improving the
//! upfront cost by up to three orders of magnitude; the absolute numbers here
//! differ (different hardware, Rust vs. C++, generated data) but the ordering
//! and the shape of the gap are what this harness checks.

use ec_data::{GeneratorConfig, PaperDataset};
use ec_grouping::{GroupingConfig, StructuredGrouper};
use ec_replace::{generate_candidates, CandidateConfig};
use std::time::Instant;

fn main() {
    // Scaled-down configurations so the (intentionally slow) OneShot variant
    // finishes in reasonable time.
    let configs = [
        (
            PaperDataset::AuthorList,
            GeneratorConfig {
                num_clusters: 30,
                seed: 1,
                num_sources: 6,
            },
            50usize,
        ),
        (
            PaperDataset::Address,
            GeneratorConfig {
                num_clusters: 120,
                seed: 2,
                num_sources: 6,
            },
            50,
        ),
        (
            PaperDataset::JournalTitle,
            GeneratorConfig {
                num_clusters: 250,
                seed: 3,
                num_sources: 6,
            },
            50,
        ),
    ];
    for (kind, gen_config, k) in configs {
        let dataset = kind.generate(&gen_config);
        let candidates =
            generate_candidates(&dataset.column_values(0), &CandidateConfig::default());
        println!(
            "=== {} — {} candidate replacements, first {} groups ===",
            kind.name(),
            candidates.len(),
            k
        );

        // OneShot: vanilla upfront grouping, no early termination.
        let start = Instant::now();
        let oneshot =
            StructuredGrouper::one_shot_all(&candidates.replacements, GroupingConfig::one_shot());
        let oneshot_upfront = start.elapsed();
        println!(
            "OneShot      upfront cost: {:>10.3?} ({} groups)",
            oneshot_upfront,
            oneshot.len()
        );

        // EarlyTerm: upfront grouping with the Section 5.2 optimizations.
        let start = Instant::now();
        let earlyterm =
            StructuredGrouper::one_shot_all(&candidates.replacements, GroupingConfig::default());
        let earlyterm_upfront = start.elapsed();
        println!(
            "EarlyTerm    upfront cost: {:>10.3?} ({} groups)",
            earlyterm_upfront,
            earlyterm.len()
        );

        // Incremental: time to the first group, and per-invocation times.
        let start = Instant::now();
        let mut grouper =
            StructuredGrouper::new(&candidates.replacements, GroupingConfig::default());
        let mut produced = 0usize;
        let mut first_group_time = None;
        for i in 0..k {
            if grouper.next_group().is_none() {
                break;
            }
            produced += 1;
            if i == 0 {
                first_group_time = Some(start.elapsed());
            }
        }
        let incremental_total = start.elapsed();
        println!(
            "Incremental  first group:  {:>10.3?}   first {} groups: {:>10.3?}",
            first_group_time.unwrap_or_default(),
            produced,
            incremental_total
        );
        let speedup = oneshot_upfront.as_secs_f64()
            / first_group_time
                .unwrap_or(incremental_total)
                .as_secs_f64()
                .max(1e-9);
        println!(
            "=> upfront-cost ratio OneShot / Incremental-first-group: {speedup:.0}x (EarlyTerm / OneShot: {:.2}x faster)\n",
            oneshot_upfront.as_secs_f64() / earlyterm_upfront.as_secs_f64().max(1e-9)
        );
    }
}
