//! Figure 9: group-generation time for the three grouping methods.
//!
//! `OneShot` and `EarlyTerm` pay their full cost upfront (all groups are
//! generated before the first one can be shown to the human); `Incremental`
//! pays per invocation. The paper reports the incremental method improving the
//! upfront cost by up to three orders of magnitude; the absolute numbers here
//! differ (different hardware, Rust vs. C++, generated data) but the ordering
//! and the shape of the gap are what this harness checks.

use ec_bench::export_figure_csv;
use ec_data::{GeneratorConfig, PaperDataset};
use ec_grouping::{GroupingConfig, Parallelism, StructuredGrouper};
use ec_replace::{generate_candidates, CandidateConfig};
use ec_report::{Figure, Series};
use std::time::{Duration, Instant};

const AXES: [&str; 3] = ["methods", "threads", "mega"];

/// Axis gate: `EC_FIG9_AXES=mega` (comma list of `methods`, `threads`,
/// `mega`) runs a subset of the harness — CI runs only the fast mega-group
/// axis; unset (or blank) runs everything. An unknown axis name is a hard
/// error, so a typo cannot silently turn the bin into a green no-op.
fn enabled_axes() -> Vec<&'static str> {
    let raw = match std::env::var("EC_FIG9_AXES") {
        Ok(v) if !v.trim().is_empty() => v,
        _ => return AXES.to_vec(),
    };
    let mut enabled = Vec::new();
    for name in raw.split(',').map(str::trim).filter(|n| !n.is_empty()) {
        match AXES.iter().find(|a| a.eq_ignore_ascii_case(name)) {
            Some(axis) if !enabled.contains(axis) => enabled.push(*axis),
            Some(_) => {}
            None => {
                eprintln!(
                    "fig9_efficiency: unknown axis '{name}' in EC_FIG9_AXES (expected a comma list of {})",
                    AXES.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    enabled
}

fn main() {
    let axes = enabled_axes();
    if axes.contains(&"methods") {
        methods_axis();
    }
    if axes.contains(&"threads") {
        threads_axis();
    }
    if axes.contains(&"mega") {
        mega_group_axis();
    }
}

fn methods_axis() {
    // Scaled-down configurations so the (intentionally slow) OneShot variant
    // finishes in reasonable time.
    let configs = [
        (
            PaperDataset::AuthorList,
            GeneratorConfig {
                num_clusters: 30,
                seed: 1,
                num_sources: 6,
            },
            50usize,
        ),
        (
            PaperDataset::Address,
            GeneratorConfig {
                num_clusters: 120,
                seed: 2,
                num_sources: 6,
            },
            50,
        ),
        (
            PaperDataset::JournalTitle,
            GeneratorConfig {
                num_clusters: 250,
                seed: 3,
                num_sources: 6,
            },
            50,
        ),
    ];
    for (kind, gen_config, k) in configs {
        let dataset = kind.generate(&gen_config);
        let candidates =
            generate_candidates(&dataset.column_values(0), &CandidateConfig::default());
        println!(
            "=== {} — {} candidate replacements, first {} groups ===",
            kind.name(),
            candidates.len(),
            k
        );

        // OneShot: vanilla upfront grouping, no early termination.
        let start = Instant::now();
        let oneshot =
            StructuredGrouper::one_shot_all(&candidates.replacements, GroupingConfig::one_shot());
        let oneshot_upfront = start.elapsed();
        println!(
            "OneShot      upfront cost: {:>10.3?} ({} groups)",
            oneshot_upfront,
            oneshot.len()
        );

        // EarlyTerm: upfront grouping with the Section 5.2 optimizations.
        let start = Instant::now();
        let earlyterm =
            StructuredGrouper::one_shot_all(&candidates.replacements, GroupingConfig::default());
        let earlyterm_upfront = start.elapsed();
        println!(
            "EarlyTerm    upfront cost: {:>10.3?} ({} groups)",
            earlyterm_upfront,
            earlyterm.len()
        );

        // Incremental: time to the first group, and per-invocation times.
        let start = Instant::now();
        let mut grouper =
            StructuredGrouper::new(&candidates.replacements, GroupingConfig::default());
        let mut produced = 0usize;
        let mut first_group_time = None;
        for i in 0..k {
            if grouper.next_group().is_none() {
                break;
            }
            produced += 1;
            if i == 0 {
                first_group_time = Some(start.elapsed());
            }
        }
        let incremental_total = start.elapsed();
        println!(
            "Incremental  first group:  {:>10.3?}   first {} groups: {:>10.3?}",
            first_group_time.unwrap_or_default(),
            produced,
            incremental_total
        );
        let speedup = oneshot_upfront.as_secs_f64()
            / first_group_time
                .unwrap_or(incremental_total)
                .as_secs_f64()
                .max(1e-9);
        println!(
            "=> upfront-cost ratio OneShot / Incremental-first-group: {speedup:.0}x (EarlyTerm / OneShot: {:.2}x faster)\n",
            oneshot_upfront.as_secs_f64() / earlyterm_upfront.as_secs_f64().max(1e-9)
        );
    }
}

/// The threads axis of Figure 9: the two sharded stages — candidate
/// generation and upfront grouping — at 1, 2 and 4 worker threads on the
/// largest synthetic workload. Output is bit-identical across rows (asserted
/// below); only the wall-clock time changes, and the attainable speedup is
/// bounded by the machine's available cores.
fn threads_axis() {
    let dataset = PaperDataset::JournalTitle.generate(&GeneratorConfig {
        num_clusters: 250,
        seed: 3,
        num_sources: 6,
    });
    let values = dataset.column_values(0);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("=== threads axis — JournalTitle, {cores} core(s) available ===");
    println!("threads | candidate gen | grouping (EarlyTerm upfront) | total | speedup vs 1");
    let mut baseline: Option<Duration> = None;
    let mut reference: Option<(ec_replace::CandidateSet, Vec<ec_grouping::Group>)> = None;
    let mut gen_series = Vec::new();
    let mut group_series = Vec::new();
    let mut total_series = Vec::new();
    for threads in [1usize, 2, 4] {
        let start = Instant::now();
        let candidates = generate_candidates(
            &values,
            &CandidateConfig {
                parallelism: Parallelism::fixed(threads),
                ..CandidateConfig::default()
            },
        );
        let gen_time = start.elapsed();
        let start = Instant::now();
        let groups = StructuredGrouper::one_shot_all(
            &candidates.replacements,
            GroupingConfig::with_threads(threads),
        );
        let group_time = start.elapsed();
        let total = gen_time + group_time;
        let baseline = *baseline.get_or_insert(total);
        match &reference {
            None => reference = Some((candidates, groups)),
            Some((ref_candidates, ref_groups)) => {
                assert_eq!(
                    ref_candidates, &candidates,
                    "sharded candidate generation must be deterministic across thread counts"
                );
                assert_eq!(
                    ref_groups, &groups,
                    "sharded grouping must be deterministic across thread counts"
                );
            }
        }
        println!(
            "{threads:>7} | {gen_time:>13.3?} | {group_time:>28.3?} | {total:>5.3?} | {:>10.2}x",
            baseline.as_secs_f64() / total.as_secs_f64().max(1e-9)
        );
        gen_series.push((threads as f64, gen_time.as_secs_f64()));
        group_series.push((threads as f64, group_time.as_secs_f64()));
        total_series.push((threads as f64, total.as_secs_f64()));
    }
    println!(
        "(speedup saturates at the machine's core count; ≥1.5x at 4 threads expects ≥4 cores)"
    );
    let figure = Figure::new(
        "Figure 9 — threads axis (JournalTitle)",
        "threads",
        "seconds",
    )
    .with_series(Series::new("candidate generation", gen_series))
    .with_series(Series::new("grouping (EarlyTerm upfront)", group_series))
    .with_series(Series::new("total", total_series));
    export_figure_csv("fig9_threads_axis", &figure);
}

/// Lookalike variants of one long title, differing only in a trailing
/// two-digit number — the shape a sorted-neighborhood false-merge produces.
/// Every pair shares the same structure signature, so *all* candidates land
/// in one partition and the first pivot search faces hundreds of
/// near-identical graphs with long shared inverted lists: the single
/// expensive search nothing but intra-search sharding can speed up.
fn mega_values() -> Vec<String> {
    (10..22)
        .map(|i| format!("International Journal of Distributed Data Systems Volume {i}"))
        .collect()
}

/// The single-mega-group axis of Figure 9: one huge cluster of variant
/// spellings — the worst-case column shape, where the graphs-to-search axis
/// offers no parallelism (the incremental ramp's early batches search one
/// graph at a time) and only intra-search sharding can help. Measures the
/// time to the *first* group (the `ec serve` latency proxy) at 1, 2 and 4
/// threads, asserts the group is bit-identical across rows, and exports
/// `fig9_mega_group.csv`. Before the frontier engine this axis showed ~1x at
/// every thread count.
fn mega_group_axis() {
    let values = mega_values();
    let candidates = generate_candidates(
        std::slice::from_ref(&values),
        &CandidateConfig {
            parallelism: Parallelism::SEQUENTIAL,
            ..CandidateConfig::default()
        },
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "=== single-mega-group axis — one cluster, {} variants, {} candidate replacements, {cores} core(s) available ===",
        values.len(),
        candidates.len()
    );
    println!("threads | first group | speedup vs 1");
    let mut baseline: Option<Duration> = None;
    let mut reference: Option<ec_grouping::Group> = None;
    let mut series = Vec::new();
    for threads in [1usize, 2, 4] {
        let start = Instant::now();
        let mut grouper = StructuredGrouper::new(
            &candidates.replacements,
            GroupingConfig::with_threads(threads),
        );
        let first = grouper
            .next_group()
            .expect("the mega cluster has at least one group");
        let first_time = start.elapsed();
        match &reference {
            None => reference = Some(first),
            Some(reference) => assert_eq!(
                reference, &first,
                "the mega group must be bit-identical at every thread count"
            ),
        }
        let baseline = *baseline.get_or_insert(first_time);
        println!(
            "{threads:>7} | {first_time:>11.3?} | {:>11.2}x",
            baseline.as_secs_f64() / first_time.as_secs_f64().max(1e-9)
        );
        series.push((threads as f64, first_time.as_secs_f64()));
    }
    println!(
        "(speedup saturates at the machine's core count; >1.5x at 4 threads expects >=4 cores)"
    );
    let figure = Figure::new(
        "Figure 9 — single-mega-group axis (time to first group)",
        "threads",
        "seconds",
    )
    .with_series(Series::new("first group", series));
    export_figure_csv("fig9_mega_group", &figure);
}
