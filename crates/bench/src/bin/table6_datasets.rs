//! Table 6: dataset details (cluster sizes, distinct value pairs, variant and
//! conflict pair fractions) for the three generated datasets, printed next to
//! the paper's reported numbers. With `EC_BENCH_EXPORT_DIR` set, the table is
//! also exported as CSV (for the CI artifact) via `ec-report`.

use ec_bench::export_table_csv;
use ec_data::PaperDataset;
use ec_report::table::fmt_f64;
use ec_report::TextTable;

fn main() {
    println!("Table 6 — dataset details (generated datasets vs. paper)");
    let mut table = TextTable::new([
        "dataset",
        "clusters",
        "records",
        "cluster size avg/min/max",
        "distinct pairs",
        "variant %",
        "conflict %",
    ]);
    let paper = [
        ("AuthorList (paper)", 26.9, 51_538, 26.5, 73.5),
        ("Address (paper)", 5.8, 80_451, 18.0, 82.0),
        ("JournalTitle (paper)", 1.8, 81_350, 74.0, 26.0),
    ];
    for (kind, (name, p_avg, p_pairs, p_var, p_conf)) in PaperDataset::ALL.into_iter().zip(paper) {
        let dataset = kind.generate(&kind.default_config());
        let s = dataset.stats(0);
        table.push_row([
            kind.name().to_string(),
            s.num_clusters.to_string(),
            s.num_records.to_string(),
            format!(
                "{}/{}/{}",
                fmt_f64(s.avg_cluster_size, 1),
                s.min_cluster_size,
                s.max_cluster_size
            ),
            s.distinct_value_pairs.to_string(),
            format!("{}%", fmt_f64(100.0 * s.variant_pair_fraction, 1)),
            format!("{}%", fmt_f64(100.0 * s.conflict_pair_fraction, 1)),
        ]);
        table.push_row([
            name.to_string(),
            "-".to_string(),
            "-".to_string(),
            format!("{}/-/-", fmt_f64(p_avg, 1)),
            p_pairs.to_string(),
            format!("{}%", fmt_f64(p_var, 1)),
            format!("{}%", fmt_f64(p_conf, 1)),
        ]);
    }
    print!("{}", table.to_plain_text());
    export_table_csv("table6_datasets", &table);
}
