//! Table 6: dataset details (cluster sizes, distinct value pairs, variant and
//! conflict pair fractions) for the three generated datasets, printed next to
//! the paper's reported numbers.

use ec_data::PaperDataset;

fn main() {
    println!("Table 6 — dataset details (generated datasets vs. paper)");
    println!(
        "{:<14} {:>9} {:>9} {:>22} {:>16} {:>12} {:>12}",
        "dataset",
        "clusters",
        "records",
        "cluster size avg/min/max",
        "distinct pairs",
        "variant %",
        "conflict %"
    );
    let paper = [
        ("AuthorList", 26.9, 51_538, 26.5, 73.5),
        ("Address", 5.8, 80_451, 18.0, 82.0),
        ("JournalTitle", 1.8, 81_350, 74.0, 26.0),
    ];
    for (kind, (name, p_avg, p_pairs, p_var, p_conf)) in PaperDataset::ALL.into_iter().zip(paper) {
        let dataset = kind.generate(&kind.default_config());
        let s = dataset.stats(0);
        println!(
            "{:<14} {:>9} {:>9} {:>14.1}/{}/{} {:>16} {:>11.1}% {:>11.1}%",
            kind.name(),
            s.num_clusters,
            s.num_records,
            s.avg_cluster_size,
            s.min_cluster_size,
            s.max_cluster_size,
            s.distinct_value_pairs,
            100.0 * s.variant_pair_fraction,
            100.0 * s.conflict_pair_fraction,
        );
        println!(
            "{:<14} {:>9} {:>9} {:>14.1}/-/- {:>16} {:>11.1}% {:>11.1}%   (paper)",
            format!("  {name}"),
            "-",
            "-",
            p_avg,
            p_pairs,
            p_var,
            p_conf
        );
    }
}
