//! Figures 6, 7 and 8: precision, recall and MCC of standardizing variant
//! values as a function of the number of groups confirmed, for the paper's
//! `Group` method, the `Single` baseline and the Trifacta-style wrangler.

use ec_bench::{
    checkpoints, evaluation_sample, group_method_series, print_series, single_method_series,
    trifacta_point,
};
use ec_data::PaperDataset;
use ec_grouping::GroupingConfig;

fn main() {
    for kind in PaperDataset::ALL {
        let dataset = kind.generate(&kind.default_config());
        let budget = kind.paper_budget();
        let sample = evaluation_sample(&dataset, 1000, 100 + budget as u64);
        println!(
            "=== {} (budget up to {} confirmed groups, {} sampled pairs) ===",
            kind.name(),
            budget,
            sample.len()
        );
        let cps = checkpoints(budget);
        let group = group_method_series(&dataset, GroupingConfig::default(), &cps, &sample, 7);
        print_series("Group", &group);
        let single = single_method_series(&dataset, &cps, &sample, 7);
        print_series("Single", &single);
        let trifacta = trifacta_point(&dataset, kind, &sample);
        println!(
            "{:<10} (global)     precision={:.3} recall={:.3} mcc={:.3}",
            "Trifacta", trifacta.precision, trifacta.recall, trifacta.mcc
        );
        println!();
    }
    println!(
        "paper reference points: Address @100 groups -> Group recall ≈ 0.75, precision ≈ 0.995;"
    );
    println!("JournalTitle @100 groups -> recall Group ≈ 0.66, Trifacta ≈ 0.38, Single ≈ 0.12.");
}
