//! Figures 6, 7 and 8: precision, recall and MCC of standardizing variant
//! values as a function of the number of groups confirmed, for the paper's
//! `Group` method, the `Single` baseline and the Trifacta-style wrangler.
//!
//! With `EC_BENCH_EXPORT_DIR` set, each dataset's curves are also exported
//! as `fig6_7_8_<dataset>.csv` (one series per method × metric).

use ec_bench::{
    checkpoints, evaluation_sample, export_figure_csv, group_method_series, print_series,
    single_method_series, trifacta_point, EffectivenessPoint,
};
use ec_data::PaperDataset;
use ec_grouping::GroupingConfig;
use ec_report::{Figure, Series};

/// The three metric curves of one method, as export series.
fn metric_series(method: &str, points: &[EffectivenessPoint]) -> Vec<Series> {
    let curve = |pick: fn(&EffectivenessPoint) -> f64| -> Vec<(f64, f64)> {
        points.iter().map(|p| (p.budget as f64, pick(p))).collect()
    };
    vec![
        Series::new(format!("{method} precision"), curve(|p| p.precision)),
        Series::new(format!("{method} recall"), curve(|p| p.recall)),
        Series::new(format!("{method} mcc"), curve(|p| p.mcc)),
    ]
}

fn main() {
    for kind in PaperDataset::ALL {
        let dataset = kind.generate(&kind.default_config());
        let budget = kind.paper_budget();
        let sample = evaluation_sample(&dataset, 1000, 100 + budget as u64);
        println!(
            "=== {} (budget up to {} confirmed groups, {} sampled pairs) ===",
            kind.name(),
            budget,
            sample.len()
        );
        let cps = checkpoints(budget);
        let group = group_method_series(&dataset, GroupingConfig::default(), &cps, &sample, 7);
        print_series("Group", &group);
        let single = single_method_series(&dataset, &cps, &sample, 7);
        print_series("Single", &single);
        let trifacta = trifacta_point(&dataset, kind, &sample);
        println!(
            "{:<10} (global)     precision={:.3} recall={:.3} mcc={:.3}",
            "Trifacta", trifacta.precision, trifacta.recall, trifacta.mcc
        );
        println!();
        let mut figure = Figure::new(
            format!("Figures 6-8 — {}", kind.name()),
            "confirmed groups",
            "metric",
        );
        for series in metric_series("Group", &group)
            .into_iter()
            .chain(metric_series("Single", &single))
            .chain(metric_series("Trifacta (global)", &[trifacta]))
        {
            figure = figure.with_series(series);
        }
        export_figure_csv(
            &format!("fig6_7_8_{}", kind.name().to_ascii_lowercase()),
            &figure,
        );
    }
    println!(
        "paper reference points: Address @100 groups -> Group recall ≈ 0.75, precision ≈ 0.995;"
    );
    println!("JournalTitle @100 groups -> recall Group ≈ 0.66, Trifacta ≈ 0.38, Single ≈ 0.12.");
}
