//! Figure 10: recall of standardizing variant values with and without the
//! affix string functions (Appendix D / F).

use ec_bench::{checkpoints, evaluation_sample, group_method_series, print_series};
use ec_data::PaperDataset;
use ec_grouping::GroupingConfig;

fn main() {
    for kind in PaperDataset::ALL {
        let dataset = kind.generate(&kind.default_config());
        let budget = kind.paper_budget();
        let sample = evaluation_sample(&dataset, 1000, 500 + budget as u64);
        let cps = checkpoints(budget);
        println!("=== {} ===", kind.name());
        let affix = group_method_series(&dataset, GroupingConfig::default(), &cps, &sample, 7);
        print_series("Affix", &affix);
        let noaffix =
            group_method_series(&dataset, GroupingConfig::without_affix(), &cps, &sample, 7);
        print_series("NoAffix", &noaffix);
        let last_affix = affix.last().unwrap();
        let last_noaffix = noaffix.last().unwrap();
        println!(
            "=> final recall: Affix {:.3} vs NoAffix {:.3} (paper: Affix always >= NoAffix)\n",
            last_affix.recall, last_noaffix.recall
        );
    }
}
