//! Figure 10: recall of standardizing variant values with and without the
//! affix string functions (Appendix D / F).
//!
//! With `EC_BENCH_EXPORT_DIR` set, each dataset's recall curves are also
//! exported as `fig10_affix_<dataset>.csv`.

use ec_bench::{
    checkpoints, evaluation_sample, export_figure_csv, group_method_series, print_series,
    EffectivenessPoint,
};
use ec_data::PaperDataset;
use ec_grouping::GroupingConfig;
use ec_report::{Figure, Series};

/// The recall curve of one variant, as an export series.
fn recall_series(name: &str, points: &[EffectivenessPoint]) -> Series {
    Series::new(
        name,
        points.iter().map(|p| (p.budget as f64, p.recall)).collect(),
    )
}

fn main() {
    for kind in PaperDataset::ALL {
        let dataset = kind.generate(&kind.default_config());
        let budget = kind.paper_budget();
        let sample = evaluation_sample(&dataset, 1000, 500 + budget as u64);
        let cps = checkpoints(budget);
        println!("=== {} ===", kind.name());
        let affix = group_method_series(&dataset, GroupingConfig::default(), &cps, &sample, 7);
        print_series("Affix", &affix);
        let noaffix =
            group_method_series(&dataset, GroupingConfig::without_affix(), &cps, &sample, 7);
        print_series("NoAffix", &noaffix);
        let last_affix = affix.last().unwrap();
        let last_noaffix = noaffix.last().unwrap();
        println!(
            "=> final recall: Affix {:.3} vs NoAffix {:.3} (paper: Affix always >= NoAffix)\n",
            last_affix.recall, last_noaffix.recall
        );
        let figure = Figure::new(
            format!("Figure 10 — {}", kind.name()),
            "confirmed groups",
            "recall",
        )
        .with_series(recall_series("Affix", &affix))
        .with_series(recall_series("NoAffix", &noaffix));
        export_figure_csv(
            &format!("fig10_affix_{}", kind.name().to_ascii_lowercase()),
            &figure,
        );
    }
}
