//! `serve_load`: the serving-throughput benchmark that anchors the scale-out
//! perf trajectory.
//!
//! The harness spawns real `ec serve` *child processes* (each owns its own
//! worker pool — an in-process comparison would let the topologies share one
//! pool and lie about scaling), preloads every backend with the same program
//! library, then drives `POST /apply` through many concurrent keep-alive
//! connections against two topologies:
//!
//! * **single** — clients talk straight to one backend;
//! * **routed-2** — clients talk to an `ec serve --route` front-end sharding
//!   across two backends.
//!
//! Each client thread holds one keep-alive connection and issues its
//! requests back to back, so the measured latency includes the queueing an
//! online consolidation service actually exhibits under connection fan-in.
//! Around each topology's run the harness scrapes `GET /metrics` at the
//! address the load is driven at and embeds the counter movement (requests,
//! pool, library fast-path, router lease/replication series) per topology.
//! Results print as a table and export as `BENCH_serve_load.json`
//! (schema `serve_load/v1`) to `EC_BENCH_EXPORT_DIR` (or the current
//! directory), where CI archives them; successive PRs extend the trajectory
//! by comparing these files.
//!
//! Usage: `serve_load [--connections N] [--requests N] [--records N]`
//! (defaults 1000 connections × 5 requests over a 24-record body).

use ec_bench::{export_artifact, metrics_delta_json, scrape_metrics};
use ec_core::{ApprovedGroup, Group, ProgramLibrary};
use ec_graph::Replacement;
use ec_replace::Direction;
use ec_report::TextTable;
use ec_serve::http::ClientConn;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct Options {
    connections: usize,
    requests: usize,
    records: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        connections: 1000,
        requests: 5,
        records: 24,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> Result<usize, String> {
            args.next()
                .ok_or_else(|| format!("--{name} expects a value"))?
                .parse()
                .map_err(|_| format!("--{name} expects an integer"))
        };
        match flag.as_str() {
            "--connections" => options.connections = value("connections")?.max(1),
            "--requests" => options.requests = value("requests")?.max(1),
            "--records" => options.records = value("records")?.max(1),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(options)
}

/// The `ec` binary, expected next to this one in the target directory.
fn ec_binary() -> PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    let dir = exe.parent().expect("target dir");
    let ec = dir.join("ec");
    if !ec.exists() {
        eprintln!(
            "serve_load: {} not found — build it first (cargo build --release -p ec-cli)",
            ec.display()
        );
        std::process::exit(2);
    }
    ec
}

/// A spawned `ec serve` (or router) child; shut down and killed on drop so
/// a panicking benchmark never leaks processes.
struct ServeChild {
    process: Child,
    addr: SocketAddr,
}

impl ServeChild {
    fn spawn(ec: &PathBuf, args: &[String]) -> ServeChild {
        let mut process = Command::new(ec)
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn ec serve");
        // The serve command prints its bound address on the first stdout
        // line (and flushes it), so the ephemeral port is parseable here.
        let stdout = process.stdout.take().expect("child stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read serve banner");
        let addr = line
            .split_whitespace()
            .find_map(|token| token.parse::<SocketAddr>().ok())
            .unwrap_or_else(|| panic!("no listen address in banner: {line:?}"));
        let child = ServeChild { process, addr };
        child.await_healthy();
        child
    }

    fn await_healthy(&self) {
        for _ in 0..200 {
            if let Ok(mut conn) = ClientConn::connect(self.addr, Some(Duration::from_millis(250))) {
                let _ = conn.set_read_timeout(Some(Duration::from_secs(2)));
                if let Ok(response) = conn.request("GET", "/healthz", b"", false) {
                    if response.status == 200 {
                        return;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        panic!("{} never became healthy", self.addr);
    }
}

impl Drop for ServeChild {
    fn drop(&mut self) {
        if let Ok(mut conn) = ClientConn::connect(self.addr, Some(Duration::from_millis(250))) {
            let _ = conn.set_read_timeout(Some(Duration::from_secs(2)));
            let _ = conn.request("POST", "/shutdown", b"", false);
        }
        let _ = self.process.kill();
        let _ = self.process.wait();
    }
}

/// A program library covering the workload's columns, identical on every
/// backend (written once as a snapshot file the children load at startup).
fn workload_library() -> ProgramLibrary {
    let mut library = ProgramLibrary::new();
    let mut learn = |column: &str, pairs: &[(&str, &str)]| {
        let rewrites = pairs
            .iter()
            .map(|(from, to)| Replacement::new(*from, *to))
            .collect();
        library.record(
            column,
            &ApprovedGroup {
                group: Group::new(None, rewrites),
                direction: Direction::Forward,
            },
        );
    };
    learn(
        "Name",
        &[("Lee, Mary", "Mary Lee"), ("Smith, James", "James Smith")],
    );
    learn("Street", &[("401 E. Wilson St.", "401 East Wilson Street")]);
    learn("City", &[("Madison WI", "Madison, WI")]);
    library
}

/// The flat-CSV `/apply` body: `records` rows cycling through variant and
/// already-canonical values, so the library both rewrites and passes cells
/// through — the realistic mix.
fn workload_body(records: usize) -> Vec<u8> {
    let variants = [
        ("\"Lee, Mary\"", "401 E. Wilson St.", "Madison WI"),
        ("Mary Lee", "401 East Wilson Street", "\"Madison, WI\""),
        ("\"Smith, James\"", "401 E. Wilson St.", "\"Madison, WI\""),
    ];
    let mut body = String::from("source,Name,Street,City\n");
    for i in 0..records {
        let (name, street, city) = variants[i % variants.len()];
        body.push_str(&format!("{},{name},\"{street}\",{city}\n", i % 3));
    }
    body.into_bytes()
}

struct LoadResult {
    latencies_us: Vec<u64>,
    errors: usize,
    wall: Duration,
}

/// Drives `connections × requests` keep-alive `POST /apply` calls at `addr`,
/// one thread per connection, returning every successful request's latency.
fn run_load(addr: SocketAddr, connections: usize, requests: usize, body: &[u8]) -> LoadResult {
    let latencies = Mutex::new(Vec::with_capacity(connections * requests));
    let errors = Mutex::new(0usize);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..connections {
            scope.spawn(|| {
                // Retry the connect: thousands of simultaneous dials can
                // outrun the accept backlog.
                let mut conn = None;
                for _ in 0..400 {
                    match ClientConn::connect(addr, Some(Duration::from_secs(1))) {
                        Ok(c) => {
                            conn = Some(c);
                            break;
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
                let Some(mut conn) = conn else {
                    *errors.lock().unwrap() += requests;
                    return;
                };
                let _ = conn.set_read_timeout(Some(Duration::from_secs(120)));
                let mut local = Vec::with_capacity(requests);
                for r in 0..requests {
                    let keep_alive = r + 1 < requests;
                    let sent = Instant::now();
                    match conn.request("POST", "/apply", body, keep_alive) {
                        Ok(response) if response.status == 200 => {
                            local.push(sent.elapsed().as_micros() as u64);
                        }
                        _ => {
                            *errors.lock().unwrap() += requests - r;
                            break;
                        }
                    }
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    LoadResult {
        latencies_us: latencies.into_inner().unwrap(),
        errors: errors.into_inner().unwrap(),
        wall: started.elapsed(),
    }
}

struct Summary {
    name: &'static str,
    backends: usize,
    ok: usize,
    errors: usize,
    wall: Duration,
    throughput: f64,
    p50: u64,
    p90: u64,
    p99: u64,
    max: u64,
    mean: u64,
    /// `/metrics` movement across the run at the address the load was driven
    /// at, as a ready-to-embed JSON object (`{}` when a scrape failed).
    metrics: String,
}

fn summarize(name: &'static str, backends: usize, mut result: LoadResult) -> Summary {
    result.latencies_us.sort_unstable();
    let ok = result.latencies_us.len();
    let percentile = |p: f64| -> u64 {
        if ok == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * ok as f64).ceil() as usize;
        result.latencies_us[rank.clamp(1, ok) - 1]
    };
    let sum: u64 = result.latencies_us.iter().sum();
    Summary {
        name,
        backends,
        ok,
        errors: result.errors,
        wall: result.wall,
        throughput: if result.wall.as_secs_f64() > 0.0 {
            ok as f64 / result.wall.as_secs_f64()
        } else {
            0.0
        },
        p50: percentile(50.0),
        p90: percentile(90.0),
        p99: percentile(99.0),
        max: result.latencies_us.last().copied().unwrap_or(0),
        mean: if ok > 0 { sum / ok as u64 } else { 0 },
        metrics: String::from("{}"),
    }
}

/// The registry families worth diffing across a load run: request/latency
/// counters of the scraped process plus its pool, library fast-path, and
/// (for the router) lease/replication/probe series.
const METRIC_PREFIXES: &[&str] = &["ec_http_", "ec_pool_", "ec_library_", "ec_router_"];

/// Drives one topology: scrape `/metrics` at the front address, run the
/// load, scrape again, and record the delta on the summary.
fn run_topology(
    name: &'static str,
    backends: usize,
    addr: SocketAddr,
    options: &Options,
    body: &[u8],
) -> Summary {
    let before = scrape_metrics(addr).unwrap_or_default();
    let result = run_load(addr, options.connections, options.requests, body);
    let after = scrape_metrics(addr).unwrap_or_default();
    let mut summary = summarize(name, backends, result);
    summary.metrics = metrics_delta_json(&before, &after, METRIC_PREFIXES);
    summary
}

fn json_report(options: &Options, summaries: &[Summary]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"serve_load/v1\",\n");
    out.push_str(&format!(
        "  \"connections\": {},\n  \"requests_per_connection\": {},\n  \"records_per_request\": {},\n",
        options.connections, options.requests, options.records
    ));
    out.push_str("  \"topologies\": [\n");
    for (i, s) in summaries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"backends\": {}, \"ok_requests\": {}, \"errors\": {}, \
             \"wall_seconds\": {:.3}, \"throughput_rps\": {:.1}, \
             \"latency_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}, \"mean\": {}}}, \
             \"metrics\": {}}}{}\n",
            s.name,
            s.backends,
            s.ok,
            s.errors,
            s.wall.as_secs_f64(),
            s.throughput,
            s.p50,
            s.p90,
            s.p99,
            s.max,
            s.mean,
            s.metrics,
            if i + 1 < summaries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("serve_load: {message}");
            std::process::exit(2);
        }
    };
    let ec = ec_binary();
    let body = workload_body(options.records);

    // One snapshot file seeds every child with the identical library.
    let snapshot_path =
        std::env::temp_dir().join(format!("serve_load_library_{}.txt", std::process::id()));
    std::fs::write(&snapshot_path, workload_library().to_snapshot())
        .expect("write library snapshot");
    let backend_args = |_: usize| -> Vec<String> {
        vec![
            "serve".to_string(),
            "--addr".to_string(),
            "127.0.0.1:0".to_string(),
            "--library".to_string(),
            snapshot_path.display().to_string(),
        ]
    };

    println!(
        "serve_load: {} connections x {} requests, {}-record /apply bodies",
        options.connections, options.requests, options.records
    );

    // Topology 1: clients straight at one backend.
    let single = {
        let backend = ServeChild::spawn(&ec, &backend_args(0));
        println!("single: backend at {}", backend.addr);
        run_topology("single", 1, backend.addr, &options, &body)
    };

    // Topology 2: clients at a router sharding across two backends.
    let routed = {
        let backend_a = ServeChild::spawn(&ec, &backend_args(0));
        let backend_b = ServeChild::spawn(&ec, &backend_args(1));
        let router = ServeChild::spawn(
            &ec,
            &[
                "serve".to_string(),
                "--addr".to_string(),
                "127.0.0.1:0".to_string(),
                "--route".to_string(),
                format!("{},{}", backend_a.addr, backend_b.addr),
            ],
        );
        println!(
            "routed-2: router at {} over {} and {}",
            router.addr, backend_a.addr, backend_b.addr
        );
        run_topology("routed-2", 2, router.addr, &options, &body)
    };

    let _ = std::fs::remove_file(&snapshot_path);

    let summaries = [single, routed];
    let mut table = TextTable::new([
        "topology", "backends", "ok", "errors", "wall s", "req/s", "p50 us", "p90 us", "p99 us",
        "max us", "mean us",
    ]);
    for s in &summaries {
        table.push_row([
            s.name.to_string(),
            s.backends.to_string(),
            s.ok.to_string(),
            s.errors.to_string(),
            format!("{:.2}", s.wall.as_secs_f64()),
            format!("{:.1}", s.throughput),
            s.p50.to_string(),
            s.p90.to_string(),
            s.p99.to_string(),
            s.max.to_string(),
            s.mean.to_string(),
        ]);
    }
    println!("{}", table.to_plain_text());
    export_artifact("BENCH_serve_load.json", &json_report(&options, &summaries));

    let failed = summaries.iter().any(|s| s.ok == 0);
    if failed {
        eprintln!("serve_load: a topology served zero requests");
        std::process::exit(1);
    }
}
