//! Table 4: sample replacement groups learned from the AuthorList dataset,
//! shown with their shared transformation programs (qualitative).

use ec_data::{GeneratorConfig, PaperDataset};
use ec_grouping::{GroupingConfig, StructuredGrouper};
use ec_replace::{generate_candidates, CandidateConfig};

fn main() {
    let dataset = PaperDataset::AuthorList.generate(&GeneratorConfig {
        num_clusters: 60,
        seed: 4,
        num_sources: 8,
    });
    let candidates = generate_candidates(&dataset.column_values(0), &CandidateConfig::default());
    let mut grouper = StructuredGrouper::new(&candidates.replacements, GroupingConfig::default());
    println!("Table 4 — sample groups generated from the AuthorList dataset\n");
    for rank in 1..=8 {
        let group = match grouper.next_group() {
            Some(g) => g,
            None => break,
        };
        println!("Group {rank} ({} member pairs)", group.size());
        if let Some(p) = group.program() {
            println!("  shared transformation: {p}");
        }
        for member in group.members().iter().take(5) {
            println!("  {member}");
        }
        println!();
    }
}
