//! Table 8: precision of majority-consensus golden records before and after
//! standardizing variant values with the paper's method.

use ec_bench::table8_point;
use ec_data::PaperDataset;

fn main() {
    println!("Table 8 — majority-consensus golden-record precision");
    println!(
        "{:<14} {:>10} {:>10} {:>22}",
        "dataset", "before", "after", "paper (before -> after)"
    );
    let paper = [(0.51, 0.65), (0.32, 0.47), (0.335, 0.84)];
    for (kind, (p_before, p_after)) in PaperDataset::ALL.into_iter().zip(paper) {
        let dataset = kind.generate(&kind.default_config());
        let budget = kind.paper_budget();
        let (before, after) = table8_point(&dataset, budget, 7);
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>14.3} -> {:.3}",
            kind.name(),
            before,
            after,
            p_before,
            p_after
        );
    }
}
