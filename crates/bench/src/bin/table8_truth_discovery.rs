//! Table 8: precision of majority-consensus golden records before and after
//! standardizing variant values with the paper's method. With
//! `EC_BENCH_EXPORT_DIR` set, the table is also exported as CSV via
//! `ec-report`.
//!
//! The full run (paper-scale datasets and budgets) takes ~12 minutes; pass
//! `--sample F` (a fraction, e.g. `--sample 0.1`) or set `EC_TEST_SCALE`
//! (the same multiplier the root test suites honor) to shrink the cluster
//! counts and review budgets proportionally — CI runs a small-fraction smoke
//! of this bin instead of skipping it entirely. Scaled runs are labelled in
//! the printed header and in the exported CSV's dataset column.

use ec_bench::{export_table_csv, table8_point};
use ec_data::PaperDataset;
use ec_report::table::fmt_f64;
use ec_report::TextTable;

/// The workload multiplier: `--sample F` wins, then `EC_TEST_SCALE`, else 1.
fn scale_factor() -> f64 {
    let mut args = std::env::args().skip(1);
    let mut sample: Option<f64> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--sample" => {
                sample = args
                    .next()
                    .and_then(|v| v.trim().parse().ok())
                    .filter(|f: &f64| f.is_finite() && *f > 0.0);
                if sample.is_none() {
                    eprintln!(
                        "table8_truth_discovery: --sample expects a positive fraction, e.g. 0.1"
                    );
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("table8_truth_discovery: unknown argument '{other}' (only --sample F)");
                std::process::exit(2);
            }
        }
    }
    sample
        .or_else(|| {
            std::env::var("EC_TEST_SCALE")
                .ok()
                .and_then(|v| v.trim().parse().ok())
        })
        .filter(|f: &f64| f.is_finite() && *f > 0.0)
        .unwrap_or(1.0)
}

fn main() {
    let factor = scale_factor();
    if (factor - 1.0).abs() > f64::EPSILON {
        println!("Table 8 — majority-consensus golden-record precision (scale {factor})");
        println!("(paper numbers are for the full-scale run; treat this as a smoke test)");
    } else {
        println!("Table 8 — majority-consensus golden-record precision");
    }
    let mut table = TextTable::new(["dataset", "before", "after", "paper before", "paper after"]);
    let paper = [(0.51, 0.65), (0.32, 0.47), (0.335, 0.84)];
    for (kind, (p_before, p_after)) in PaperDataset::ALL.into_iter().zip(paper) {
        let mut config = kind.default_config();
        config.num_clusters = ((config.num_clusters as f64 * factor).round() as usize).max(2);
        let dataset = kind.generate(&config);
        let budget = ((kind.paper_budget() as f64 * factor).ceil() as usize).max(5);
        let (before, after) = table8_point(&dataset, budget, 7);
        let label = if (factor - 1.0).abs() > f64::EPSILON {
            format!("{} (x{factor})", kind.name())
        } else {
            kind.name().to_string()
        };
        table.push_row([
            label,
            fmt_f64(before, 3),
            fmt_f64(after, 3),
            fmt_f64(p_before, 3),
            fmt_f64(p_after, 3),
        ]);
    }
    print!("{}", table.to_plain_text());
    export_table_csv("table8_truth_discovery", &table);
}
