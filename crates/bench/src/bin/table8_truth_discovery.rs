//! Table 8: precision of majority-consensus golden records before and after
//! standardizing variant values with the paper's method. With
//! `EC_BENCH_EXPORT_DIR` set, the table is also exported as CSV via
//! `ec-report`. (CI archives only the fast `table6_datasets` export; this
//! bin runs full standardization and takes minutes, so run it locally.)

use ec_bench::{export_table_csv, table8_point};
use ec_data::PaperDataset;
use ec_report::table::fmt_f64;
use ec_report::TextTable;

fn main() {
    println!("Table 8 — majority-consensus golden-record precision");
    let mut table = TextTable::new(["dataset", "before", "after", "paper before", "paper after"]);
    let paper = [(0.51, 0.65), (0.32, 0.47), (0.335, 0.84)];
    for (kind, (p_before, p_after)) in PaperDataset::ALL.into_iter().zip(paper) {
        let dataset = kind.generate(&kind.default_config());
        let budget = kind.paper_budget();
        let (before, after) = table8_point(&dataset, budget, 7);
        table.push_row([
            kind.name().to_string(),
            fmt_f64(before, 3),
            fmt_f64(after, 3),
            fmt_f64(p_before, 3),
            fmt_f64(p_after, 3),
        ]);
    }
    print!("{}", table.to_plain_text());
    export_table_csv("table8_truth_discovery", &table);
}
