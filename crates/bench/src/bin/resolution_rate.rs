//! `resolution_rate`: pair-scoring throughput of the bit-parallel similarity
//! kernels against the frozen textbook references.
//!
//! For every similarity measure × input class (short ASCII, long ASCII past
//! the 64-character single-word Myers limit, multi-byte Unicode) the harness
//! scores the same deterministic set of string pairs twice — once through the
//! rewritten [`ec_resolution::SimilarityMeasure::score`] kernels and once
//! through [`ec_resolution::reference`] — and reports pairs/second for both.
//! Every pair is also byte-compared (`f64::to_bits`): the benchmark *is* a
//! differential test, and any divergence fails the run. A second section
//! resolves a synthetic corpus end-to-end sequentially and sharded, checking
//! that [`ec_resolution::Resolver::match_pairs`] is bit-identical at any
//! thread count while reporting the wall-clock win.
//!
//! Results print as a table and export as `BENCH_resolution.json` (schema
//! `resolution/v1`) to `EC_BENCH_EXPORT_DIR` (or the current directory). The
//! report embeds the `ec-obs` registry movement of the
//! `ec_resolution_*` counters (kernel ASCII/Unicode path split, pairs
//! early-abandoned below threshold).
//!
//! Usage: `resolution_rate [--pairs N] [--threads N]` (defaults: 4000 pairs
//! per cell, 4 threads for the sharded section).

use ec_bench::{export_artifact, metrics_delta_json};
use ec_report::TextTable;
use ec_resolution::{
    reference, Parallelism, RawRecord, Resolver, ResolverConfig, SimilarityMeasure,
};
use std::hint::black_box;
use std::time::{Duration, Instant};

struct Options {
    pairs: usize,
    threads: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        pairs: 4000,
        threads: 4,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> Result<usize, String> {
            args.next()
                .ok_or_else(|| format!("--{name} expects a value"))?
                .parse()
                .map_err(|_| format!("--{name} expects an integer"))
        };
        match flag.as_str() {
            "--pairs" => options.pairs = value("pairs")?.max(1),
            "--threads" => options.threads = value("threads")?.max(1),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(options)
}

/// A tiny deterministic generator (splitmix64) so every run scores the same
/// pairs without pulling in an RNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick<T: Copy>(&mut self, from: &[T]) -> T {
        from[(self.next() % from.len() as u64) as usize]
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo + 1) as u64) as usize
    }
}

/// The three input classes; each stresses a different kernel path.
#[derive(Clone, Copy, PartialEq)]
enum Class {
    /// Entity-like short ASCII fields — the common case, single-word Myers.
    Ascii,
    /// 70–120 character ASCII — the blocked multi-word Myers kernel.
    LongAscii,
    /// Multi-byte code points — the Unicode fallback path.
    Unicode,
}

impl Class {
    fn label(self) -> &'static str {
        match self {
            Class::Ascii => "ascii",
            Class::LongAscii => "long-ascii",
            Class::Unicode => "unicode",
        }
    }

    /// One synthetic string; pairs are drawn from a shared pool so a realistic
    /// share of near-duplicates (trailing edits on the same stem) appears.
    fn synth(self, rng: &mut Rng) -> String {
        const FIRST: [&str; 6] = ["mary", "james", "patricia", "robert", "linda", "michael"];
        const LAST: [&str; 6] = ["lee", "smith", "johnson", "brown", "garcia", "miller"];
        const GREEK: [char; 8] = ['α', 'β', 'γ', 'δ', 'é', 'ü', '中', '文'];
        match self {
            Class::Ascii => {
                format!(
                    "{} {}{} {} st",
                    rng.pick(&FIRST),
                    rng.pick(&LAST),
                    rng.range(0, 99),
                    rng.range(1, 999),
                )
            }
            Class::LongAscii => {
                let mut s = String::new();
                while s.len() < rng.range(70, 120) {
                    s.push_str(rng.pick(&FIRST));
                    s.push(' ');
                    s.push_str(rng.pick(&LAST));
                    s.push_str(&rng.range(0, 9).to_string());
                    s.push(' ');
                }
                s
            }
            Class::Unicode => {
                let len = rng.range(4, 24);
                (0..len)
                    .map(|i| if i % 5 == 4 { ' ' } else { rng.pick(&GREEK) })
                    .collect()
            }
        }
    }
}

/// Deterministic string pairs for one class.
fn synth_pairs(class: Class, n: usize) -> Vec<(String, String)> {
    let mut rng = Rng(0x5eed_0000 + class.label().len() as u64);
    (0..n)
        .map(|_| {
            let a = class.synth(&mut rng);
            // Half the pairs are near-duplicates: the same string with a
            // couple of trailing edits, like real entity spellings.
            let b = if rng.next() % 2 == 0 {
                let mut b = a.clone();
                b.pop();
                b.push(rng.pick(&['x', 'y', 'z', 'é']));
                b
            } else {
                class.synth(&mut rng)
            };
            (a, b)
        })
        .collect()
}

/// Times `f` over all pairs, folding every score into a black-boxed sum so
/// the work cannot be optimized away.
fn time_all(pairs: &[(String, String)], mut f: impl FnMut(&str, &str) -> f64) -> Duration {
    let started = Instant::now();
    let mut sum = 0.0f64;
    for (a, b) in pairs {
        sum += f(a, b);
    }
    black_box(sum);
    started.elapsed()
}

struct KernelPoint {
    measure: &'static str,
    class: &'static str,
    pairs: usize,
    new_rate: f64,
    reference_rate: f64,
    identical: bool,
}

impl KernelPoint {
    fn speedup(&self) -> f64 {
        self.new_rate / self.reference_rate.max(1e-9)
    }
}

/// One benchmark cell: warm both implementations, time both, verify bitwise
/// agreement on every pair.
fn run_kernel(
    measure: SimilarityMeasure,
    label: &'static str,
    class: Class,
    pairs: &[(String, String)],
) -> KernelPoint {
    let identical = pairs
        .iter()
        .all(|(a, b)| measure.score(a, b).to_bits() == reference::score(measure, a, b).to_bits());
    let new_elapsed = time_all(pairs, |a, b| measure.score(a, b));
    let reference_elapsed = time_all(pairs, |a, b| reference::score(measure, a, b));
    let rate = |d: Duration| pairs.len() as f64 / d.as_secs_f64().max(1e-9);
    KernelPoint {
        measure: label,
        class: class.label(),
        pairs: pairs.len(),
        new_rate: rate(new_elapsed),
        reference_rate: rate(reference_elapsed),
        identical,
    }
}

struct ResolvePoint {
    records: usize,
    decisions: usize,
    threads: usize,
    sequential: Duration,
    sharded: Duration,
    identical: bool,
}

/// End-to-end sharding check: `match_pairs` sequentially vs over `threads`
/// worker shards must produce bit-identical decisions.
fn run_resolve(threads: usize) -> ResolvePoint {
    let mut rng = Rng(0xabcd);
    let records: Vec<RawRecord> = (0..600)
        .map(|i| {
            RawRecord::new(
                i % 4,
                [Class::Ascii.synth(&mut rng), Class::Ascii.synth(&mut rng)],
            )
        })
        .collect();
    let config = ResolverConfig::default();
    let sequential_resolver =
        Resolver::new(config.clone()).with_parallelism(Parallelism::SEQUENTIAL);
    let sharded_resolver = Resolver::new(config).with_parallelism(Parallelism::fixed(threads));

    let started = Instant::now();
    let sequential = sequential_resolver.match_pairs(&records);
    let sequential_elapsed = started.elapsed();
    let started = Instant::now();
    let sharded = sharded_resolver.match_pairs(&records);
    let sharded_elapsed = started.elapsed();

    let identical = sequential.len() == sharded.len()
        && sequential.iter().zip(&sharded).all(|(x, y)| {
            (x.a, x.b, x.is_match) == (y.a, y.b, y.is_match)
                && x.score.to_bits() == y.score.to_bits()
        });
    ResolvePoint {
        records: records.len(),
        decisions: sequential.len(),
        threads,
        sequential: sequential_elapsed,
        sharded: sharded_elapsed,
        identical,
    }
}

fn json_report(
    options: &Options,
    kernels: &[KernelPoint],
    resolve: &ResolvePoint,
    metrics_json: &str,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"resolution/v1\",\n");
    out.push_str(&format!("  \"pairs_per_cell\": {},\n", options.pairs));
    out.push_str("  \"kernels\": [\n");
    for (i, p) in kernels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"measure\": \"{}\", \"class\": \"{}\", \"pairs\": {}, \
             \"pairs_per_sec\": {:.0}, \"reference_pairs_per_sec\": {:.0}, \
             \"speedup\": {:.2}, \"bitwise_identical\": {}}}{}\n",
            p.measure,
            p.class,
            p.pairs,
            p.new_rate,
            p.reference_rate,
            p.speedup(),
            p.identical,
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"resolve\": {{\"records\": {}, \"decisions\": {}, \"threads\": {}, \
         \"sequential_ms\": {:.2}, \"sharded_ms\": {:.2}, \"speedup\": {:.2}, \
         \"bitwise_identical\": {}}},\n",
        resolve.records,
        resolve.decisions,
        resolve.threads,
        resolve.sequential.as_secs_f64() * 1e3,
        resolve.sharded.as_secs_f64() * 1e3,
        resolve.sequential.as_secs_f64() / resolve.sharded.as_secs_f64().max(1e-9),
        resolve.identical,
    ));
    out.push_str(&format!("  \"metrics\": {metrics_json}\n"));
    out.push_str("}\n");
    out
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("resolution_rate: {message}");
            std::process::exit(2);
        }
    };
    println!(
        "resolution_rate: {} pairs per cell, sharded resolve on {} threads",
        options.pairs, options.threads
    );

    let measures: [(SimilarityMeasure, &'static str); 6] = [
        (SimilarityMeasure::Levenshtein, "levenshtein"),
        (SimilarityMeasure::DamerauLevenshtein, "damerau"),
        (SimilarityMeasure::Jaro, "jaro"),
        (SimilarityMeasure::JaroWinkler, "jaro-winkler"),
        (SimilarityMeasure::Jaccard, "jaccard"),
        (SimilarityMeasure::QgramCosine(2), "qgram-cosine-2"),
    ];
    let classes = [Class::Ascii, Class::LongAscii, Class::Unicode];

    let obs_before = ec_obs::render();
    let mut kernels = Vec::new();
    for class in classes {
        let pairs = synth_pairs(class, options.pairs);
        for (measure, label) in measures {
            kernels.push(run_kernel(measure, label, class, &pairs));
        }
    }

    // Drive the threshold path too, so the abandoned-pairs counter moves and
    // the exported metrics show the early-abandon rate on a realistic corpus.
    let resolve = run_resolve(options.threads);
    let metrics_json = metrics_delta_json(&obs_before, &ec_obs::render(), &["ec_resolution_"]);

    let mut table = TextTable::new([
        "measure",
        "class",
        "pairs/s",
        "ref pairs/s",
        "speedup",
        "ok",
    ]);
    for p in &kernels {
        table.push_row([
            p.measure.to_string(),
            p.class.to_string(),
            format!("{:.0}", p.new_rate),
            format!("{:.0}", p.reference_rate),
            format!("{:.2}", p.speedup()),
            if p.identical { "bitwise" } else { "DIVERGED" }.to_string(),
        ]);
    }
    println!("{}", table.to_plain_text());
    println!(
        "resolve: {} records, {} decisions, {:.1}ms sequential vs {:.1}ms on {} threads ({})",
        resolve.records,
        resolve.decisions,
        resolve.sequential.as_secs_f64() * 1e3,
        resolve.sharded.as_secs_f64() * 1e3,
        resolve.threads,
        if resolve.identical {
            "bitwise identical"
        } else {
            "DIVERGED"
        }
    );
    export_artifact(
        "BENCH_resolution.json",
        &json_report(&options, &kernels, &resolve, &metrics_json),
    );

    if kernels.iter().any(|p| !p.identical) || !resolve.identical {
        eprintln!("resolution_rate: rewritten kernels diverged from the reference");
        std::process::exit(1);
    }
}
