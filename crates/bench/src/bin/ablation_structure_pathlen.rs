//! Ablation: the effect of structure refinement (Section 7.2) and of the
//! maximum pivot-path length (Appendix E) on grouping time and on the number
//! of groups needed to cover the replacements.

use ec_data::{GeneratorConfig, PaperDataset};
use ec_grouping::{GroupingConfig, StructuredGrouper};
use ec_replace::{generate_candidates, CandidateConfig};
use std::time::Instant;

fn main() {
    let dataset = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: 120,
        seed: 2,
        num_sources: 6,
    });
    let candidates = generate_candidates(&dataset.column_values(0), &CandidateConfig::default());
    println!(
        "Address ablation over {} candidate replacements\n",
        candidates.len()
    );
    println!(
        "{:<34} {:>12} {:>12} {:>14}",
        "configuration", "groups", "largest", "grouping time"
    );
    let run = |label: &str, config: GroupingConfig| {
        let start = Instant::now();
        let groups = StructuredGrouper::new(&candidates.replacements, config).all_groups();
        let elapsed = start.elapsed();
        println!(
            "{:<34} {:>12} {:>12} {:>14.3?}",
            label,
            groups.len(),
            groups.first().map(|g| g.size()).unwrap_or(0),
            elapsed
        );
    };
    run("default (structure, path<=6)", GroupingConfig::default());
    run(
        "no structure refinement",
        GroupingConfig {
            structure_refinement: false,
            ..GroupingConfig::default()
        },
    );
    for len in [3usize, 4, 6, 8] {
        run(
            &format!("max path length = {len}"),
            GroupingConfig {
                max_path_len: len,
                ..GroupingConfig::default()
            },
        );
    }
    run("no affix labels", GroupingConfig::without_affix());
}
