//! # ec-bench — experiment harnesses
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md's
//! per-experiment index and EXPERIMENTS.md for measured results), plus shared
//! helpers used by the binaries and the Criterion micro-benchmarks.
//!
//! All binaries print plain-text tables to stdout and accept no arguments;
//! dataset scale is fixed by each binary so the runs are reproducible.
//! Run them with `--release` — e.g.
//! `cargo run --release -p ec-bench --bin fig6_7_8_effectiveness`.

#![forbid(unsafe_code)]

use ec_baselines::wrangler::RuleSet;
use ec_baselines::{single_groups, wrangler};
use ec_core::{ConsolidationConfig, Oracle, Pipeline, SimulatedOracle, TruthMethod, Verdict};
use ec_data::{Dataset, LabeledPair, PaperDataset};
use ec_grouping::{GroupingConfig, StructuredGrouper};
use ec_metrics::{evaluate_standardization, golden_record_precision, ConfusionCounts};
use ec_replace::{generate_candidates, CandidateConfig, ReplacementEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One point of an effectiveness curve (Figures 6–8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectivenessPoint {
    /// Number of groups confirmed so far.
    pub budget: usize,
    /// Standardization precision at this budget.
    pub precision: f64,
    /// Standardization recall at this budget.
    pub recall: f64,
    /// Standardization MCC at this budget.
    pub mcc: f64,
}

impl EffectivenessPoint {
    fn from_counts(budget: usize, counts: &ConfusionCounts) -> Self {
        EffectivenessPoint {
            budget,
            precision: counts.precision(),
            recall: counts.recall(),
            mcc: counts.mcc(),
        }
    }
}

/// Draws the evaluation sample for a dataset column (the stand-in for the
/// paper's 1000 hand-labelled pairs).
pub fn evaluation_sample(dataset: &Dataset, n: usize, seed: u64) -> Vec<LabeledPair> {
    let mut rng = StdRng::seed_from_u64(seed);
    dataset.sample_labeled_pairs(0, n, &mut rng)
}

/// Runs the paper's `Group` method on column 0, recording metrics at each
/// checkpoint budget (number of groups confirmed by the simulated expert).
pub fn group_method_series(
    dataset: &Dataset,
    grouping: GroupingConfig,
    checkpoints: &[usize],
    sample: &[LabeledPair],
    oracle_seed: u64,
) -> Vec<EffectivenessPoint> {
    let candidates = generate_candidates(&dataset.column_values(0), &CandidateConfig::default());
    let mut grouper = StructuredGrouper::new(&candidates.replacements, grouping);
    let mut engine = ReplacementEngine::new(dataset.column_values(0), &CandidateConfig::default());
    let mut oracle = SimulatedOracle::for_column(dataset, 0, oracle_seed);
    let max_budget = checkpoints.iter().copied().max().unwrap_or(0);
    let mut points = Vec::new();
    if checkpoints.contains(&0) {
        let counts = evaluate_standardization(sample, engine.values());
        points.push(EffectivenessPoint::from_counts(0, &counts));
    }
    for budget in 1..=max_budget {
        if let Some(group) = grouper.next_group() {
            if let Verdict::Approve(direction) = oracle.review(&group) {
                engine.apply_group(group.members(), direction);
            }
        }
        if checkpoints.contains(&budget) {
            let counts = evaluate_standardization(sample, engine.values());
            points.push(EffectivenessPoint::from_counts(budget, &counts));
        }
    }
    points
}

/// Runs the `Single` baseline (one candidate replacement confirmed per step).
pub fn single_method_series(
    dataset: &Dataset,
    checkpoints: &[usize],
    sample: &[LabeledPair],
    oracle_seed: u64,
) -> Vec<EffectivenessPoint> {
    let candidates = generate_candidates(&dataset.column_values(0), &CandidateConfig::default());
    let singles = single_groups(&candidates);
    let mut engine = ReplacementEngine::new(dataset.column_values(0), &CandidateConfig::default());
    let mut oracle = SimulatedOracle::for_column(dataset, 0, oracle_seed);
    let max_budget = checkpoints.iter().copied().max().unwrap_or(0);
    let mut points = Vec::new();
    if checkpoints.contains(&0) {
        let counts = evaluate_standardization(sample, engine.values());
        points.push(EffectivenessPoint::from_counts(0, &counts));
    }
    for budget in 1..=max_budget {
        if let Some(group) = singles.get(budget - 1) {
            if let Verdict::Approve(direction) = oracle.review(group) {
                engine.apply_group(group.members(), direction);
            }
        }
        if checkpoints.contains(&budget) {
            let counts = evaluate_standardization(sample, engine.values());
            points.push(EffectivenessPoint::from_counts(budget, &counts));
        }
    }
    points
}

/// The Trifacta-style wrangler rule set for a dataset.
pub fn wrangler_rules_for(kind: PaperDataset) -> RuleSet {
    match kind {
        PaperDataset::AuthorList => wrangler::rule_sets::author_list(),
        PaperDataset::Address => wrangler::rule_sets::address(),
        PaperDataset::JournalTitle => wrangler::rule_sets::journal_title(),
    }
}

/// Runs the Trifacta-style baseline (budget-independent: the rules are applied
/// globally once).
pub fn trifacta_point(
    dataset: &Dataset,
    kind: PaperDataset,
    sample: &[LabeledPair],
) -> EffectivenessPoint {
    let rules = wrangler_rules_for(kind);
    let (updated, _) = rules.apply_column(&dataset.column_values(0));
    let counts = evaluate_standardization(sample, &updated);
    EffectivenessPoint::from_counts(0, &counts)
}

/// Majority-consensus golden-record precision before/after standardization
/// (Table 8) on column 0.
pub fn table8_point(dataset: &Dataset, budget: usize, oracle_seed: u64) -> (f64, f64) {
    let truth: Vec<String> = dataset
        .clusters
        .iter()
        .map(|c| c.golden[0].clone())
        .collect();
    let pipeline = Pipeline::new(ConsolidationConfig {
        budget,
        ..Default::default()
    });
    let before_goldens = pipeline.discover_golden_records(dataset, TruthMethod::MajorityConsensus);
    let before = golden_record_precision(
        &before_goldens
            .iter()
            .map(|g| g[0].clone())
            .collect::<Vec<_>>(),
        &truth,
    );
    let mut standardized = dataset.clone();
    let mut oracle = SimulatedOracle::for_column(&standardized, 0, oracle_seed);
    pipeline.standardize_column(&mut standardized, 0, &mut oracle);
    let after_goldens =
        pipeline.discover_golden_records(&standardized, TruthMethod::MajorityConsensus);
    let after = golden_record_precision(
        &after_goldens
            .iter()
            .map(|g| g[0].clone())
            .collect::<Vec<_>>(),
        &truth,
    );
    (before, after)
}

/// Standard checkpoint budgets used by the figure harnesses.
pub fn checkpoints(max: usize) -> Vec<usize> {
    let mut out = vec![0, 1, 2, 5, 10, 20, 30, 40, 50, 75, 100, 150, 200];
    out.retain(|&b| b <= max);
    if !out.contains(&max) {
        out.push(max);
    }
    out
}

/// Pretty-prints one effectiveness series.
pub fn print_series(method: &str, points: &[EffectivenessPoint]) {
    for p in points {
        println!(
            "{:<10} budget={:<4} precision={:.3} recall={:.3} mcc={:.3}",
            method, p.budget, p.precision, p.recall, p.mcc
        );
    }
}

/// Where the bench binaries export machine-readable copies of their tables:
/// the `EC_BENCH_EXPORT_DIR` environment variable, or `None` (no export) when
/// it is unset or empty. CI sets it and archives the directory as a workflow
/// artifact.
pub fn export_dir() -> Option<std::path::PathBuf> {
    match std::env::var("EC_BENCH_EXPORT_DIR") {
        Ok(dir) if !dir.trim().is_empty() => Some(std::path::PathBuf::from(dir)),
        _ => None,
    }
}

/// Writes `contents` as `<EC_BENCH_EXPORT_DIR>/<name>.csv` when the export
/// directory is configured; a no-op otherwise. Returns the written path,
/// printing it so terminal users see where the artifact went.
fn export_csv(name: &str, contents: &str) -> Option<std::path::PathBuf> {
    let dir = export_dir()?;
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("cannot create export dir {}: {e}", dir.display()));
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, contents)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("exported {}", path.display());
    Some(path)
}

/// Exports `table` via [`ec_report::TextTable::to_csv`]; see [`export_dir`].
pub fn export_table_csv(name: &str, table: &ec_report::TextTable) -> Option<std::path::PathBuf> {
    export_csv(name, &table.to_csv())
}

/// Exports `figure` via [`ec_report::csv_export`]; see [`export_dir`].
pub fn export_figure_csv(name: &str, figure: &ec_report::Figure) -> Option<std::path::PathBuf> {
    export_csv(name, &ec_report::csv_export(figure))
}

/// Scrapes `GET /metrics` from a live server, returning the raw Prometheus
/// exposition — or `None` when anything fails, because a telemetry hiccup
/// must never fail a benchmark run. Pair two scrapes around the measured
/// section with [`metrics_delta_json`] to embed the movement in the
/// exported `BENCH_*.json`.
pub fn scrape_metrics(addr: std::net::SocketAddr) -> Option<String> {
    let timeout = std::time::Duration::from_secs(2);
    let mut conn = ec_serve::http::ClientConn::connect(addr, Some(timeout)).ok()?;
    conn.set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .ok()?;
    let response = conn.request("GET", "/metrics", b"", false).ok()?;
    if response.status != 200 {
        return None;
    }
    String::from_utf8(response.body).ok()
}

/// Parses a Prometheus text exposition into `series → value` samples
/// (`series` keeps its label set: `name{label="v"}`); comment and blank
/// lines are skipped. Works on both a [`scrape_metrics`] body and an
/// in-process `ec_obs::render()` string.
pub fn parse_metric_samples(text: &str) -> std::collections::BTreeMap<String, f64> {
    let mut samples = std::collections::BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // The value is everything after the last space; the series (name +
        // label set, which may itself contain spaces inside quoted label
        // values) is everything before it.
        if let Some((series, value)) = line.rsplit_once(' ') {
            if let Ok(value) = value.parse::<f64>() {
                samples.insert(series.trim_end().to_string(), value);
            }
        }
    }
    samples
}

/// Renders the before→after movement of every series whose metric name
/// starts with one of `prefixes` as a compact JSON object
/// (`{"series": delta, …}`), suitable for embedding verbatim in a
/// hand-built report. Zero-delta series and per-bucket histogram series
/// (`*_bucket`) are omitted — `_sum`/`_count` carry the signal; gauges show
/// their (possibly negative) net movement.
pub fn metrics_delta_json(before: &str, after: &str, prefixes: &[&str]) -> String {
    let before = parse_metric_samples(before);
    let after = parse_metric_samples(after);
    let mut entries = Vec::new();
    for (series, &value) in &after {
        let name = series.split('{').next().unwrap_or(series);
        if !prefixes.iter().any(|prefix| name.starts_with(prefix)) || name.ends_with("_bucket") {
            continue;
        }
        let delta = value - before.get(series).copied().unwrap_or(0.0);
        if delta == 0.0 || !delta.is_finite() {
            continue;
        }
        let escaped = series.replace('\\', "\\\\").replace('"', "\\\"");
        let rendered = if delta.fract() == 0.0 && delta.abs() < 1e15 {
            format!("{}", delta as i64)
        } else {
            format!("{delta:.6}")
        };
        entries.push(format!("\"{escaped}\": {rendered}"));
    }
    format!("{{{}}}", entries.join(", "))
}

/// Writes a non-CSV artifact (e.g. a JSON report) as
/// `<EC_BENCH_EXPORT_DIR>/<filename>`; falls back to the current directory
/// when no export directory is configured, so the artifact always lands
/// somewhere inspectable. Returns the written path.
pub fn export_artifact(filename: &str, contents: &str) -> std::path::PathBuf {
    let dir = export_dir().unwrap_or_else(|| std::path::PathBuf::from("."));
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("cannot create export dir {}: {e}", dir.display()));
    let path = dir.join(filename);
    std::fs::write(&path, contents)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("exported {}", path.display());
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_data::GeneratorConfig;

    fn tiny() -> Dataset {
        PaperDataset::Address.generate(&GeneratorConfig {
            num_clusters: 15,
            seed: 3,
            num_sources: 3,
        })
    }

    #[test]
    fn checkpoints_are_bounded_and_include_max() {
        let c = checkpoints(60);
        assert!(c.iter().all(|&b| b <= 60));
        assert!(c.contains(&0));
        assert!(c.contains(&60));
    }

    #[test]
    fn group_series_recall_is_monotone_in_budget() {
        let ds = tiny();
        let sample = evaluation_sample(&ds, 200, 1);
        let points = group_method_series(&ds, GroupingConfig::default(), &[0, 5, 15], &sample, 2);
        assert_eq!(points.len(), 3);
        assert!(points[0].recall <= points[1].recall);
        assert!(points[1].recall <= points[2].recall);
        assert_eq!(points[0].recall, 0.0);
    }

    #[test]
    fn single_series_and_trifacta_run() {
        let ds = tiny();
        let sample = evaluation_sample(&ds, 200, 1);
        let single = single_method_series(&ds, &[0, 10], &sample, 2);
        assert_eq!(single.len(), 2);
        let tri = trifacta_point(&ds, PaperDataset::Address, &sample);
        assert!(tri.precision >= 0.0 && tri.precision <= 1.0);
    }

    #[test]
    fn table8_improves_or_holds() {
        let ds = tiny();
        let (before, after) = table8_point(&ds, 30, 4);
        assert!(after >= before);
    }

    #[test]
    fn metric_samples_parse_and_diff() {
        let before = "# HELP ec_x_total x\n# TYPE ec_x_total counter\n\
                      ec_x_total{kind=\"a b\"} 3\nec_y_seconds_sum 0.25\n\
                      ec_y_seconds_bucket{le=\"+Inf\"} 4\nother_total 9\n";
        let after = "ec_x_total{kind=\"a b\"} 10\nec_y_seconds_sum 1\n\
                     ec_y_seconds_bucket{le=\"+Inf\"} 6\nother_total 12\n";
        let samples = parse_metric_samples(before);
        assert_eq!(samples["ec_x_total{kind=\"a b\"}"], 3.0);
        assert_eq!(samples.len(), 4);

        // Deltas keep matching-prefix counters (labels JSON-escaped), render
        // fractional sums with decimals, and drop buckets and foreign names.
        let json = metrics_delta_json(before, after, &["ec_"]);
        assert!(json.contains("\"ec_x_total{kind=\\\"a b\\\"}\": 7"));
        assert!(json.contains("\"ec_y_seconds_sum\": 0.750000"));
        assert!(!json.contains("bucket"));
        assert!(!json.contains("other_total"));
    }
}

#[cfg(test)]
mod probe {
    use super::*;
    use ec_data::GeneratorConfig;
    use ec_grouping::StructuredGrouper;
    use std::time::Instant;

    #[test]
    #[ignore = "manual performance probe"]
    fn probe_mega_group_cost() {
        // Where does the single-mega-group axis of fig9 spend its time —
        // preparation (graphs + index) or the pivot searches the frontier
        // engine shards?
        let values: Vec<String> = (10..22)
            .map(|i| format!("International Journal of Distributed Data Systems Volume {i}"))
            .collect();
        let candidates = generate_candidates(&[values], &CandidateConfig::default());
        println!("candidates: {}", candidates.len());
        let tprep = Instant::now();
        let mut grouper = ec_grouping::IncrementalGrouper::new(
            &candidates.replacements,
            GroupingConfig::default(),
        );
        println!("prepared in {:?}", tprep.elapsed());
        let tg = Instant::now();
        let g = grouper.next_group();
        println!(
            "first group: size {:?} in {:?}",
            g.map(|g| g.size()),
            tg.elapsed()
        );
    }

    #[test]
    #[ignore = "manual performance probe"]
    fn probe_address_grouping_cost() {
        let ds = PaperDataset::Address.generate(&GeneratorConfig {
            num_clusters: 15,
            seed: 3,
            num_sources: 3,
        });
        let t0 = Instant::now();
        let candidates = generate_candidates(&ds.column_values(0), &CandidateConfig::default());
        println!(
            "candidates: {} in {:?}",
            candidates.replacements.len(),
            t0.elapsed()
        );
        let lens: Vec<usize> = candidates
            .replacements
            .iter()
            .map(|r| r.lhs().len().max(r.rhs().len()))
            .collect();
        println!(
            "max len {} avg len {:.1}",
            lens.iter().max().unwrap(),
            lens.iter().sum::<usize>() as f64 / lens.len() as f64
        );
        // How large are the structure partitions?
        use std::collections::HashMap;
        let mut by_struct: HashMap<String, usize> = HashMap::new();
        for r in &candidates.replacements {
            *by_struct
                .entry(ec_graph::structure::replacement_structure(r.lhs(), r.rhs()).to_string())
                .or_insert(0) += 1;
        }
        let mut sizes: Vec<usize> = by_struct.values().copied().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        println!(
            "structure partitions: {} largest: {:?}",
            sizes.len(),
            &sizes[..sizes.len().min(8)]
        );
        // Time graph preparation on the largest partition alone.
        let largest_struct = by_struct.iter().max_by_key(|(_, &c)| c).unwrap().0.clone();
        let largest: Vec<_> = candidates
            .replacements
            .iter()
            .filter(|r| {
                ec_graph::structure::replacement_structure(r.lhs(), r.rhs()).to_string()
                    == largest_struct
            })
            .cloned()
            .collect();
        println!(
            "largest partition lhs/rhs example: {} -> {}",
            largest[0].lhs(),
            largest[0].rhs()
        );
        let tprep = Instant::now();
        let mut inc = ec_grouping::IncrementalGrouper::new(&largest, GroupingConfig::default());
        println!(
            "prepared largest partition ({} graphs) in {:?}",
            largest.len(),
            tprep.elapsed()
        );
        let tg = Instant::now();
        let g = inc.next_group();
        println!(
            "largest partition first group: {:?} in {:?}",
            g.map(|g| g.size()),
            tg.elapsed()
        );
        let t1 = Instant::now();
        let mut grouper =
            StructuredGrouper::new(&candidates.replacements, GroupingConfig::default());
        println!("grouper constructed in {:?}", t1.elapsed());
        for i in 0..5 {
            let t = Instant::now();
            let g = grouper.next_group();
            println!(
                "group {}: size {:?} in {:?}",
                i,
                g.as_ref().map(|g| g.size()),
                t.elapsed()
            );
        }
    }
}
