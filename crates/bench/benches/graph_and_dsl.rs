//! Criterion micro-benchmarks for the lower layers: DSL program evaluation,
//! transformation-graph construction and candidate generation.

use criterion::{criterion_group, criterion_main, Criterion};
use ec_data::{GeneratorConfig, PaperDataset};
use ec_dsl::{Dir, PositionFn, Program, StrCtx, StringFn, Term};
use ec_graph::{GraphBuilder, GraphConfig, LabelInterner, Replacement};
use ec_replace::{generate_candidates, lcs_token_pairs, CandidateConfig};

fn bench_dsl(c: &mut Criterion) {
    let program = Program::new(vec![
        StringFn::sub_str(
            PositionFn::match_pos(Term::Whitespace, 1, Dir::End),
            PositionFn::match_pos(Term::Upper, -1, Dir::End),
        ),
        StringFn::constant(". "),
        StringFn::sub_str(
            PositionFn::match_pos(Term::Upper, 1, Dir::Begin),
            PositionFn::match_pos(Term::Lower, 1, Dir::End),
        ),
    ]);
    c.bench_function("dsl_program_eval", |b| {
        b.iter(|| {
            let ctx = StrCtx::new("Stonebraker, Michael");
            program.eval(&ctx)
        });
    });
    c.bench_function("dsl_consistency_check", |b| {
        b.iter(|| {
            let ctx = StrCtx::new("Stonebraker, Michael");
            program.consistent_with(&ctx, "M. Stonebraker")
        });
    });
}

fn bench_graph_build(c: &mut Criterion) {
    let builder = GraphBuilder::new(GraphConfig::default());
    let replacement = Replacement::new("3rd E Avenue, 33990 California", "3 E Ave, 33990 CA");
    c.bench_function("graph_build_address_pair", |b| {
        b.iter(|| {
            let mut interner = LabelInterner::new();
            builder.build(&replacement, &mut interner)
        });
    });
}

fn bench_candidates(c: &mut Criterion) {
    let dataset = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters: 50,
        seed: 9,
        num_sources: 4,
    });
    let column = dataset.column_values(0);
    c.bench_function("candidate_generation_address_50", |b| {
        b.iter(|| generate_candidates(&column, &CandidateConfig::default()).len());
    });
    c.bench_function("lcs_token_alignment", |b| {
        b.iter(|| lcs_token_pairs("9 St, 02141 Wisconsin", "9th Street, 02141 WI"));
    });
}

criterion_group!(benches, bench_dsl, bench_graph_build, bench_candidates);
criterion_main!(benches);
