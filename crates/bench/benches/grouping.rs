//! Criterion micro-benchmarks for the grouping algorithms (the Figure 9
//! comparison at micro scale): OneShot vs EarlyTerm upfront grouping and the
//! incremental next-largest-group call.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ec_data::{GeneratorConfig, PaperDataset};
use ec_grouping::{GroupingConfig, StructuredGrouper};
use ec_replace::{generate_candidates, CandidateConfig};
use std::time::Duration;

fn candidate_replacements(num_clusters: usize) -> Vec<ec_graph::Replacement> {
    let dataset = PaperDataset::Address.generate(&GeneratorConfig {
        num_clusters,
        seed: 2,
        num_sources: 4,
    });
    generate_candidates(&dataset.column_values(0), &CandidateConfig::default()).replacements
}

fn bench_grouping(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouping");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(8));
    for &num_clusters in &[15usize, 30] {
        let replacements = candidate_replacements(num_clusters);
        group.bench_with_input(
            BenchmarkId::new("oneshot_upfront", replacements.len()),
            &replacements,
            |b, reps| {
                b.iter(|| StructuredGrouper::one_shot_all(reps, GroupingConfig::one_shot()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("earlyterm_upfront", replacements.len()),
            &replacements,
            |b, reps| {
                b.iter(|| StructuredGrouper::one_shot_all(reps, GroupingConfig::default()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("incremental_first_group", replacements.len()),
            &replacements,
            |b, reps| {
                b.iter(|| {
                    StructuredGrouper::new(reps, GroupingConfig::default())
                        .next_group()
                        .map(|g| g.size())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_grouping);
criterion_main!(benches);
