//! The golden-record creation pipeline (Algorithm 1).

use crate::oracle::{Oracle, Verdict};
use ec_data::Dataset;
use ec_grouping::{GroupingConfig, StructuredGrouper};
use ec_replace::{CandidateConfig, ReplacementEngine};
use ec_truth::{majority_consensus, reliability_truth_discovery, Claim, ReliabilityConfig};
use serde::{Deserialize, Serialize};

/// Which truth-discovery method closes the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TruthMethod {
    /// Majority consensus (the method evaluated in the paper's Table 8).
    MajorityConsensus,
    /// Iterative source-reliability weighting.
    SourceReliability,
}

/// Configuration of the consolidation pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationConfig {
    /// Grouping configuration (DSL/graph/search settings).
    pub grouping: GroupingConfig,
    /// Candidate-generation configuration.
    pub candidates: CandidateConfig,
    /// Human budget: the maximum number of groups presented per column.
    pub budget: usize,
}

impl Default for ConsolidationConfig {
    fn default() -> Self {
        ConsolidationConfig {
            grouping: GroupingConfig::default(),
            candidates: CandidateConfig::default(),
            budget: 100,
        }
    }
}

impl ConsolidationConfig {
    /// Sets one [`Parallelism`] on both sharded stages — candidate generation
    /// and pivot-path grouping. The pipeline's output is bit-identical for
    /// every setting; only the wall-clock time changes.
    pub fn with_parallelism(mut self, parallelism: ec_grouping::Parallelism) -> Self {
        self.grouping.parallelism = parallelism;
        self.candidates.parallelism = parallelism;
        self
    }

    /// [`ConsolidationConfig::with_parallelism`] with a raw thread count
    /// (`0` means auto — `EC_THREADS` or the machine).
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_parallelism(ec_grouping::Parallelism::from(threads))
    }
}

/// What happened while standardizing one column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnReport {
    /// The column index.
    pub column: usize,
    /// Number of candidate replacements generated.
    pub candidates: usize,
    /// Number of groups presented to the oracle.
    pub groups_reviewed: usize,
    /// Number of groups the oracle approved.
    pub groups_approved: usize,
    /// Number of cells rewritten.
    pub cells_updated: usize,
}

/// The outcome of a full golden-record creation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenRecordReport {
    /// One report per column.
    pub columns: Vec<ColumnReport>,
    /// `golden_records[cluster][column]` — the produced golden value, or
    /// `None` when truth discovery could not decide.
    pub golden_records: Vec<Vec<Option<String>>>,
}

/// The entity-consolidation pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: ConsolidationConfig,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: ConsolidationConfig) -> Self {
        Pipeline { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ConsolidationConfig {
        &self.config
    }

    /// Standardizes one column in place (Algorithm 1, lines 2–9): generates
    /// candidates, groups them, asks the oracle about the largest groups until
    /// the budget is exhausted, and applies every approved group.
    pub fn standardize_column(
        &self,
        dataset: &mut Dataset,
        col: usize,
        oracle: &mut dyn Oracle,
    ) -> ColumnReport {
        self.standardize_column_traced(dataset, col, oracle).0
    }

    /// [`Pipeline::standardize_column`], additionally returning the groups
    /// the oracle approved (with the chosen directions) in review order —
    /// the raw material a [`crate::ProgramLibrary`] is built from, so the
    /// human's verification work survives the batch that produced it.
    pub fn standardize_column_traced(
        &self,
        dataset: &mut Dataset,
        col: usize,
        oracle: &mut dyn Oracle,
    ) -> (ColumnReport, Vec<crate::ApprovedGroup>) {
        let _span = ec_obs::span!("core.standardize_column", col);
        let values = dataset.column_values(col);
        let mut engine = ReplacementEngine::new(values, &self.config.candidates);
        let candidates = engine.candidates();
        let mut grouper = StructuredGrouper::new(&candidates, self.config.grouping.clone());
        let mut reviewed = 0usize;
        let mut approved = Vec::new();
        while reviewed < self.config.budget {
            let group = match grouper.next_group() {
                Some(g) => g,
                None => break,
            };
            reviewed += 1;
            if let Verdict::Approve(direction) = oracle.review(&group) {
                engine.apply_group(group.members(), direction);
                approved.push(crate::ApprovedGroup { group, direction });
            }
        }
        let report = ColumnReport {
            column: col,
            candidates: candidates.len(),
            groups_reviewed: reviewed,
            groups_approved: approved.len(),
            cells_updated: engine.cells_updated(),
        };
        dataset.set_column_values(col, engine.into_values());
        (report, approved)
    }

    /// Runs truth discovery over the (already standardized) dataset and
    /// returns one golden value per cluster and column.
    pub fn discover_golden_records(
        &self,
        dataset: &Dataset,
        method: TruthMethod,
    ) -> Vec<Vec<Option<String>>> {
        let _span = ec_obs::span!("core.truth_discovery");
        match method {
            TruthMethod::MajorityConsensus => dataset
                .clusters
                .iter()
                .map(|cluster| {
                    (0..dataset.columns.len())
                        .map(|col| {
                            let values: Vec<&str> = cluster
                                .rows
                                .iter()
                                .map(|r| r.cells[col].observed.as_str())
                                .collect();
                            majority_consensus(&values).value
                        })
                        .collect()
                })
                .collect(),
            TruthMethod::SourceReliability => {
                // Reliability estimation works one column at a time; transpose
                // the per-column resolutions back into per-cluster rows.
                let per_column: Vec<Vec<Option<String>>> = (0..dataset.columns.len())
                    .map(|col| {
                        let claims: Vec<Vec<Claim>> = dataset
                            .clusters
                            .iter()
                            .map(|cluster| {
                                cluster
                                    .rows
                                    .iter()
                                    .map(|r| Claim {
                                        value: r.cells[col].observed.clone(),
                                        source: r.source,
                                    })
                                    .collect()
                            })
                            .collect();
                        reliability_truth_discovery(&claims, &ReliabilityConfig::default())
                            .into_iter()
                            .map(|res| res.value)
                            .collect()
                    })
                    .collect();
                (0..dataset.clusters.len())
                    .map(|c| per_column.iter().map(|column| column[c].clone()).collect())
                    .collect()
            }
        }
    }

    /// The full Algorithm 1: standardizes every column with the given oracle,
    /// then runs truth discovery and returns the golden records.
    pub fn golden_records(
        &self,
        dataset: &mut Dataset,
        oracle: &mut dyn Oracle,
        method: TruthMethod,
    ) -> GoldenRecordReport {
        let columns = (0..dataset.columns.len())
            .map(|col| self.standardize_column(dataset, col, oracle))
            .collect();
        let golden_records = self.discover_golden_records(dataset, method);
        GoldenRecordReport {
            columns,
            golden_records,
        }
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new(ConsolidationConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{ApproveAllOracle, RejectAllOracle, SimulatedOracle};
    use ec_data::{Cell, Cluster, GeneratorConfig, PaperDataset, Row};
    use ec_metrics::{evaluate_standardization, golden_record_precision};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Table 1 of the paper, with ground truth.
    fn table1() -> Dataset {
        let mk = |observed: &str, truth: &str| Cell {
            observed: observed.to_string(),
            truth: truth.to_string(),
        };
        let mut d = Dataset::new("table1", vec!["Name".to_string()]);
        d.clusters.push(Cluster {
            rows: vec![
                Row {
                    source: 0,
                    cells: vec![mk("Mary Lee", "Mary Lee")],
                },
                Row {
                    source: 1,
                    cells: vec![mk("M. Lee", "Mary Lee")],
                },
                Row {
                    source: 2,
                    cells: vec![mk("Lee, Mary", "Mary Lee")],
                },
            ],
            golden: vec!["Mary Lee".to_string()],
        });
        d.clusters.push(Cluster {
            rows: vec![
                Row {
                    source: 0,
                    cells: vec![mk("Smith, James", "James Smith")],
                },
                Row {
                    source: 1,
                    cells: vec![mk("James Smith", "James Smith")],
                },
                Row {
                    source: 2,
                    cells: vec![mk("J. Smith", "James Smith")],
                },
            ],
            golden: vec!["James Smith".to_string()],
        });
        d
    }

    #[test]
    fn standardizing_table1_consolidates_the_name_column() {
        let mut dataset = table1();
        let pipeline = Pipeline::new(ConsolidationConfig {
            budget: 20,
            candidates: ec_replace::CandidateConfig::full_value_only(),
            ..ConsolidationConfig::default()
        });
        let mut oracle = SimulatedOracle::for_column(&dataset, 0, 9);
        let report = pipeline.standardize_column(&mut dataset, 0, &mut oracle);
        assert!(report.groups_approved > 0);
        assert!(report.cells_updated > 0);
        // Every record of cluster 0 should now agree on a single name format,
        // and that format must be a rendering of Mary Lee (not of James Smith).
        let values = dataset.column_values(0);
        assert!(values[0].iter().all(|v| v == &values[0][0]), "{values:?}");
        assert!(values[0][0].contains("Lee"));
        // Truth discovery after standardization produces the right goldens up
        // to formatting: majority consensus now has a clear winner.
        let goldens = pipeline.discover_golden_records(&dataset, TruthMethod::MajorityConsensus);
        assert!(goldens[0][0].is_some());
        assert!(goldens[1][0].is_some());
    }

    #[test]
    fn rejecting_everything_changes_nothing() {
        let mut dataset = table1();
        let before = dataset.clone();
        let pipeline = Pipeline::default();
        let report = pipeline.standardize_column(&mut dataset, 0, &mut RejectAllOracle);
        assert_eq!(report.groups_approved, 0);
        assert_eq!(report.cells_updated, 0);
        assert_eq!(dataset, before);
    }

    #[test]
    fn budget_limits_the_number_of_reviews() {
        let mut dataset = table1();
        let pipeline = Pipeline::new(ConsolidationConfig {
            budget: 2,
            candidates: ec_replace::CandidateConfig::full_value_only(),
            ..ConsolidationConfig::default()
        });
        let report = pipeline.standardize_column(&mut dataset, 0, &mut ApproveAllOracle);
        assert_eq!(report.groups_reviewed, 2);
    }

    #[test]
    fn standardization_improves_recall_and_keeps_precision_high() {
        let mut dataset = PaperDataset::Address.generate(&GeneratorConfig {
            num_clusters: 60,
            seed: 5,
            num_sources: 4,
        });
        let mut rng = StdRng::seed_from_u64(17);
        let sample = dataset.sample_labeled_pairs(0, 400, &mut rng);
        let before = evaluate_standardization(&sample, &dataset.column_values(0));
        assert_eq!(before.tp, 0, "nothing is standardized yet");

        let pipeline = Pipeline::new(ConsolidationConfig {
            budget: 60,
            ..Default::default()
        });
        let mut oracle = SimulatedOracle::for_column(&dataset, 0, 3);
        pipeline.standardize_column(&mut dataset, 0, &mut oracle);
        let after = evaluate_standardization(&sample, &dataset.column_values(0));
        assert!(
            after.recall() > 0.3,
            "recall should improve substantially: {after:?}"
        );
        assert!(
            after.precision() > 0.9,
            "precision should stay high: {after:?}"
        );
        assert!(after.mcc() > before.mcc());
    }

    #[test]
    fn golden_record_precision_improves_after_standardization() {
        // The Table 8 effect: majority consensus does much better on the
        // standardized clusters.
        let dataset = PaperDataset::JournalTitle.generate(&GeneratorConfig {
            num_clusters: 150,
            seed: 8,
            num_sources: 6,
        });
        let truth: Vec<String> = dataset
            .clusters
            .iter()
            .map(|c| c.golden[0].clone())
            .collect();
        let pipeline = Pipeline::new(ConsolidationConfig {
            budget: 80,
            ..Default::default()
        });

        let before_goldens =
            pipeline.discover_golden_records(&dataset, TruthMethod::MajorityConsensus);
        let before: Vec<Option<String>> = before_goldens.iter().map(|g| g[0].clone()).collect();
        let before_precision = golden_record_precision(&before, &truth);

        let mut standardized = dataset.clone();
        let mut oracle = SimulatedOracle::for_column(&standardized, 0, 4);
        pipeline.standardize_column(&mut standardized, 0, &mut oracle);
        let after_goldens =
            pipeline.discover_golden_records(&standardized, TruthMethod::MajorityConsensus);
        let after: Vec<Option<String>> = after_goldens.iter().map(|g| g[0].clone()).collect();
        let after_precision = golden_record_precision(&after, &truth);
        assert!(
            after_precision > before_precision,
            "standardization must help MC: before {before_precision:.3}, after {after_precision:.3}"
        );
    }

    #[test]
    fn parallelism_does_not_change_pipeline_output() {
        let dataset = PaperDataset::Address.generate(&GeneratorConfig {
            num_clusters: 25,
            seed: 3,
            num_sources: 4,
        });
        let mut outcomes = Vec::new();
        for threads in [1usize, 4] {
            let mut ds = dataset.clone();
            let pipeline = Pipeline::new(
                ConsolidationConfig {
                    budget: 25,
                    ..ConsolidationConfig::default()
                }
                .with_threads(threads),
            );
            let mut oracle = SimulatedOracle::for_column(&ds, 0, 7);
            let report = pipeline.standardize_column(&mut ds, 0, &mut oracle);
            outcomes.push((ds, report));
        }
        assert_eq!(
            outcomes[0], outcomes[1],
            "thread count must not change the standardized dataset or report"
        );
    }

    #[test]
    fn source_reliability_truth_discovery_runs_end_to_end() {
        let mut dataset = table1();
        let pipeline = Pipeline::new(ConsolidationConfig {
            budget: 10,
            candidates: ec_replace::CandidateConfig::full_value_only(),
            ..ConsolidationConfig::default()
        });
        let mut oracle = SimulatedOracle::for_column(&dataset, 0, 2);
        let report =
            pipeline.golden_records(&mut dataset, &mut oracle, TruthMethod::SourceReliability);
        assert_eq!(report.columns.len(), 1);
        assert_eq!(report.golden_records.len(), 2);
        assert!(report.golden_records.iter().all(|g| g[0].is_some()));
    }

    #[test]
    fn doc_example_compiles_and_runs() {
        let mut dataset = PaperDataset::Address.generate(&GeneratorConfig {
            num_clusters: 20,
            seed: 7,
            num_sources: 4,
        });
        let config = ConsolidationConfig {
            budget: 20,
            ..ConsolidationConfig::default()
        };
        let mut oracle = SimulatedOracle::for_column(&dataset, 0, 1234);
        let report = Pipeline::new(config).golden_records(
            &mut dataset,
            &mut oracle,
            TruthMethod::MajorityConsensus,
        );
        assert_eq!(report.golden_records.len(), dataset.clusters.len());
    }
}
