//! Compiled datasets: the prepared state of a consolidation run, built once
//! and reused many times.
//!
//! Everything the budgeted review loop needs per column — the candidate
//! replacement sets, the structure partitions, and each partition's prepared
//! graphs/interner/inverted index — is deterministic given the resolved
//! dataset and the configuration. [`compile_dataset`] computes it eagerly
//! (the budget is a runtime parameter, so *every* partition is prepared);
//! `ec compile` serializes the result into a memory-mappable artifact
//! (`ec-artifact`), and [`standardize_columns_compiled`] replays Algorithm 1
//! from the prepared state, byte-identical to the CSV build path while
//! skipping candidate generation, graph construction and index building.

use crate::consolidate::AutoMode;
use crate::library::ProgramLibrary;
use crate::oracle::{ApproveAllOracle, Oracle, SimulatedOracle, Verdict};
use crate::pipeline::{ColumnReport, ConsolidationConfig, Pipeline};
use ec_data::Dataset;
use ec_graph::Replacement;
use ec_grouping::{partition_replacements, PreparedGraphs, StructuredGrouper};
use ec_replace::{CandidateSet, ReplacementEngine};
use std::sync::Arc;

/// One structure partition of a column, with its preparation done.
#[derive(Debug, Clone)]
pub struct CompiledPartition {
    /// The partition's replacements, in the order
    /// [`partition_replacements`] produces.
    pub members: Vec<Replacement>,
    /// The prepared graphs, interner and inverted index for `members`.
    pub prepared: Arc<PreparedGraphs>,
}

/// The compiled state of one column.
#[derive(Debug, Clone)]
pub struct CompiledColumn {
    /// The full candidate set generated from the column's cluster values.
    pub candidates: CandidateSet,
    /// The structure partitions over the (non-empty) candidates, biggest
    /// first — the same order a fresh [`StructuredGrouper`] would scan.
    pub partitions: Vec<CompiledPartition>,
}

/// A resolved dataset with every column's consolidation state prepared.
#[derive(Debug, Clone)]
pub struct CompiledDataset {
    /// The dataset name (the `name` every entry point threads through).
    pub name: String,
    /// The resolution threshold the clusters were formed with. Consumers
    /// must reject requests that ask for a different threshold — the
    /// clusters baked into `dataset` cannot be re-resolved.
    pub threshold: f64,
    /// Whether the dataset carries ground truth (drives oracle selection).
    pub has_truth: bool,
    /// The resolved, clustered dataset.
    pub dataset: Dataset,
    /// One compiled state per dataset column.
    pub columns: Vec<CompiledColumn>,
}

impl CompiledDataset {
    /// The columns every entry point resolves specs against.
    pub fn column_names(&self) -> &[String] {
        &self.dataset.columns
    }
}

/// Compiles `dataset` (already resolved into clusters at `threshold`): per
/// column, generates candidates, partitions them by structure, and prepares
/// every partition's graphs and inverted index.
///
/// The grouping/candidate parts of `config` must match the configuration the
/// compiled state will later be *run* with — `ec` entry points all use the
/// defaults, so this holds by construction; parallelism and budget are
/// runtime knobs that never change outputs.
pub fn compile_dataset(
    dataset: Dataset,
    threshold: f64,
    has_truth: bool,
    config: &ConsolidationConfig,
) -> CompiledDataset {
    let columns = (0..dataset.columns.len())
        .map(|col| {
            let values = dataset.column_values(col);
            let engine = ReplacementEngine::new(values, &config.candidates);
            let candidates = engine.candidates();
            let partitions = partition_replacements(&candidates, &config.grouping)
                .into_iter()
                .map(|members| {
                    let prepared = Arc::new(PreparedGraphs::build(&members, &config.grouping));
                    CompiledPartition { members, prepared }
                })
                .collect();
            CompiledColumn {
                candidates: engine.candidate_set().clone(),
                partitions,
            }
        })
        .collect();
    CompiledDataset {
        name: dataset.name.clone(),
        threshold,
        has_truth,
        dataset,
        columns,
    }
}

impl Pipeline {
    /// [`Pipeline::standardize_column_traced`] from a compiled column state:
    /// the engine is reassembled from the stored candidate sets and the
    /// grouper from the stored partitions, skipping generation, graph
    /// construction and indexing. Output is identical to the fresh path.
    pub fn standardize_column_traced_compiled(
        &self,
        dataset: &mut Dataset,
        col: usize,
        compiled: &CompiledColumn,
        oracle: &mut dyn Oracle,
    ) -> (ColumnReport, Vec<crate::ApprovedGroup>) {
        let values = dataset.column_values(col);
        let mut engine = ReplacementEngine::from_parts(values, compiled.candidates.clone());
        let candidates = engine.candidates();
        let parts = compiled
            .partitions
            .iter()
            .map(|p| (p.members.clone(), Arc::clone(&p.prepared)))
            .collect();
        let mut grouper = StructuredGrouper::from_compiled(parts, self.config().grouping.clone());
        let mut reviewed = 0usize;
        let mut approved = Vec::new();
        while reviewed < self.config().budget {
            let group = match grouper.next_group() {
                Some(g) => g,
                None => break,
            };
            reviewed += 1;
            if let Verdict::Approve(direction) = oracle.review(&group) {
                engine.apply_group(group.members(), direction);
                approved.push(crate::ApprovedGroup { group, direction });
            }
        }
        let report = ColumnReport {
            column: col,
            candidates: candidates.len(),
            groups_reviewed: reviewed,
            groups_approved: approved.len(),
            cells_updated: engine.cells_updated(),
        };
        dataset.set_column_values(col, engine.into_values());
        (report, approved)
    }
}

/// [`crate::standardize_columns`] over a compiled dataset: same oracle
/// selection and library recording, but each column runs from its compiled
/// state. `dataset` is the working copy being standardized (typically a clone
/// of [`CompiledDataset::dataset`]).
pub fn standardize_columns_compiled(
    pipeline: &Pipeline,
    compiled: &CompiledDataset,
    dataset: &mut Dataset,
    columns: &[usize],
    mode: AutoMode,
    mut library: Option<&mut ProgramLibrary>,
) -> Vec<ColumnReport> {
    let mut reports = Vec::with_capacity(columns.len());
    for &col in columns {
        let simulated = mode == AutoMode::Auto && compiled.has_truth;
        let mut oracle: Box<dyn Oracle> = if simulated {
            Box::new(SimulatedOracle::for_column(dataset, col, 7 + col as u64))
        } else {
            Box::new(ApproveAllOracle)
        };
        let (report, approved) = pipeline.standardize_column_traced_compiled(
            dataset,
            col,
            &compiled.columns[col],
            oracle.as_mut(),
        );
        if let Some(library) = library.as_deref_mut() {
            let column_name = &dataset.columns[col];
            for group in &approved {
                library.record(column_name, group);
            }
        }
        reports.push(report);
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consolidate::standardize_columns;
    use ec_data::{GeneratorConfig, PaperDataset};

    #[test]
    fn compiled_standardization_matches_the_fresh_path_exactly() {
        let dataset = PaperDataset::Address.generate(&GeneratorConfig {
            num_clusters: 12,
            seed: 21,
            num_sources: 3,
        });
        let config = ConsolidationConfig {
            budget: 10,
            ..ConsolidationConfig::default()
        };
        let pipeline = Pipeline::new(config.clone());
        let columns: Vec<usize> = (0..dataset.columns.len()).collect();

        let mut fresh = dataset.clone();
        let mut fresh_library = ProgramLibrary::new();
        let fresh_reports = standardize_columns(
            &pipeline,
            &mut fresh,
            &columns,
            AutoMode::Auto,
            true,
            Some(&mut fresh_library),
        );

        let compiled = compile_dataset(dataset, 0.75, true, &config);
        let mut from_compiled = compiled.dataset.clone();
        let mut compiled_library = ProgramLibrary::new();
        let compiled_reports = standardize_columns_compiled(
            &pipeline,
            &compiled,
            &mut from_compiled,
            &columns,
            AutoMode::Auto,
            Some(&mut compiled_library),
        );

        assert_eq!(fresh, from_compiled, "standardized datasets agree");
        assert_eq!(fresh_reports, compiled_reports, "reports agree");
        assert_eq!(
            fresh_library.to_snapshot(),
            compiled_library.to_snapshot(),
            "learned programs agree"
        );
    }

    #[test]
    fn compile_prepares_every_partition_eagerly() {
        let dataset = PaperDataset::Address.generate(&GeneratorConfig {
            num_clusters: 8,
            seed: 3,
            num_sources: 3,
        });
        let compiled = compile_dataset(dataset, 0.75, true, &ConsolidationConfig::default());
        assert_eq!(compiled.columns.len(), compiled.dataset.columns.len());
        for column in &compiled.columns {
            let partition_total: usize = column.partitions.iter().map(|p| p.members.len()).sum();
            let candidate_total = column
                .candidates
                .replacements
                .iter()
                .filter(|r| !column.candidates.set(r).is_empty())
                .count();
            assert_eq!(partition_total, candidate_total);
            for p in &column.partitions {
                assert_eq!(
                    p.prepared.len() + p.prepared.skipped().len(),
                    p.members.len(),
                    "every member has a graph or is recorded as skipped"
                );
            }
        }
    }
}
