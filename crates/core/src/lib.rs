//! # ec-core — the entity-consolidation framework
//!
//! This crate ties the workspace together into the pipeline of Algorithm 1
//! (`GoldenRecordCreation`):
//!
//! 1. for every column, generate candidate replacements from the clusters
//!    (`ec-replace`);
//! 2. group them with the unsupervised, incremental transformation learner
//!    (`ec-grouping`);
//! 3. present the groups, largest first, to an [`Oracle`] (a human in the
//!    paper; simulated against ground truth here) until the budget is
//!    exhausted, applying every approved group (`ec-replace`);
//! 4. run truth discovery on the standardized clusters (`ec-truth`) to emit
//!    one golden record per cluster.
//!
//! ```
//! use ec_core::{ConsolidationConfig, Pipeline, SimulatedOracle, TruthMethod};
//! use ec_data::{GeneratorConfig, PaperDataset};
//!
//! let mut dataset = PaperDataset::Address.generate(&GeneratorConfig {
//!     num_clusters: 20,
//!     seed: 7,
//!     num_sources: 4,
//! });
//! let config = ConsolidationConfig { budget: 20, ..ConsolidationConfig::default() };
//! let mut oracle = SimulatedOracle::for_column(&dataset, 0, 1234);
//! let report = Pipeline::new(config).golden_records(&mut dataset, &mut oracle, TruthMethod::MajorityConsensus);
//! assert_eq!(report.golden_records.len(), dataset.clusters.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled;
pub mod consolidate;
pub mod delta;
pub mod fused;
pub mod library;
pub mod oracle;
pub mod pipeline;

pub use compiled::{
    compile_dataset, standardize_columns_compiled, CompiledColumn, CompiledDataset,
    CompiledPartition,
};
pub use consolidate::{
    resolve_column_spec, standardize_columns, write_golden_records_csv, AutoMode,
};
pub use delta::{BatchReport, DeltaPipeline};
pub use fused::{FusedPipeline, FusedRun};
pub use library::{
    ApplyReport, ApprovedGroup, LearnedProgram, LibraryApplier, LibraryError, ProgramLibrary,
    ValueOutcome,
};
pub use oracle::{
    ApproveAllOracle, Oracle, RejectAllOracle, ScriptedOracle, SimulatedOracle, Verdict,
};
pub use pipeline::{ColumnReport, ConsolidationConfig, GoldenRecordReport, Pipeline, TruthMethod};

pub use ec_data as data;
pub use ec_grouping::{Group, GroupingConfig, Parallelism, StructuredGrouper};
pub use ec_replace::Direction;
