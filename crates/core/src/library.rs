//! The learned-program store: *learn once, apply forever*.
//!
//! The paper's deployment story is that transformation programs verified by a
//! human are an asset: once an expert has confirmed that `SubStr(…) ⊕
//! ConstantStr(". ") ⊕ SubStr(…)` turns `"Lee, Mary"` into `"M. Lee"`, that
//! knowledge should standardize *new* records as they arrive instead of being
//! re-learned (and re-reviewed) per batch. [`ProgramLibrary`] is that asset:
//!
//! * it stores, per column, the [`ApprovedGroup`]s a human (or simulated)
//!   oracle confirmed — the shared [`Program`], the approved [`Direction`]
//!   and the exact member pairs;
//! * it serializes to a versioned, line-oriented **text snapshot**
//!   ([`ProgramLibrary::to_snapshot`] / [`ProgramLibrary::from_snapshot`])
//!   using the DSL's display syntax, so a library survives process restarts
//!   and can be inspected (and edited) with a text editor;
//! * its **apply path** ([`ProgramLibrary::applier`]) standardizes incoming
//!   records without re-learning: exact approved pairs first, then known
//!   canonical forms, then deterministic forward programs as generalizers —
//!   and values nothing in the library covers are *reported as unmatched*
//!   rather than silently passed through.
//!
//! The `ec serve` service loads a snapshot at startup, applies it on
//! `POST /apply`, and exposes it on `GET /library`; the CLI writes snapshots
//! via `--save-library` and applies them via `ec apply`.

use ec_dsl::parse::{quote, unquote};
use ec_dsl::{Program, StrCtx};
use ec_grouping::Group;
use ec_replace::Direction;
use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Magic first line of the snapshot format (the trailing integer is the
/// format version, bumped on incompatible changes).
const SNAPSHOT_HEADER: &str = "ec-program-library v1";

/// A group the oracle approved, with the direction it chose.
#[derive(Debug, Clone, PartialEq)]
pub struct ApprovedGroup {
    /// The approved group (shared program + member replacements).
    pub group: Group,
    /// The direction the oracle chose.
    pub direction: Direction,
}

/// One human-verified transformation stored in the library.
#[derive(Debug, Clone)]
pub struct LearnedProgram {
    /// The shared transformation program, when the group had one. The program
    /// maps `lhs`-shaped strings to `rhs`-shaped strings, so it generalizes
    /// to unseen values only in the [`Direction::Forward`] orientation.
    pub program: Option<Program>,
    /// The approved replacement direction.
    pub direction: Direction,
    /// The exact approved pairs, oriented `from → to` (already flipped for
    /// backward approvals).
    pub rewrites: Vec<(String, String)>,
    /// Recency stamp for capacity eviction: the library version at which the
    /// entry was last recorded or merged into. Runtime bookkeeping only — it
    /// is not serialized and does not participate in equality.
    touched: u64,
    /// Wall-clock stamp for TTL eviction: when the entry was last recorded,
    /// merged into, or loaded from a snapshot *in this process*. Stamping at
    /// snapshot load matters: a restarted server's entries age from the load,
    /// not from whenever the first sweep happens to run — lazily stamping at
    /// the first sweep used to hand stale snapshot entries a full extra TTL.
    /// Runtime bookkeeping only, like `touched`.
    touched_at: Option<Instant>,
}

impl PartialEq for LearnedProgram {
    fn eq(&self, other: &Self) -> bool {
        self.program == other.program
            && self.direction == other.direction
            && self.rewrites == other.rewrites
    }
}

/// What happened to one value on the apply path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueOutcome {
    /// An entry rewrote the value.
    Rewritten(String),
    /// The value is already a known canonical form (or a program maps it to
    /// itself); nothing to do.
    Unchanged,
    /// No library entry covers the value.
    Unmatched,
}

/// Counters (plus a capped sample of unmatched values) from one apply run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ApplyReport {
    /// Records processed.
    pub records: usize,
    /// Cells rewritten to a canonical form.
    pub cells_rewritten: usize,
    /// Cells already canonical (matched, no rewrite needed).
    pub cells_unchanged: usize,
    /// Cells no library entry covered.
    pub cells_unmatched: usize,
    /// Up to [`ApplyReport::SAMPLE_CAP`] distinct `(column, value)` pairs
    /// that went unmatched, in first-seen order.
    pub unmatched_sample: Vec<(String, String)>,
}

impl ApplyReport {
    /// Maximum number of distinct unmatched `(column, value)` pairs sampled.
    pub const SAMPLE_CAP: usize = 10;

    fn note_unmatched(&mut self, column: &str, value: &str) {
        self.cells_unmatched += 1;
        if self.unmatched_sample.len() < Self::SAMPLE_CAP
            && !self
                .unmatched_sample
                .iter()
                .any(|(c, v)| c == column && v == value)
        {
            self.unmatched_sample
                .push((column.to_string(), value.to_string()));
        }
    }
}

impl fmt::Display for ApplyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} records: {} cells rewritten, {} already canonical, {} unmatched",
            self.records, self.cells_rewritten, self.cells_unchanged, self.cells_unmatched
        )
    }
}

/// A failure while parsing a library snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibraryError {
    /// 1-based line number of the offending line (0 for whole-document
    /// problems such as a missing header).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "library snapshot line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LibraryError {}

/// The store of human-verified transformation programs, keyed by column
/// name. See the module docs for the role it plays.
///
/// A long-running server accumulates entries forever unless told otherwise;
/// [`ProgramLibrary::set_column_capacity`] caps the entries kept *per
/// column*, evicting the least recently learned entry (the one whose last
/// [`record`]/[`merge`] touch is oldest, ties broken by insertion order)
/// once a column overflows. Evictions are counted in
/// [`ProgramLibrary::evictions`] — `ec serve` reports them on `GET
/// /library`.
///
/// [`record`]: ProgramLibrary::record
/// [`merge`]: ProgramLibrary::merge
#[derive(Debug, Clone, Default)]
pub struct ProgramLibrary {
    /// Bumped on every mutation; persisted in snapshots so consumers can tell
    /// libraries apart.
    version: u64,
    columns: BTreeMap<String, Vec<LearnedProgram>>,
    /// Maximum entries kept per column (`None` = unbounded). Runtime
    /// configuration — not serialized and not part of equality.
    column_capacity: Option<usize>,
    /// Maximum age of an untouched entry (`None` = entries never expire).
    /// Runtime configuration, like `column_capacity`.
    ttl: Option<Duration>,
    /// Entries evicted so far (runtime statistics, like `column_capacity`),
    /// by the capacity cap or the TTL.
    evictions: u64,
}

impl PartialEq for ProgramLibrary {
    fn eq(&self, other: &Self) -> bool {
        // The capacity knob and eviction counter are runtime state, not
        // library content: a parsed snapshot equals the library it came from.
        self.version == other.version && self.columns == other.columns
    }
}

impl ProgramLibrary {
    /// An empty library at version 0.
    pub fn new() -> Self {
        ProgramLibrary::default()
    }

    /// The mutation counter (persisted in snapshots).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The per-column entry cap, if one was configured.
    pub fn column_capacity(&self) -> Option<usize> {
        self.column_capacity
    }

    /// Entries evicted by the capacity cap or the TTL so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The maximum entry age, if a TTL was configured.
    pub fn ttl(&self) -> Option<Duration> {
        self.ttl
    }

    /// Expires entries not touched for `ttl` (`None` lifts the limit; a zero
    /// TTL is clamped to one second — a library that evicts entries the
    /// instant they are learned is never useful). Expiry is lazy: nothing is
    /// removed until [`ProgramLibrary::evict_expired`] sweeps.
    pub fn set_ttl(&mut self, ttl: Option<Duration>) {
        self.ttl = ttl.map(|t| t.max(Duration::from_secs(1)));
    }

    /// Evicts every entry whose last [`record`]/[`merge`]/snapshot-load touch
    /// is more than the TTL before `now`, returning how many were removed. A
    /// no-op without a configured TTL. Evictions count toward
    /// [`ProgramLibrary::evictions`] and bump the version ("bumped on every
    /// mutation" includes expiry), exactly like capacity trims.
    ///
    /// [`record`]: ProgramLibrary::record
    /// [`merge`]: ProgramLibrary::merge
    pub fn evict_expired(&mut self, now: Instant) -> usize {
        let Some(ttl) = self.ttl else {
            return 0;
        };
        let mut evicted = 0usize;
        for entries in self.columns.values_mut() {
            entries.retain_mut(|entry| {
                // Every constructor stamps `touched_at` (record, merge and
                // snapshot load), so `None` cannot occur; stamping here keeps
                // the sweep total if that invariant ever slips.
                let touched_at = *entry.touched_at.get_or_insert(now);
                let expired = now.saturating_duration_since(touched_at) > ttl;
                evicted += usize::from(expired);
                !expired
            });
        }
        if evicted > 0 {
            self.evictions += evicted as u64;
            self.version += 1;
        }
        evicted
    }

    /// Caps the entries kept per column (`None` lifts the cap; a cap of 0 is
    /// clamped to 1 — an empty-by-construction library is never useful).
    /// Overflowing columns are trimmed immediately, least recently learned
    /// entries first; if anything was evicted the version is bumped ("bumped
    /// on every mutation" includes trims).
    pub fn set_column_capacity(&mut self, capacity: Option<usize>) {
        self.column_capacity = capacity.map(|c| c.max(1));
        if self.column_capacity.is_some() {
            let before = self.evictions;
            let columns: Vec<String> = self.columns.keys().cloned().collect();
            for column in columns {
                self.enforce_capacity(&column);
            }
            if self.evictions != before {
                self.version += 1;
            }
        }
    }

    /// Evicts least-recently-learned entries until `column` fits the cap.
    fn enforce_capacity(&mut self, column: &str) {
        let Some(capacity) = self.column_capacity else {
            return;
        };
        let Some(entries) = self.columns.get_mut(column) else {
            return;
        };
        while entries.len() > capacity {
            let oldest = entries
                .iter()
                .enumerate()
                .min_by_key(|(i, e)| (e.touched, *i))
                .map(|(i, _)| i)
                .expect("non-empty overflowing column");
            entries.remove(oldest);
            self.evictions += 1;
        }
    }

    /// True when no program is stored.
    pub fn is_empty(&self) -> bool {
        self.columns.values().all(Vec::is_empty)
    }

    /// Number of stored entries across all columns.
    pub fn len(&self) -> usize {
        self.columns.values().map(Vec::len).sum()
    }

    /// The column names with at least one entry.
    pub fn columns(&self) -> impl Iterator<Item = &str> {
        self.columns.keys().map(String::as_str)
    }

    /// The entries of one column (empty when unknown).
    pub fn entries(&self, column: &str) -> &[LearnedProgram] {
        self.columns.get(column).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Records an approved group under `column`. The group's member pairs are
    /// stored oriented in the approved direction; identical duplicates are
    /// merged into the existing entry.
    pub fn record(&mut self, column: &str, approved: &ApprovedGroup) {
        let touched = self.version + 1;
        let touched_at = Some(Instant::now());
        let rewrites: Vec<(String, String)> = approved
            .group
            .members()
            .iter()
            .map(|r| match approved.direction {
                Direction::Forward => (r.lhs().to_string(), r.rhs().to_string()),
                Direction::Backward => (r.rhs().to_string(), r.lhs().to_string()),
            })
            .collect();
        let entries = self.columns.entry(column.to_string()).or_default();
        if let Some(existing) = entries.iter_mut().find(|e| {
            e.direction == approved.direction && e.program.as_ref() == approved.group.program()
        }) {
            for pair in rewrites {
                if !existing.rewrites.contains(&pair) {
                    existing.rewrites.push(pair);
                }
            }
            existing.touched = touched;
            existing.touched_at = touched_at;
        } else {
            entries.push(LearnedProgram {
                program: approved.group.program().cloned(),
                direction: approved.direction,
                rewrites,
                touched,
                touched_at,
            });
        }
        self.version += 1;
        self.enforce_capacity(column);
    }

    /// Merges every entry of `other` into this library.
    pub fn merge(&mut self, other: &ProgramLibrary) {
        let touched = self.version + 1;
        let touched_at = Some(Instant::now());
        for (column, entries) in &other.columns {
            for entry in entries {
                let slot = self.columns.entry(column.clone()).or_default();
                if let Some(existing) = slot
                    .iter_mut()
                    .find(|e| e.direction == entry.direction && e.program == entry.program)
                {
                    for pair in &entry.rewrites {
                        if !existing.rewrites.contains(pair) {
                            existing.rewrites.push(pair.clone());
                        }
                    }
                    existing.touched = touched;
                    existing.touched_at = touched_at;
                } else {
                    slot.push(LearnedProgram {
                        touched,
                        touched_at,
                        ..entry.clone()
                    });
                }
            }
        }
        self.version += 1;
        for column in other.columns.keys() {
            self.enforce_capacity(column);
        }
    }

    /// Standardizes one value of `column` through the library. Precedence is
    /// deterministic: exact approved pairs first (entry insertion order),
    /// then "value is a known canonical form" (so a generalizing program can
    /// never un-standardize an already-canonical value), then deterministic
    /// forward programs as generalizers to unseen values.
    pub fn standardize_value(&self, column: &str, value: &str) -> ValueOutcome {
        let entries = self.entries(column);
        if entries.is_empty() {
            return ValueOutcome::Unmatched;
        }
        let mut known_canonical = false;
        for entry in entries {
            for (from, to) in &entry.rewrites {
                if from == value {
                    return ValueOutcome::Rewritten(to.clone());
                }
                known_canonical |= to == value;
            }
        }
        if known_canonical {
            return ValueOutcome::Unchanged;
        }
        for entry in entries {
            if entry.direction != Direction::Forward {
                continue;
            }
            let Some(program) = &entry.program else {
                continue;
            };
            if !program.is_deterministic() {
                continue;
            }
            if let Some(out) = program.eval(&StrCtx::new(value)) {
                return if out == value {
                    ValueOutcome::Unchanged
                } else {
                    ValueOutcome::Rewritten(out)
                };
            }
        }
        ValueOutcome::Unmatched
    }

    /// A reusable apply view over a fixed record schema: column lookups are
    /// resolved once, then [`LibraryApplier::apply_fields`] standardizes one
    /// record at a time (the streaming shape `ec apply` and `POST /apply`
    /// need).
    pub fn applier<'a>(&'a self, columns: &[String]) -> LibraryApplier<'a> {
        LibraryApplier {
            library: self,
            columns: columns.to_vec(),
        }
    }

    /// Serializes the library as a text snapshot (see the module docs for
    /// the role of snapshots; [`ProgramLibrary::from_snapshot`] parses them).
    pub fn to_snapshot(&self) -> String {
        let mut out = String::new();
        out.push_str(SNAPSHOT_HEADER);
        out.push('\n');
        out.push_str(&format!("version {}\n", self.version));
        for (column, entries) in &self.columns {
            if entries.is_empty() {
                continue;
            }
            out.push_str(&format!("column {}\n", quote(column)));
            for entry in entries {
                let direction = match entry.direction {
                    Direction::Forward => "forward",
                    Direction::Backward => "backward",
                };
                out.push_str(&format!("entry {direction}\n"));
                if let Some(program) = &entry.program {
                    out.push_str(&format!("program {program}\n"));
                }
                for (from, to) in &entry.rewrites {
                    out.push_str(&format!("rewrite {} {}\n", quote(from), quote(to)));
                }
            }
        }
        out
    }

    /// Parses a snapshot produced by [`ProgramLibrary::to_snapshot`]. Blank
    /// lines and `#` comments are ignored, so snapshots can be annotated by
    /// hand.
    pub fn from_snapshot(text: &str) -> Result<Self, LibraryError> {
        let fail = |line: usize, message: &str| LibraryError {
            line,
            message: message.to_string(),
        };
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
        let mut library = ProgramLibrary::new();
        let mut version_seen = false;
        // Loaded entries age from *now*: the TTL clock starts at the load,
        // not at the first sweep — a restarted server with `--library-ttl`
        // must not keep stale snapshot entries a full extra TTL.
        let loaded_at = Some(Instant::now());
        match lines.next() {
            Some((_, first)) if first.trim() == SNAPSHOT_HEADER => {}
            Some((_, first)) => {
                return Err(fail(
                    1,
                    &format!("expected header '{SNAPSHOT_HEADER}', got '{first}'"),
                ))
            }
            None => return Err(fail(0, "empty snapshot")),
        }
        let mut column: Option<String> = None;
        for (line_no, raw) in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (keyword, rest) = line.split_once(' ').unwrap_or((line, ""));
            match keyword {
                "version" => {
                    library.version = rest
                        .trim()
                        .parse()
                        .map_err(|_| fail(line_no, "version expects an integer"))?;
                    version_seen = true;
                }
                "column" => {
                    let (name, tail) = unquote(rest).map_err(|e| fail(line_no, &e.to_string()))?;
                    if !tail.trim().is_empty() {
                        return Err(fail(line_no, "trailing input after column name"));
                    }
                    library.columns.entry(name.clone()).or_default();
                    column = Some(name);
                }
                "entry" => {
                    let Some(column) = &column else {
                        return Err(fail(line_no, "entry before any column"));
                    };
                    let direction = match rest.trim() {
                        "forward" => Direction::Forward,
                        "backward" => Direction::Backward,
                        other => {
                            return Err(fail(line_no, &format!("unknown direction '{other}'")))
                        }
                    };
                    library
                        .columns
                        .get_mut(column)
                        .expect("column was inserted above")
                        .push(LearnedProgram {
                            program: None,
                            direction,
                            rewrites: Vec::new(),
                            touched: 0,
                            touched_at: loaded_at,
                        });
                }
                "program" => {
                    let entry = column
                        .as_ref()
                        .and_then(|c| library.columns.get_mut(c))
                        .and_then(|entries| entries.last_mut())
                        .ok_or_else(|| fail(line_no, "program before any entry"))?;
                    let program = rest
                        .parse::<Program>()
                        .map_err(|e| fail(line_no, &e.to_string()))?;
                    entry.program = Some(program);
                }
                "rewrite" => {
                    let entry = column
                        .as_ref()
                        .and_then(|c| library.columns.get_mut(c))
                        .and_then(|entries| entries.last_mut())
                        .ok_or_else(|| fail(line_no, "rewrite before any entry"))?;
                    let (from, tail) = unquote(rest).map_err(|e| fail(line_no, &e.to_string()))?;
                    let (to, tail) =
                        unquote(tail.trim_start()).map_err(|e| fail(line_no, &e.to_string()))?;
                    if !tail.trim().is_empty() {
                        return Err(fail(line_no, "trailing input after rewrite"));
                    }
                    entry.rewrites.push((from, to));
                }
                other => return Err(fail(line_no, &format!("unknown keyword '{other}'"))),
            }
        }
        if !version_seen {
            return Err(fail(0, "snapshot has no version line"));
        }
        Ok(library)
    }
}

/// The apply view created by [`ProgramLibrary::applier`].
#[derive(Debug, Clone)]
pub struct LibraryApplier<'a> {
    library: &'a ProgramLibrary,
    columns: Vec<String>,
}

impl LibraryApplier<'_> {
    /// Standardizes one record's fields in place and tallies the outcomes
    /// into `report`. `fields` must align with the schema the applier was
    /// created for (extra fields are left untouched).
    pub fn apply_fields(&self, fields: &mut [String], report: &mut ApplyReport) {
        report.records += 1;
        for (column, field) in self.columns.iter().zip(fields.iter_mut()) {
            match self.library.standardize_value(column, field) {
                ValueOutcome::Rewritten(out) => {
                    *field = out;
                    report.cells_rewritten += 1;
                }
                ValueOutcome::Unchanged => report.cells_unchanged += 1,
                ValueOutcome::Unmatched => report.note_unmatched(column, field),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_dsl::{Dir, PositionFn, StringFn, Term};
    use ec_graph::Replacement;

    fn initials_program() -> Program {
        Program::new(vec![
            StringFn::sub_str(
                PositionFn::match_pos(Term::Whitespace, 1, Dir::End),
                PositionFn::match_pos(Term::Upper, -1, Dir::End),
            ),
            StringFn::constant(". "),
            StringFn::sub_str(
                PositionFn::match_pos(Term::Upper, 1, Dir::Begin),
                PositionFn::match_pos(Term::Lower, 1, Dir::End),
            ),
        ])
    }

    fn approved(
        program: Option<Program>,
        direction: Direction,
        pairs: &[(&str, &str)],
    ) -> ApprovedGroup {
        ApprovedGroup {
            group: Group::new(
                program,
                pairs.iter().map(|(a, b)| Replacement::new(a, b)).collect(),
            ),
            direction,
        }
    }

    fn sample_library() -> ProgramLibrary {
        let mut library = ProgramLibrary::new();
        library.record(
            "Name",
            &approved(
                Some(initials_program()),
                Direction::Forward,
                &[("Lee, Mary", "M. Lee"), ("Smith, James", "J. Smith")],
            ),
        );
        library.record(
            "Name",
            &approved(None, Direction::Backward, &[("Mary Lee", "Lee, Mary")]),
        );
        library.record(
            "Address",
            &approved(None, Direction::Forward, &[("Street", "St")]),
        );
        library
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let library = sample_library();
        let snapshot = library.to_snapshot();
        let parsed = ProgramLibrary::from_snapshot(&snapshot).unwrap();
        assert_eq!(parsed, library);
        assert_eq!(parsed.to_snapshot(), snapshot, "serialization is stable");
        assert_eq!(parsed.version(), library.version());
        assert_eq!(parsed.len(), 3);
    }

    #[test]
    fn snapshot_survives_comments_and_blank_lines() {
        let library = sample_library();
        let annotated: String = library
            .to_snapshot()
            .lines()
            .map(|l| format!("{l}\n\n# a comment\n"))
            .collect();
        let parsed = ProgramLibrary::from_snapshot(&annotated).unwrap();
        assert_eq!(parsed, library);
    }

    #[test]
    fn snapshot_rejects_malformed_input() {
        assert!(ProgramLibrary::from_snapshot("").is_err());
        assert!(ProgramLibrary::from_snapshot("not a library\n").is_err());
        let no_version = format!("{SNAPSHOT_HEADER}\n");
        assert!(ProgramLibrary::from_snapshot(&no_version).is_err());
        for bad in [
            "entry forward\n",
            "program ConstantStr(\"x\")\n",
            "rewrite \"a\" \"b\"\n",
            "column \"Name\"\nentry sideways\n",
            "column \"Name\"\nentry forward\nprogram Nope(1)\n",
            "frobnicate\n",
        ] {
            let text = format!("{SNAPSHOT_HEADER}\nversion 1\n{bad}");
            let err = ProgramLibrary::from_snapshot(&text).unwrap_err();
            assert!(err.line >= 1, "{err}");
        }
    }

    #[test]
    fn exact_pairs_apply_before_programs() {
        let library = sample_library();
        assert_eq!(
            library.standardize_value("Name", "Lee, Mary"),
            ValueOutcome::Rewritten("M. Lee".to_string())
        );
        // The backward approval of "Mary Lee" → "Lee, Mary" made its *lhs*
        // canonical, so "Mary Lee" is recognized and left alone.
        assert_eq!(
            library.standardize_value("Name", "Mary Lee"),
            ValueOutcome::Unchanged
        );
    }

    #[test]
    fn forward_programs_generalize_to_unseen_values() {
        let library = sample_library();
        // "Stone, Olivia" was never reviewed; the initials program covers it.
        assert_eq!(
            library.standardize_value("Name", "Stone, Olivia"),
            ValueOutcome::Rewritten("O. Stone".to_string())
        );
    }

    #[test]
    fn known_canonical_values_are_left_alone() {
        let library = sample_library();
        // "M. Lee" is a rewrite target; the transposition program must not
        // drag it anywhere else.
        assert_eq!(
            library.standardize_value("Name", "M. Lee"),
            ValueOutcome::Unchanged
        );
    }

    #[test]
    fn uncovered_values_and_columns_are_unmatched() {
        let library = sample_library();
        assert_eq!(
            library.standardize_value("Name", "totally different"),
            ValueOutcome::Unmatched
        );
        assert_eq!(
            library.standardize_value("Phone", "555"),
            ValueOutcome::Unmatched
        );
    }

    #[test]
    fn applier_standardizes_records_and_reports() {
        let library = sample_library();
        let columns = vec!["Name".to_string(), "Address".to_string()];
        let applier = library.applier(&columns);
        let mut report = ApplyReport::default();
        let mut fields = vec!["Lee, Mary".to_string(), "Street".to_string()];
        applier.apply_fields(&mut fields, &mut report);
        assert_eq!(fields, vec!["M. Lee".to_string(), "St".to_string()]);
        let mut fields = vec!["M. Lee".to_string(), "unknown place".to_string()];
        applier.apply_fields(&mut fields, &mut report);
        assert_eq!(fields[1], "unknown place", "unmatched values pass through");
        assert_eq!(report.records, 2);
        assert_eq!(report.cells_rewritten, 2);
        assert_eq!(report.cells_unchanged, 1);
        assert_eq!(report.cells_unmatched, 1);
        assert_eq!(
            report.unmatched_sample,
            vec![("Address".to_string(), "unknown place".to_string())]
        );
        assert!(report.to_string().contains("2 records"));
    }

    #[test]
    fn record_merges_duplicate_programs_and_bumps_the_version() {
        let mut library = ProgramLibrary::new();
        assert_eq!(library.version(), 0);
        assert!(library.is_empty());
        let a = approved(None, Direction::Forward, &[("a", "b")]);
        library.record("C", &a);
        library.record("C", &a);
        library.record("C", &approved(None, Direction::Forward, &[("x", "y")]));
        assert_eq!(
            library.entries("C").len(),
            1,
            "same program+direction merge"
        );
        assert_eq!(library.entries("C")[0].rewrites.len(), 2);
        assert_eq!(library.version(), 3);
    }

    #[test]
    fn capacity_evicts_the_least_recently_learned_entry() {
        let mut library = ProgramLibrary::new();
        library.set_column_capacity(Some(2));
        assert_eq!(library.column_capacity(), Some(2));
        let a = approved(None, Direction::Forward, &[("a", "A")]);
        let b = approved(None, Direction::Backward, &[("b", "B")]);
        let c = approved(Some(initials_program()), Direction::Forward, &[("c", "C")]);
        library.record("Name", &a);
        library.record("Name", &b);
        // Re-recording `a` refreshes its recency, so `b` is now the oldest.
        library.record("Name", &a);
        library.record("Name", &c);
        assert_eq!(library.entries("Name").len(), 2);
        assert_eq!(library.evictions(), 1);
        assert!(
            library
                .entries("Name")
                .iter()
                .all(|e| e.direction == Direction::Forward),
            "the backward entry was least recently learned and must be gone"
        );
        // Capacity is per column: another column starts fresh.
        library.record(
            "Address",
            &approved(None, Direction::Forward, &[("d", "D")]),
        );
        assert_eq!(library.entries("Address").len(), 1);
        assert_eq!(library.evictions(), 1);
    }

    #[test]
    fn lowering_the_capacity_trims_existing_columns() {
        let mut library = sample_library();
        assert_eq!(library.entries("Name").len(), 2);
        let version_before = library.version();
        library.set_column_capacity(Some(1));
        assert_eq!(library.entries("Name").len(), 1);
        assert_eq!(library.entries("Address").len(), 1);
        assert_eq!(library.evictions(), 1);
        assert_eq!(
            library.version(),
            version_before + 1,
            "a trim is a mutation and must bump the version"
        );
        // A cap of zero is clamped: the library never evicts itself empty.
        library.set_column_capacity(Some(0));
        assert_eq!(library.column_capacity(), Some(1));
        assert!(!library.is_empty());
        // Capacity and eviction statistics are runtime state, not content:
        // the snapshot round trip still compares equal.
        let parsed = ProgramLibrary::from_snapshot(&library.to_snapshot()).unwrap();
        assert_eq!(parsed, library);
        assert_eq!(parsed.column_capacity(), None);
    }

    #[test]
    fn merge_respects_the_capacity_of_the_receiving_library() {
        let mut small = ProgramLibrary::new();
        small.set_column_capacity(Some(1));
        small.merge(&sample_library());
        assert_eq!(small.entries("Name").len(), 1);
        assert_eq!(small.entries("Address").len(), 1);
        assert_eq!(small.evictions(), 1);
    }

    #[test]
    fn ttl_expires_untouched_entries_and_snapshot_loads_age_from_load_time() {
        let mut library = ProgramLibrary::new();
        let start = Instant::now();
        library.record("Name", &approved(None, Direction::Forward, &[("a", "A")]));
        assert_eq!(library.evict_expired(start), 0, "no TTL, no evictions");
        library.set_ttl(Some(Duration::from_secs(60)));
        assert_eq!(library.ttl(), Some(Duration::from_secs(60)));
        assert_eq!(
            library.evict_expired(start + Duration::from_secs(30)),
            0,
            "entries younger than the TTL survive"
        );
        let version_before = library.version();
        assert_eq!(library.evict_expired(start + Duration::from_secs(3600)), 1);
        assert!(library.is_empty());
        assert_eq!(library.evictions(), 1);
        assert_eq!(
            library.version(),
            version_before + 1,
            "expiry is a mutation and must bump the version"
        );

        // A zero TTL is clamped — the library never expires entries the
        // instant they are learned.
        library.set_ttl(Some(Duration::ZERO));
        assert_eq!(library.ttl(), Some(Duration::from_secs(1)));

        // Snapshot-loaded entries are stamped at load time: a sweep inside
        // the TTL keeps them, and one past it evicts them — even when it is
        // the *first* sweep. (Lazily stamping on the first sweep instead
        // used to keep a restarted server's stale entries a full extra TTL.)
        let loaded_at = Instant::now();
        let mut loaded = ProgramLibrary::from_snapshot(&sample_library().to_snapshot()).unwrap();
        loaded.set_ttl(Some(Duration::from_secs(60)));
        assert_eq!(loaded.evict_expired(loaded_at + Duration::from_secs(30)), 0);
        assert_eq!(loaded.len(), 3);
        let mut stale = ProgramLibrary::from_snapshot(&sample_library().to_snapshot()).unwrap();
        stale.set_ttl(Some(Duration::from_secs(60)));
        assert_eq!(
            stale.evict_expired(loaded_at + Duration::from_secs(3600)),
            3,
            "the very first sweep already evicts entries older than one TTL since the load"
        );
        assert!(stale.is_empty());
    }

    #[test]
    fn ttl_touch_refreshes_recency() {
        let mut library = ProgramLibrary::new();
        library.set_ttl(Some(Duration::from_secs(60)));
        let a = approved(None, Direction::Forward, &[("a", "A")]);
        library.record("Name", &a);
        let recorded = Instant::now();
        // Re-recording the same program refreshes the entry's stamp; the
        // sweep time is chosen inside (recorded, recorded + ttl) relative to
        // the refresh, so only a *stale* stamp would expire.
        library.record("Name", &a);
        assert_eq!(library.evict_expired(recorded + Duration::from_secs(30)), 0);
        assert_eq!(library.entries("Name").len(), 1);
    }

    #[test]
    fn merge_unions_two_libraries() {
        let mut a = ProgramLibrary::new();
        a.record("C", &approved(None, Direction::Forward, &[("a", "b")]));
        let mut b = ProgramLibrary::new();
        b.record("C", &approved(None, Direction::Forward, &[("c", "d")]));
        b.record("D", &approved(None, Direction::Backward, &[("e", "f")]));
        a.merge(&b);
        assert_eq!(a.entries("C")[0].rewrites.len(), 2);
        assert_eq!(a.entries("D").len(), 1);
    }
}
