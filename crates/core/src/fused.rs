//! The fused resolve → standardize → truth-discovery stage.
//!
//! `ec resolve` and `ec consolidate` historically ran as two passes that
//! round-tripped through a full clustered CSV on disk. [`FusedPipeline`]
//! removes the intermediate file: it wires an [`ec_data::RecordStream`]
//! straight through the streaming resolver
//! ([`ec_resolution::Resolver::resolve_stream`]) into
//! [`Pipeline::golden_records`], so flat records go in one end and golden
//! records come out the other while only the resolved dataset (never the
//! input document) is held in memory.
//!
//! The output is bit-identical to the two-pass flow on the same input: the
//! streaming resolver reproduces the batch resolver exactly, and the
//! clustered-CSV round trip between the passes is order-preserving.

use crate::oracle::Oracle;
use crate::pipeline::{GoldenRecordReport, Pipeline, TruthMethod};
use ec_data::{Dataset, DatasetIoError, RecordStream};
use ec_resolution::{Resolver, ResolverConfig};

use crate::pipeline::ConsolidationConfig;

/// The outcome of a fused run: the resolved-and-standardized dataset plus the
/// golden-record report.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedRun {
    /// The resolved clusters after standardization.
    pub dataset: Dataset,
    /// Per-column standardization reports and the golden records.
    pub report: GoldenRecordReport,
}

/// The fused pipeline: entity resolution feeding entity consolidation
/// without an intermediate file.
#[derive(Debug, Clone)]
pub struct FusedPipeline {
    resolver: Resolver,
    pipeline: Pipeline,
}

impl FusedPipeline {
    /// Creates a fused pipeline from the two stages' configurations.
    pub fn new(resolver: ResolverConfig, consolidation: ConsolidationConfig) -> Self {
        // Pair scoring shards over the same thread budget as the
        // consolidation stages; output is bit-identical for every setting.
        let parallelism = consolidation.candidates.parallelism;
        FusedPipeline {
            resolver: Resolver::new(resolver).with_parallelism(parallelism),
            pipeline: Pipeline::new(consolidation),
        }
    }

    /// The resolution stage.
    pub fn resolver(&self) -> &Resolver {
        &self.resolver
    }

    /// The consolidation stage.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Resolves the stream into clusters (streaming; the input document is
    /// never materialized).
    pub fn resolve_stream<S: RecordStream + ?Sized>(
        &self,
        name: &str,
        stream: &mut S,
    ) -> Result<Dataset, DatasetIoError> {
        self.resolver.resolve_stream(name, stream)
    }

    /// The full fused run with one oracle for every column: resolve the
    /// stream, then wire the result straight into
    /// [`Pipeline::golden_records`].
    pub fn run<S: RecordStream + ?Sized>(
        &self,
        name: &str,
        stream: &mut S,
        oracle: &mut dyn Oracle,
        method: TruthMethod,
    ) -> Result<FusedRun, DatasetIoError> {
        let mut dataset = self.resolve_stream(name, stream)?;
        let report = self.pipeline.golden_records(&mut dataset, oracle, method);
        Ok(FusedRun { dataset, report })
    }

    /// The full fused run with a fresh oracle per column, built by
    /// `make_oracle` from the dataset *as standardized so far* — the shape
    /// the CLI needs, where the simulated expert for column `c` is seeded
    /// from the dataset state after columns `0..c` were standardized.
    pub fn run_with<S, F>(
        &self,
        name: &str,
        stream: &mut S,
        mut make_oracle: F,
        method: TruthMethod,
    ) -> Result<FusedRun, DatasetIoError>
    where
        S: RecordStream + ?Sized,
        F: FnMut(&Dataset, usize) -> Box<dyn Oracle>,
    {
        let mut dataset = self.resolve_stream(name, stream)?;
        let columns = (0..dataset.columns.len())
            .map(|col| {
                let mut oracle = make_oracle(&dataset, col);
                self.pipeline
                    .standardize_column(&mut dataset, col, oracle.as_mut())
            })
            .collect();
        let golden_records = self.pipeline.discover_golden_records(&dataset, method);
        Ok(FusedRun {
            dataset,
            report: GoldenRecordReport {
                columns,
                golden_records,
            },
        })
    }
}

impl Default for FusedPipeline {
    fn default() -> Self {
        FusedPipeline::new(ResolverConfig::default(), ConsolidationConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{ApproveAllOracle, SimulatedOracle};
    use ec_data::{dataset_from_csv, dataset_to_csv, FlatCsvReader, FlatRecord, VecRecordStream};

    /// Flat records with name variants that resolve into two clusters.
    fn flat_records() -> (Vec<String>, Vec<FlatRecord>) {
        let columns = vec!["Name".to_string(), "Address".to_string()];
        let rows = [
            (0, ["Mary Lee", "9 St, 02141 Wisconsin"]),
            (1, ["M. Lee", "9th St, 02141 WI"]),
            (2, ["Lee, Mary", "9 Street, 02141 WI"]),
            (0, ["Smith, James", "5th St, 22701 California"]),
            (1, ["James Smith", "3rd E Ave, 33990 California"]),
            (2, ["J. Smith", "3 E Avenue, 33990 CA"]),
        ];
        let records = rows
            .into_iter()
            .map(|(source, fields)| FlatRecord {
                source,
                fields: fields.into_iter().map(str::to_string).collect(),
            })
            .collect();
        (columns, records)
    }

    #[test]
    fn fused_run_produces_golden_records_without_an_intermediate_file() {
        let (columns, records) = flat_records();
        let fused = FusedPipeline::new(
            ec_resolution::ResolverConfig {
                threshold: 0.5,
                ..Default::default()
            },
            ConsolidationConfig {
                budget: 20,
                ..Default::default()
            },
        );
        let mut stream = VecRecordStream::new(columns, records);
        let run = fused
            .run(
                "fused",
                &mut stream,
                &mut ApproveAllOracle,
                TruthMethod::MajorityConsensus,
            )
            .unwrap();
        assert_eq!(run.report.columns.len(), 2);
        assert_eq!(run.report.golden_records.len(), run.dataset.clusters.len());
        assert!(run.dataset.clusters.len() < 6, "similar records merged");
    }

    #[test]
    fn fused_run_matches_the_two_pass_flow() {
        // Two-pass: resolve → clustered CSV → parse → standardize per column.
        let (columns, records) = flat_records();
        let resolver_config = ec_resolution::ResolverConfig {
            threshold: 0.5,
            ..Default::default()
        };
        let consolidation = ConsolidationConfig {
            budget: 15,
            ..Default::default()
        };

        let resolver = ec_resolution::Resolver::new(resolver_config.clone());
        let raw: Vec<ec_resolution::RawRecord> = records
            .iter()
            .map(|r| ec_resolution::RawRecord {
                source: r.source,
                fields: r.fields.clone(),
            })
            .collect();
        let resolved = resolver.resolve_to_dataset("resolved", columns.clone(), &raw, None);
        let csv = dataset_to_csv(&resolved);
        let mut two_pass = dataset_from_csv("input", &csv).unwrap();
        let pipeline = Pipeline::new(consolidation.clone());
        let mut reports = Vec::new();
        for col in 0..two_pass.columns.len() {
            let mut oracle = SimulatedOracle::for_column(&two_pass, col, 7 + col as u64);
            reports.push(pipeline.standardize_column(&mut two_pass, col, &mut oracle));
        }
        let two_pass_golden =
            pipeline.discover_golden_records(&two_pass, TruthMethod::MajorityConsensus);

        // Fused: same records, no intermediate CSV.
        let fused = FusedPipeline::new(resolver_config, consolidation);
        let mut stream = VecRecordStream::new(columns, records);
        let run = fused
            .run_with(
                "input",
                &mut stream,
                |dataset, col| Box::new(SimulatedOracle::for_column(dataset, col, 7 + col as u64)),
                TruthMethod::MajorityConsensus,
            )
            .unwrap();

        assert_eq!(run.dataset.clusters, two_pass.clusters);
        assert_eq!(run.report.columns, reports);
        assert_eq!(run.report.golden_records, two_pass_golden);
        assert_eq!(dataset_to_csv(&run.dataset), dataset_to_csv(&two_pass));
    }

    #[test]
    fn stream_errors_abort_the_run() {
        let text = "source,Name\n0,ok\nnope,bad\n";
        let mut stream = FlatCsvReader::new(text.as_bytes()).unwrap();
        let result = FusedPipeline::default().run(
            "x",
            &mut stream,
            &mut ApproveAllOracle,
            TruthMethod::MajorityConsensus,
        );
        assert!(result.is_err());
    }
}
