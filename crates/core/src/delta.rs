//! Library-first incremental ingest — the `DeltaPipeline` orchestrator.
//!
//! The paper's loop is offline: every run re-resolves all records and re-runs
//! pivot search over every candidate replacement. A production service should
//! pay that cost only for *novel* variation. This module keeps the whole
//! pipeline state alive between batches and re-derives each batch's output as
//! a full logical rerun in which the expensive pieces are memoized:
//!
//! * **Resolution** rides on [`DeltaResolver`]: records are pushed once,
//!   blocks and the sorted-neighborhood key list grow incrementally, and pair
//!   scores are cached by value content, so a batch of already-seen values
//!   scores nothing.
//! * **Candidate generation** is cached per cluster, keyed by the cluster's
//!   value vector. Clusters are independent (`generate_candidates` shards by
//!   cluster), and the union-find emits clusters ordered by smallest member,
//!   so cluster order is stable under appends and the merged candidate set is
//!   bit-identical to a fresh global generation.
//! * **Grouping** reuses prepared structure partitions: a partition whose
//!   members are unchanged reuses its [`PreparedGraphs`] as-is; a partition
//!   that only gained members at the end grows a clone via
//!   [`PreparedGraphs::append`] (new postings appended to the CSR index, only
//!   touched label ranges re-sorted); anything else is rebuilt. When the whole
//!   candidate list of a column is unchanged — the steady state for batches of
//!   seen shapes — the previously emitted group sequence is replayed without
//!   touching the grouper at all (group emission order depends only on the
//!   candidate list and the grouping config, never on oracle verdicts).
//!
//! The oracle review loop itself is re-run every batch (simulated-oracle
//! verdicts depend on current cluster contents and are cheap), and truth
//! discovery runs over the full standardized dataset, so after any sequence
//! of batches the standardized dataset and golden records are exactly what a
//! one-shot run over the union of all inputs would produce — byte-identical,
//! at any thread count.
//!
//! The **fast path** is an accounting lens over the same machinery: a record
//! whose every field is either an already-seen value or is mapped onto one by
//! the [`ProgramLibrary`] counts as a *library hit* (its consolidation outcome
//! is already determined — resolution finds its twin via the pair cache and
//! grouping replays); everything else is *residue* that pays for new pair
//! scores, candidate generation and pivot searches. The hit/residue split is
//! reported per batch and drives the serve-layer `X-Ec-Library-Hits` /
//! `X-Ec-Library-Misses` counters.
//!
//! Memory note: the per-cluster candidate cache keeps superseded entries (an
//! entry for a cluster's previous value vector lingers after the cluster
//! grows). This trades memory for never recomputing when a later batch
//! reverts to a previously seen shape. Long-running sessions can bound it
//! with [`DeltaPipeline::with_cache_cap`] (`--ingest-cache-cap` on the CLI
//! and server): when the cache exceeds the cap, the least-recently-hit
//! entries are evicted — results never change, an evicted shape is simply
//! regenerated on its next appearance. Evictions are counted in the
//! `ec_ingest_cache_evictions_total` registry metric.

use crate::consolidate::{write_golden_records_csv, AutoMode};
use crate::library::{ApprovedGroup, ProgramLibrary, ValueOutcome};
use crate::oracle::{ApproveAllOracle, Oracle, SimulatedOracle, Verdict};
use crate::pipeline::{ColumnReport, ConsolidationConfig, Pipeline, TruthMethod};
use ec_data::Dataset;
use ec_graph::{structure::replacement_structure, Replacement, ReplacementStructure};
use ec_grouping::{
    partition_replacements, Group, GroupingConfig, PreparedGraphs, StructuredGrouper,
};
use ec_replace::{generate_candidates, CandidateSet, CellRef, ReplacementEngine};
use ec_resolution::{DeltaResolver, RawRecord, ResolverConfig};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Per-batch outcome of [`DeltaPipeline::ingest_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Records in this batch.
    pub batch_records: usize,
    /// Records ingested so far, across all batches.
    pub total_records: usize,
    /// Clusters after resolving this batch.
    pub clusters: usize,
    /// Batch records on the fast path: every field was an already-seen value
    /// or was mapped onto one by the program library.
    pub library_hits: usize,
    /// Batch records that entered the residue path (`batch_records -
    /// library_hits`).
    pub residue: usize,
    /// Columns whose group sequence was replayed from cache because the
    /// candidate list was unchanged (no pivot search ran at all).
    pub replayed_columns: usize,
    /// Per-column standardization reports, identical in shape to the one-shot
    /// pipeline's.
    pub columns: Vec<ColumnReport>,
}

/// Cached grouping state of one structure partition.
struct CachedPartition {
    members: Vec<Replacement>,
    prepared: Arc<PreparedGraphs>,
}

/// Registry handles for the delta pipeline's cache behaviour.
struct IngestMetrics {
    cache_hits: ec_obs::Counter,
    cache_misses: ec_obs::Counter,
    cache_evictions: ec_obs::Counter,
    replayed_columns: ec_obs::Counter,
}

fn ingest_metrics() -> &'static IngestMetrics {
    static METRICS: std::sync::OnceLock<IngestMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| IngestMetrics {
        cache_hits: ec_obs::counter(
            "ec_ingest_cache_hits_total",
            "Cluster value vectors whose candidate contribution was served from cache.",
        ),
        cache_misses: ec_obs::counter(
            "ec_ingest_cache_misses_total",
            "Cluster value vectors whose candidate contribution had to be generated.",
        ),
        cache_evictions: ec_obs::counter(
            "ec_ingest_cache_evictions_total",
            "Candidate-cache entries evicted by the --ingest-cache-cap bound.",
        ),
        replayed_columns: ec_obs::counter(
            "ec_ingest_replayed_columns_total",
            "Columns whose group sequence was replayed without any pivot search.",
        ),
    })
}

/// One cluster's cached candidate contribution plus its recency stamp for
/// least-recently-hit eviction.
struct CachedContribution {
    set: CandidateSet,
    /// Value of the column's tick counter at the last lookup; ticks are
    /// unique, so eviction order is deterministic.
    last_hit: u64,
}

/// The memoized per-column state.
#[derive(Default)]
struct ColumnCache {
    /// Candidate contributions keyed by a cluster's value vector (the
    /// contribution's [`CellRef`]s carry cluster index 0 and are rebound on
    /// merge).
    contributions: HashMap<Vec<String>, CachedContribution>,
    /// Monotone lookup counter backing `CachedContribution::last_hit`.
    tick: u64,
    /// The last emitted group sequence, keyed by the exact candidate list it
    /// was computed from. At most `budget` groups are stored.
    groups: Option<(Vec<Replacement>, Vec<Group>)>,
    /// Prepared graphs per structure partition, grown via
    /// [`PreparedGraphs::append`] when members only get appended.
    partitions: HashMap<ReplacementStructure, CachedPartition>,
}

impl ColumnCache {
    /// Evicts least-recently-hit contributions until the cache fits `cap`.
    /// Returns how many entries were dropped. Entries touched by the current
    /// batch carry fresh ticks, so superseded value vectors go first.
    fn evict_over_cap(&mut self, cap: usize) -> usize {
        if self.contributions.len() <= cap {
            return 0;
        }
        let excess = self.contributions.len() - cap;
        let mut by_recency: Vec<(u64, Vec<String>)> = self
            .contributions
            .iter()
            .map(|(key, cached)| (cached.last_hit, key.clone()))
            .collect();
        by_recency.sort_unstable();
        for (_, key) in by_recency.into_iter().take(excess) {
            self.contributions.remove(&key);
        }
        excess
    }
}

/// The incremental ingest orchestrator: feed record batches with
/// [`DeltaPipeline::ingest_batch`], read the consolidated state back with
/// [`DeltaPipeline::standardized`] / [`DeltaPipeline::golden`].
pub struct DeltaPipeline {
    resolver: DeltaResolver,
    pipeline: Pipeline,
    mode: AutoMode,
    truth: TruthMethod,
    name: String,
    columns: Vec<String>,
    library: ProgramLibrary,
    /// Raw observed values per column, for fast-path accounting.
    seen_values: Vec<HashSet<String>>,
    caches: Vec<ColumnCache>,
    standardized: Option<Dataset>,
    golden: Vec<Vec<Option<String>>>,
    batches: usize,
    library_hits: u64,
    library_misses: u64,
    /// Per-column bound on cached candidate contributions (`None` =
    /// unbounded, the historical behaviour).
    cache_cap: Option<usize>,
    cache_evictions: u64,
}

impl DeltaPipeline {
    /// Creates an empty pipeline over the given schema and configuration.
    pub fn new(
        name: &str,
        columns: Vec<String>,
        resolver: ResolverConfig,
        consolidation: ConsolidationConfig,
        mode: AutoMode,
        truth: TruthMethod,
    ) -> Self {
        let num_columns = columns.len();
        let parallelism = consolidation.candidates.parallelism;
        DeltaPipeline {
            resolver: DeltaResolver::new(resolver).with_parallelism(parallelism),
            pipeline: Pipeline::new(consolidation),
            mode,
            truth,
            name: name.to_string(),
            columns,
            library: ProgramLibrary::new(),
            seen_values: (0..num_columns).map(|_| HashSet::new()).collect(),
            caches: (0..num_columns).map(|_| ColumnCache::default()).collect(),
            standardized: None,
            golden: Vec::new(),
            batches: 0,
            library_hits: 0,
            library_misses: 0,
            cache_cap: None,
            cache_evictions: 0,
        }
    }

    /// Bounds the per-column candidate-contribution cache to `cap` entries
    /// (least-recently-hit eviction; 0 or `None` = unbounded). Outputs are
    /// unaffected — an evicted shape is regenerated when it next appears.
    pub fn with_cache_cap(mut self, cap: Option<usize>) -> Self {
        self.cache_cap = cap.filter(|&c| c > 0);
        self
    }

    /// Candidate-cache entries evicted so far under
    /// [`DeltaPipeline::with_cache_cap`].
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions
    }

    /// The dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The consolidation configuration in use.
    pub fn config(&self) -> &ConsolidationConfig {
        self.pipeline.config()
    }

    /// Records ingested so far.
    pub fn len(&self) -> usize {
        self.resolver.len()
    }

    /// True when no record has been ingested.
    pub fn is_empty(&self) -> bool {
        self.resolver.is_empty()
    }

    /// Batches ingested so far.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Total fast-path hits across all batches.
    pub fn library_hits(&self) -> u64 {
        self.library_hits
    }

    /// Total residue records across all batches.
    pub fn library_misses(&self) -> u64 {
        self.library_misses
    }

    /// The programs learned so far (grows as batches approve groups).
    pub fn library(&self) -> &ProgramLibrary {
        &self.library
    }

    /// The standardized dataset after the latest batch (`None` before the
    /// first batch).
    pub fn standardized(&self) -> Option<&Dataset> {
        self.standardized.as_ref()
    }

    /// The golden records after the latest batch.
    pub fn golden(&self) -> &[Vec<Option<String>>] {
        &self.golden
    }

    /// Writes the current golden records as CSV — the same serialization the
    /// one-shot pipeline uses, so delta and full-rebuild outputs can be
    /// byte-compared.
    pub fn write_golden_csv(&self, out: &mut dyn std::io::Write) -> std::io::Result<()> {
        write_golden_records_csv(&self.columns, &self.golden, out)
    }

    /// True when every field of `record` is an already-seen value or is
    /// mapped onto one by the learned library — i.e. the record's shape is
    /// fully known and its consolidation outcome is already determined.
    fn is_library_hit(&self, record: &RawRecord) -> bool {
        if record.fields.is_empty() {
            return false;
        }
        record
            .fields
            .iter()
            .take(self.columns.len())
            .enumerate()
            .all(|(col, field)| {
                if self.seen_values[col].contains(field) {
                    return true;
                }
                match self.library.standardize_value(&self.columns[col], field) {
                    ValueOutcome::Rewritten(v) => self.seen_values[col].contains(&v),
                    ValueOutcome::Unchanged => true,
                    ValueOutcome::Unmatched => false,
                }
            })
    }

    /// Ingests one batch: resolves the records into the incremental cluster
    /// state, re-standardizes every column (replaying cached group sequences
    /// where the candidates are unchanged), records newly approved groups
    /// into the library, and re-runs truth discovery.
    pub fn ingest_batch(&mut self, records: Vec<RawRecord>) -> BatchReport {
        // Fast-path accounting against the state *before* this batch: a hit
        // means the record would be resolved by lookups alone.
        let hits = records.iter().filter(|r| self.is_library_hit(r)).count();
        let batch_records = records.len();

        for record in records {
            for (col, field) in record.fields.iter().take(self.columns.len()).enumerate() {
                if !self.seen_values[col].contains(field) {
                    self.seen_values[col].insert(field.clone());
                }
            }
            self.resolver.push(record);
        }

        let mut dataset = self.resolver.snapshot(&self.name, self.columns.clone());
        let clusters = dataset.clusters.len();

        let mut reports = Vec::with_capacity(self.columns.len());
        let mut replayed_columns = 0;
        for col in 0..self.columns.len() {
            let (report, replayed) = standardize_column_delta(
                &mut self.caches[col],
                self.pipeline.config(),
                &mut dataset,
                col,
                self.mode,
                &self.columns[col],
                &mut self.library,
            );
            if replayed {
                replayed_columns += 1;
            }
            if let Some(cap) = self.cache_cap {
                let evicted = self.caches[col].evict_over_cap(cap);
                if evicted > 0 {
                    self.cache_evictions += evicted as u64;
                    ingest_metrics().cache_evictions.add(evicted as u64);
                }
            }
            reports.push(report);
        }
        ingest_metrics()
            .replayed_columns
            .add(replayed_columns as u64);
        self.golden = self.pipeline.discover_golden_records(&dataset, self.truth);
        self.standardized = Some(dataset);
        self.batches += 1;
        self.library_hits += hits as u64;
        self.library_misses += (batch_records - hits) as u64;

        BatchReport {
            batch_records,
            total_records: self.resolver.len(),
            clusters,
            library_hits: hits,
            residue: batch_records - hits,
            replayed_columns,
            columns: reports,
        }
    }
}

/// Merges per-cluster cached candidate contributions into the column's global
/// candidate set, generating (and caching) the contribution of any cluster
/// whose value vector has not been seen before.
///
/// This reproduces `generate_candidates(&values, config)` exactly: clusters
/// are independent, contributions are appended in cluster order (first-seen
/// candidate order equals the sequential scan's), and cells from different
/// clusters are always distinct so the per-cell dedup scan can be skipped.
fn merged_candidates(
    cache: &mut ColumnCache,
    values: &[Vec<String>],
    config: &ConsolidationConfig,
) -> CandidateSet {
    let metrics = ingest_metrics();
    let mut merged = CandidateSet::default();
    for (c, cluster_values) in values.iter().enumerate() {
        cache.tick += 1;
        let tick = cache.tick;
        match cache.contributions.get_mut(cluster_values) {
            Some(cached) => {
                cached.last_hit = tick;
                metrics.cache_hits.inc();
            }
            None => {
                let set =
                    generate_candidates(std::slice::from_ref(cluster_values), &config.candidates);
                cache.contributions.insert(
                    cluster_values.clone(),
                    CachedContribution {
                        set,
                        last_hit: tick,
                    },
                );
                metrics.cache_misses.inc();
            }
        }
        let contrib = &cache.contributions[cluster_values].set;
        for r in &contrib.replacements {
            let cells = contrib.set(r);
            merged
                .sets
                .entry(r.clone())
                .or_insert_with(|| {
                    merged.replacements.push(r.clone());
                    Vec::new()
                })
                .extend(cells.iter().map(|cell| CellRef {
                    cluster: c,
                    row: cell.row,
                }));
        }
    }
    merged
}

/// Returns the prepared graphs for one structure partition, reusing or
/// growing the cached state when possible.
fn prepared_for(
    cache: &mut ColumnCache,
    members: &[Replacement],
    grouping: &GroupingConfig,
) -> Arc<PreparedGraphs> {
    let Some(first) = members.first() else {
        return Arc::new(PreparedGraphs::build(members, grouping));
    };
    let sig = replacement_structure(first.lhs(), first.rhs());
    if let Some(cached) = cache.partitions.get_mut(&sig) {
        if cached.members == members {
            return Arc::clone(&cached.prepared);
        }
        if members.len() > cached.members.len()
            && members[..cached.members.len()] == cached.members[..]
        {
            // The partition only gained members at the end (the common case:
            // novel clusters append their candidates after all existing
            // ones) — grow a copy instead of rebuilding from scratch.
            let mut grown = (*cached.prepared).clone();
            grown.append(&members[cached.members.len()..], grouping);
            let arc = Arc::new(grown);
            cached.members = members.to_vec();
            cached.prepared = Arc::clone(&arc);
            return arc;
        }
    }
    let arc = Arc::new(PreparedGraphs::build(members, grouping));
    cache.partitions.insert(
        sig,
        CachedPartition {
            members: members.to_vec(),
            prepared: Arc::clone(&arc),
        },
    );
    arc
}

/// Computes the group sequence a fresh `StructuredGrouper` would emit for
/// `candidates` (truncated at `budget` — the review loop never looks
/// further), reusing prepared partitions from the cache.
fn emit_groups(
    cache: &mut ColumnCache,
    candidates: &[Replacement],
    grouping: &GroupingConfig,
    budget: usize,
) -> Vec<Group> {
    let compiled: Vec<(Vec<Replacement>, Arc<PreparedGraphs>)> =
        partition_replacements(candidates, grouping)
            .into_iter()
            .map(|members| {
                let prepared = prepared_for(cache, &members, grouping);
                (members, prepared)
            })
            .collect();
    let mut grouper = StructuredGrouper::from_compiled(compiled, grouping.clone());
    let mut seq = Vec::new();
    while seq.len() < budget {
        match grouper.next_group() {
            Some(g) => seq.push(g),
            None => break,
        }
    }
    seq
}

/// Standardizes one column of the snapshot in place — the delta twin of the
/// one-shot pipeline's traced column standardization, with identical
/// observable behavior. Returns the column report and whether the group
/// sequence was replayed from cache.
fn standardize_column_delta(
    cache: &mut ColumnCache,
    config: &ConsolidationConfig,
    dataset: &mut Dataset,
    col: usize,
    mode: AutoMode,
    column_name: &str,
    library: &mut ProgramLibrary,
) -> (ColumnReport, bool) {
    let values = dataset.column_values(col);
    let merged = merged_candidates(cache, &values, config);
    let mut engine = ReplacementEngine::from_parts(values, merged);
    let candidates = engine.candidates();

    let budget = config.budget;
    let replayed = matches!(&cache.groups, Some((key, _)) if *key == candidates);
    if !replayed {
        let seq = emit_groups(cache, &candidates, &config.grouping, budget);
        cache.groups = Some((candidates.clone(), seq));
    }

    // Resolver snapshots always carry ground truth (truth := observed), so
    // the oracle selection matches the one-shot path with `has_truth = true`.
    // The oracle is rebuilt every batch: simulated verdicts depend on current
    // cluster contents and are never replayed.
    let mut oracle: Box<dyn Oracle> = if mode == AutoMode::Auto {
        Box::new(SimulatedOracle::for_column(dataset, col, 7 + col as u64))
    } else {
        Box::new(ApproveAllOracle)
    };

    let (_, groups) = cache.groups.as_ref().expect("groups just cached");
    let mut reviewed = 0;
    let mut approved: Vec<ApprovedGroup> = Vec::new();
    for group in groups {
        if reviewed >= budget {
            break;
        }
        reviewed += 1;
        if let Verdict::Approve(direction) = oracle.review(group) {
            engine.apply_group(group.members(), direction);
            approved.push(ApprovedGroup {
                group: group.clone(),
                direction,
            });
        }
    }

    let report = ColumnReport {
        column: col,
        candidates: candidates.len(),
        groups_reviewed: reviewed,
        groups_approved: approved.len(),
        cells_updated: engine.cells_updated(),
    };
    dataset.set_column_values(col, engine.into_values());
    for group in &approved {
        library.record(column_name, group);
    }
    (report, replayed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consolidate::standardize_columns;
    use ec_data::VecRecordStream;
    use ec_resolution::Resolver;

    const COLUMNS: [&str; 2] = ["Name", "Address"];

    /// A small corpus with enough shared variation that resolution clusters
    /// records and grouping finds multi-member groups.
    fn corpus() -> Vec<RawRecord> {
        let rows: Vec<(usize, [&str; 2])> = vec![
            (0, ["Mary Lee", "9 St, 02141 Wisconsin"]),
            (1, ["M. Lee", "9th St, 02141 WI"]),
            (2, ["Lee, Mary", "9 St, 02141 Wisconsin"]),
            (0, ["James Smith", "3rd E Ave, 33990 Wisconsin"]),
            (1, ["Smith, James", "3rd E Ave, 33990 WI"]),
            (2, ["J. Smith", "3rd E Ave, 33990 Wisconsin"]),
            (0, ["Anna Kim", "12 Oak St, 02141 Wisconsin"]),
            (1, ["Kim, Anna", "12 Oak St, 02141 WI"]),
            (0, ["Bob Stone", "7 Pine Ave, 33990 Wisconsin"]),
            (1, ["Stone, Bob", "7 Pine Ave, 33990 WI"]),
        ];
        rows.into_iter()
            .map(|(source, fields)| RawRecord::new(source, fields))
            .collect()
    }

    fn columns() -> Vec<String> {
        COLUMNS.iter().map(|c| c.to_string()).collect()
    }

    /// The one-shot path: resolve everything at once, standardize, discover
    /// golden records — exactly what `ec pipeline` does.
    fn one_shot(
        records: &[RawRecord],
        mode: AutoMode,
    ) -> (Dataset, Vec<Vec<Option<String>>>, ProgramLibrary) {
        let resolver = Resolver::new(ResolverConfig::default());
        let mut stream = VecRecordStream::new(
            columns(),
            records
                .iter()
                .map(|r| ec_data::FlatRecord {
                    source: r.source,
                    fields: r.fields.clone(),
                })
                .collect(),
        );
        let mut dataset = resolver.resolve_stream("delta-test", &mut stream).unwrap();
        let pipeline = Pipeline::new(ConsolidationConfig::default());
        let mut library = ProgramLibrary::new();
        let cols: Vec<usize> = (0..dataset.columns.len()).collect();
        standardize_columns(
            &pipeline,
            &mut dataset,
            &cols,
            mode,
            true,
            Some(&mut library),
        );
        let golden = pipeline.discover_golden_records(&dataset, TruthMethod::MajorityConsensus);
        (dataset, golden, library)
    }

    fn delta_over_splits(
        records: &[RawRecord],
        boundaries: &[usize],
        mode: AutoMode,
    ) -> DeltaPipeline {
        let mut delta = DeltaPipeline::new(
            "delta-test",
            columns(),
            ResolverConfig::default(),
            ConsolidationConfig::default(),
            mode,
            TruthMethod::MajorityConsensus,
        );
        let mut start = 0;
        for &end in boundaries.iter().chain(std::iter::once(&records.len())) {
            delta.ingest_batch(records[start..end].to_vec());
            start = end;
        }
        delta
    }

    #[test]
    fn delta_batches_match_the_one_shot_pipeline() {
        let records = corpus();
        for mode in [AutoMode::ApproveAll, AutoMode::Auto] {
            let (expected, expected_golden, expected_library) = one_shot(&records, mode);
            for boundaries in [vec![], vec![3], vec![1, 2, 5, 9], vec![4, 8]] {
                let delta = delta_over_splits(&records, &boundaries, mode);
                assert_eq!(
                    delta.standardized(),
                    Some(&expected),
                    "standardized dataset diverged (mode {mode:?}, splits {boundaries:?})"
                );
                assert_eq!(
                    delta.golden(),
                    expected_golden.as_slice(),
                    "golden records diverged (mode {mode:?}, splits {boundaries:?})"
                );
                // The library must end up with the same learned programs.
                assert_eq!(delta.library().len(), expected_library.len());
                // And the golden CSV must be byte-identical.
                let mut ours = Vec::new();
                delta.write_golden_csv(&mut ours).unwrap();
                let mut theirs = Vec::new();
                write_golden_records_csv(&columns(), &expected_golden, &mut theirs).unwrap();
                assert_eq!(ours, theirs);
            }
        }
    }

    #[test]
    fn seen_shape_batches_hit_the_fast_path_and_replay_groups() {
        let records = corpus();
        let mut delta = DeltaPipeline::new(
            "delta-test",
            columns(),
            ResolverConfig::default(),
            ConsolidationConfig::default(),
            AutoMode::ApproveAll,
            TruthMethod::MajorityConsensus,
        );
        let first = delta.ingest_batch(records.clone());
        assert_eq!(first.batch_records, records.len());
        assert_eq!(first.library_hits, 0, "nothing seen before the first batch");
        assert_eq!(first.residue, records.len());

        // Re-ingesting the same records: every value is seen, so every record
        // is a hit, no new candidate replacements appear, and every column
        // replays its cached group sequence.
        let second = delta.ingest_batch(records.clone());
        assert_eq!(second.library_hits, records.len());
        assert_eq!(second.residue, 0);
        assert_eq!(
            second.replayed_columns,
            columns().len(),
            "unchanged candidates must replay the cached group sequence"
        );
        assert_eq!(delta.library_hits(), records.len() as u64);
        assert_eq!(delta.library_misses(), records.len() as u64);
        // Reports stay structurally identical to the one-shot pipeline's.
        assert_eq!(second.columns.len(), columns().len());
        assert!(second.columns.iter().all(|c| c.column < columns().len()));
    }

    #[test]
    fn a_tight_cache_cap_evicts_but_never_changes_results() {
        let records = corpus();
        let (expected, expected_golden, _) = one_shot(&records, AutoMode::ApproveAll);
        let mut capped = DeltaPipeline::new(
            "delta-test",
            columns(),
            ResolverConfig::default(),
            ConsolidationConfig::default(),
            AutoMode::ApproveAll,
            TruthMethod::MajorityConsensus,
        )
        .with_cache_cap(Some(1));
        for chunk in records.chunks(3) {
            capped.ingest_batch(chunk.to_vec());
        }
        assert_eq!(capped.standardized(), Some(&expected));
        assert_eq!(capped.golden(), expected_golden.as_slice());
        assert!(
            capped.cache_evictions() > 0,
            "a cap of 1 over a multi-cluster corpus must evict"
        );
        for cache in &capped.caches {
            assert!(cache.contributions.len() <= 1, "the cap must hold");
        }
        // A cap of zero (and None) means unbounded.
        let unbounded = DeltaPipeline::new(
            "delta-test",
            columns(),
            ResolverConfig::default(),
            ConsolidationConfig::default(),
            AutoMode::ApproveAll,
            TruthMethod::MajorityConsensus,
        )
        .with_cache_cap(Some(0));
        assert_eq!(unbounded.cache_cap, None);
    }

    #[test]
    fn empty_and_tiny_batches_are_harmless() {
        let mut delta = DeltaPipeline::new(
            "delta-test",
            columns(),
            ResolverConfig::default(),
            ConsolidationConfig::default(),
            AutoMode::ApproveAll,
            TruthMethod::MajorityConsensus,
        );
        let report = delta.ingest_batch(Vec::new());
        assert_eq!(report.batch_records, 0);
        assert_eq!(report.clusters, 0);
        assert!(delta.is_empty());
        let report = delta.ingest_batch(vec![RawRecord::new(0, ["Mary Lee", "9 St"])]);
        assert_eq!(report.total_records, 1);
        assert_eq!(report.clusters, 1);
        assert_eq!(delta.golden().len(), 1);
        assert_eq!(delta.batches(), 2);
    }
}
