//! The shared, automated consolidation driver.
//!
//! `ec consolidate`, `ec pipeline` and the `ec serve` endpoints all run the
//! same sequence — pick an oracle per column, standardize the requested
//! columns in order, run truth discovery — and their outputs must be
//! **byte-identical** across entry points (the serve tests `cmp` a
//! `POST /pipeline` response against the CLI's `--output` file). Keeping the
//! column selection, oracle seeding and golden-record serialization in one
//! place makes that identity true by construction instead of by parallel
//! maintenance.

use crate::library::ProgramLibrary;
use crate::oracle::{ApproveAllOracle, Oracle, SimulatedOracle};
use crate::pipeline::{ColumnReport, Pipeline};
use ec_data::csv::CsvWriter;
use ec_data::Dataset;
use std::io::Write;

/// The non-interactive oracle modes (the CLI additionally offers
/// `interactive`, which needs a terminal and stays CLI-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutoMode {
    /// Use the simulated expert when the input carries ground truth,
    /// otherwise approve everything.
    Auto,
    /// Approve every group in the forward direction.
    ApproveAll,
}

impl AutoMode {
    /// Parses the mode names shared by the CLI flag and the serve query
    /// parameter.
    pub fn parse(name: &str) -> Option<AutoMode> {
        match name {
            "auto" => Some(AutoMode::Auto),
            "approve-all" => Some(AutoMode::ApproveAll),
            _ => None,
        }
    }
}

/// Resolves a column specification — a column name, or a 0-based index — the
/// way every entry point does.
pub fn resolve_column_spec(columns: &[String], spec: &str) -> Option<usize> {
    if let Some(idx) = columns.iter().position(|c| c == spec) {
        return Some(idx);
    }
    match spec.parse::<usize>() {
        Ok(idx) if idx < columns.len() => Some(idx),
        _ => None,
    }
}

/// Standardizes `columns` (in the given order) with the automated oracle
/// selection: per column, [`SimulatedOracle::for_column`] seeded `7 + column`
/// when `mode` is [`AutoMode::Auto`] and the dataset carries ground truth,
/// [`ApproveAllOracle`] otherwise. Approved groups are recorded into
/// `library` (keyed by column name) when one is supplied, so the
/// verification work performed during the run becomes a reusable asset.
pub fn standardize_columns(
    pipeline: &Pipeline,
    dataset: &mut Dataset,
    columns: &[usize],
    mode: AutoMode,
    has_truth: bool,
    mut library: Option<&mut ProgramLibrary>,
) -> Vec<ColumnReport> {
    let mut reports = Vec::with_capacity(columns.len());
    for &col in columns {
        let simulated = mode == AutoMode::Auto && has_truth;
        let mut oracle: Box<dyn Oracle> = if simulated {
            Box::new(SimulatedOracle::for_column(dataset, col, 7 + col as u64))
        } else {
            Box::new(ApproveAllOracle)
        };
        let (report, approved) = pipeline.standardize_column_traced(dataset, col, oracle.as_mut());
        if let Some(library) = library.as_deref_mut() {
            let column_name = &dataset.columns[col];
            for group in &approved {
                library.record(column_name, group);
            }
        }
        reports.push(report);
    }
    reports
}

/// Streams golden records as CSV (one row per cluster, `cluster` id first),
/// writing record-at-a-time so the output never has to fit in memory. The
/// bytes match the whole-document serialization every entry point used
/// before streaming existed.
pub fn write_golden_records_csv(
    columns: &[String],
    golden: &[Vec<Option<String>>],
    out: &mut dyn Write,
) -> std::io::Result<()> {
    let mut writer = CsvWriter::new(out);
    let header = std::iter::once("cluster").chain(columns.iter().map(String::as_str));
    writer.write_record(header)?;
    for (i, record) in golden.iter().enumerate() {
        let fields = std::iter::once(i.to_string())
            .chain(record.iter().map(|v| v.clone().unwrap_or_default()));
        writer.write_record(fields)?;
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{ConsolidationConfig, TruthMethod};
    use ec_data::{GeneratorConfig, PaperDataset};

    #[test]
    fn mode_and_column_parsing() {
        assert_eq!(AutoMode::parse("auto"), Some(AutoMode::Auto));
        assert_eq!(AutoMode::parse("approve-all"), Some(AutoMode::ApproveAll));
        assert_eq!(AutoMode::parse("interactive"), None);
        let columns = vec!["Name".to_string(), "Address".to_string()];
        assert_eq!(resolve_column_spec(&columns, "Address"), Some(1));
        assert_eq!(resolve_column_spec(&columns, "0"), Some(0));
        assert_eq!(resolve_column_spec(&columns, "2"), None);
        assert_eq!(resolve_column_spec(&columns, "Phone"), None);
    }

    #[test]
    fn standardize_columns_matches_the_manual_loop_and_fills_the_library() {
        let dataset = PaperDataset::Address.generate(&GeneratorConfig {
            num_clusters: 12,
            seed: 21,
            num_sources: 3,
        });
        let pipeline = Pipeline::new(ConsolidationConfig {
            budget: 10,
            ..ConsolidationConfig::default()
        });
        let mut manual = dataset.clone();
        let manual_reports: Vec<ColumnReport> = (0..manual.columns.len())
            .map(|col| {
                let mut oracle = SimulatedOracle::for_column(&manual, col, 7 + col as u64);
                pipeline.standardize_column(&mut manual, col, &mut oracle)
            })
            .collect();

        let mut shared = dataset.clone();
        let columns: Vec<usize> = (0..shared.columns.len()).collect();
        let mut library = ProgramLibrary::new();
        let reports = standardize_columns(
            &pipeline,
            &mut shared,
            &columns,
            AutoMode::Auto,
            true,
            Some(&mut library),
        );
        assert_eq!(shared, manual, "shared driver reproduces the manual loop");
        assert_eq!(reports, manual_reports);
        let approved: usize = reports.iter().map(|r| r.groups_approved).sum();
        if approved > 0 {
            assert!(!library.is_empty(), "approved groups land in the library");
        }
    }

    #[test]
    fn golden_csv_streaming_matches_whole_document_serialization() {
        let dataset = PaperDataset::JournalTitle.generate(&GeneratorConfig {
            num_clusters: 6,
            seed: 2,
            num_sources: 3,
        });
        let pipeline = Pipeline::default();
        let golden = pipeline.discover_golden_records(&dataset, TruthMethod::MajorityConsensus);
        let mut streamed = Vec::new();
        write_golden_records_csv(&dataset.columns, &golden, &mut streamed).unwrap();
        // The whole-document shape the CLI historically produced.
        let mut records = Vec::with_capacity(golden.len() + 1);
        let mut header = vec!["cluster".to_string()];
        header.extend(dataset.columns.iter().cloned());
        records.push(header);
        for (i, record) in golden.iter().enumerate() {
            let mut row = vec![i.to_string()];
            row.extend(record.iter().map(|v| v.clone().unwrap_or_default()));
            records.push(row);
        }
        assert_eq!(
            String::from_utf8(streamed).unwrap(),
            ec_data::csv::write(&records)
        );
    }
}
