//! Oracles: the human (or simulated human) that verifies replacement groups.
//!
//! The framework presents each group to an oracle, which either rejects it or
//! approves it together with a replacement direction (Section 3, Step 3). The
//! paper's experiments use a human expert; this crate provides a
//! [`SimulatedOracle`] that makes the same judgement against the generators'
//! ground truth — a group is approved when most of its member pairs are true
//! variant pairs — plus scripted/constant oracles for tests and ablations.

use ec_data::Dataset;
use ec_grouping::Group;
use ec_replace::Direction;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};

/// The oracle's decision on one group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The group's transformation is valid; apply it in the given direction.
    Approve(Direction),
    /// The group's transformation is invalid; apply nothing.
    Reject,
}

/// Something that can review replacement groups.
pub trait Oracle {
    /// Reviews one group.
    fn review(&mut self, group: &Group) -> Verdict;
}

/// A ground-truth-driven simulation of the paper's human expert.
///
/// The expert "browses the value pairs in a group and marks the group as
/// either correct (… most or all value pairs representing true variant
/// values) or incorrect". The simulation approves a group when the fraction of
/// member pairs labelled variant in the ground truth reaches
/// `approval_threshold` (default 0.5), picks the direction that moves values
/// towards canonical forms, and optionally flips its verdict with a small
/// `error_rate` to model human mistakes (the robustness experiment).
#[derive(Debug, Clone)]
pub struct SimulatedOracle {
    pair_labels: HashMap<(String, String), (usize, usize)>,
    canonical: HashSet<String>,
    approval_threshold: f64,
    error_rate: f64,
    rng: StdRng,
    reviewed: usize,
    approved: usize,
}

impl SimulatedOracle {
    /// Builds the oracle for one column of a dataset.
    pub fn for_column(dataset: &Dataset, col: usize, seed: u64) -> Self {
        SimulatedOracle {
            pair_labels: dataset.pair_labels(col),
            canonical: dataset.canonical_values(col),
            approval_threshold: 0.5,
            error_rate: 0.0,
            rng: StdRng::seed_from_u64(seed),
            reviewed: 0,
            approved: 0,
        }
    }

    /// Sets the probability of flipping a verdict (modelling human error).
    pub fn with_error_rate(mut self, error_rate: f64) -> Self {
        self.error_rate = error_rate;
        self
    }

    /// Sets the fraction of member pairs that must be variants for approval.
    pub fn with_approval_threshold(mut self, threshold: f64) -> Self {
        self.approval_threshold = threshold;
        self
    }

    /// Number of groups reviewed so far.
    pub fn reviewed(&self) -> usize {
        self.reviewed
    }

    /// Number of groups approved so far.
    pub fn approved(&self) -> usize {
        self.approved
    }

    /// The fraction of a group's members that are known variant pairs, and the
    /// preferred direction.
    fn assess(&self, group: &Group) -> (f64, Direction) {
        let mut variant = 0usize;
        let mut known = 0usize;
        let mut towards_rhs = 0usize;
        let mut towards_lhs = 0usize;
        for member in group.members() {
            let key = (member.lhs().to_string(), member.rhs().to_string());
            if let Some(&(v, c)) = self.pair_labels.get(&key) {
                known += 1;
                if v >= c.max(1) || (c == 0 && v > 0) {
                    variant += 1;
                }
            }
            if self.canonical.contains(member.rhs()) {
                towards_rhs += 1;
            }
            if self.canonical.contains(member.lhs()) {
                towards_lhs += 1;
            }
        }
        let fraction = if known == 0 {
            0.0
        } else {
            variant as f64 / known as f64
        };
        let direction = if towards_lhs > towards_rhs {
            Direction::Backward
        } else {
            Direction::Forward
        };
        (fraction, direction)
    }
}

impl Oracle for SimulatedOracle {
    fn review(&mut self, group: &Group) -> Verdict {
        self.reviewed += 1;
        let (fraction, direction) = self.assess(group);
        let mut approve = fraction >= self.approval_threshold && fraction > 0.0;
        if self.error_rate > 0.0 && self.rng.gen_bool(self.error_rate) {
            approve = !approve;
        }
        if approve {
            self.approved += 1;
            Verdict::Approve(direction)
        } else {
            Verdict::Reject
        }
    }
}

/// An oracle that replays a fixed list of verdicts (for tests); it rejects
/// everything after the script runs out.
#[derive(Debug, Clone, Default)]
pub struct ScriptedOracle {
    verdicts: VecDeque<Verdict>,
}

impl ScriptedOracle {
    /// Creates a scripted oracle.
    pub fn new(verdicts: impl IntoIterator<Item = Verdict>) -> Self {
        ScriptedOracle {
            verdicts: verdicts.into_iter().collect(),
        }
    }
}

impl Oracle for ScriptedOracle {
    fn review(&mut self, _group: &Group) -> Verdict {
        self.verdicts.pop_front().unwrap_or(Verdict::Reject)
    }
}

/// Approves everything in the forward direction (an upper bound on recall, a
/// lower bound on precision).
#[derive(Debug, Clone, Copy, Default)]
pub struct ApproveAllOracle;

impl Oracle for ApproveAllOracle {
    fn review(&mut self, _group: &Group) -> Verdict {
        Verdict::Approve(Direction::Forward)
    }
}

/// Rejects everything (the do-nothing baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct RejectAllOracle;

impl Oracle for RejectAllOracle {
    fn review(&mut self, _group: &Group) -> Verdict {
        Verdict::Reject
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_data::{Cell, Cluster, Dataset, Row};
    use ec_graph::Replacement;

    fn tiny_dataset() -> Dataset {
        let mk = |observed: &str, truth: &str| Cell {
            observed: observed.to_string(),
            truth: truth.to_string(),
        };
        let mut d = Dataset::new("tiny", vec!["name".to_string()]);
        d.clusters.push(Cluster {
            rows: vec![
                Row {
                    source: 0,
                    cells: vec![mk("Mary Lee", "Mary Lee")],
                },
                Row {
                    source: 1,
                    cells: vec![mk("Lee, Mary", "Mary Lee")],
                },
                Row {
                    source: 2,
                    cells: vec![mk("Bob Jones", "Bob Jones")],
                },
            ],
            golden: vec!["Mary Lee".to_string()],
        });
        d
    }

    #[test]
    fn simulated_oracle_approves_variant_groups_towards_canonical() {
        let d = tiny_dataset();
        let mut oracle = SimulatedOracle::for_column(&d, 0, 1);
        let group = Group::new(None, vec![Replacement::new("Lee, Mary", "Mary Lee")]);
        match oracle.review(&group) {
            Verdict::Approve(direction) => assert_eq!(direction, Direction::Forward),
            Verdict::Reject => panic!("a pure variant group must be approved"),
        }
        assert_eq!(oracle.reviewed(), 1);
        assert_eq!(oracle.approved(), 1);
    }

    #[test]
    fn simulated_oracle_rejects_conflict_groups() {
        let d = tiny_dataset();
        let mut oracle = SimulatedOracle::for_column(&d, 0, 1);
        let group = Group::new(None, vec![Replacement::new("Mary Lee", "Bob Jones")]);
        assert_eq!(oracle.review(&group), Verdict::Reject);
        // Unknown pairs (never co-occurring in a cluster) are also rejected.
        let unknown = Group::new(None, vec![Replacement::new("A", "B")]);
        assert_eq!(oracle.review(&unknown), Verdict::Reject);
    }

    #[test]
    fn direction_prefers_the_canonical_side() {
        let d = tiny_dataset();
        let mut oracle = SimulatedOracle::for_column(&d, 0, 1);
        // Reversed orientation: lhs is canonical, rhs is the variant, so the
        // oracle should ask for the backward direction.
        let group = Group::new(None, vec![Replacement::new("Mary Lee", "Lee, Mary")]);
        assert_eq!(oracle.review(&group), Verdict::Approve(Direction::Backward));
    }

    #[test]
    fn error_rate_flips_verdicts_sometimes() {
        let d = tiny_dataset();
        let group = Group::new(None, vec![Replacement::new("Lee, Mary", "Mary Lee")]);
        let mut flipped = 0;
        for seed in 0..200 {
            let mut oracle = SimulatedOracle::for_column(&d, 0, seed).with_error_rate(0.3);
            if oracle.review(&group) == Verdict::Reject {
                flipped += 1;
            }
        }
        assert!(
            flipped > 20 && flipped < 120,
            "≈30% of verdicts should flip, saw {flipped}/200"
        );
    }

    #[test]
    fn scripted_and_constant_oracles() {
        let group = Group::new(None, vec![Replacement::new("a", "b")]);
        let mut scripted =
            ScriptedOracle::new([Verdict::Approve(Direction::Forward), Verdict::Reject]);
        assert_eq!(
            scripted.review(&group),
            Verdict::Approve(Direction::Forward)
        );
        assert_eq!(scripted.review(&group), Verdict::Reject);
        assert_eq!(scripted.review(&group), Verdict::Reject, "script exhausted");
        assert_eq!(
            ApproveAllOracle.review(&group),
            Verdict::Approve(Direction::Forward)
        );
        assert_eq!(RejectAllOracle.review(&group), Verdict::Reject);
    }
}
