//! Std-only telemetry for the consolidation stack: a process-wide metrics
//! registry with Prometheus text exposition, and a stage-tracing `Span` API.
//!
//! Every perf investigation before this crate existed was archaeology — the
//! pool starvation behind the 2.5 s p99 stalls took a day of ad-hoc probing
//! because nothing in the running system reported where time went. This crate
//! is the instrument panel: the load-bearing stages record wall time into
//! histograms, the pool and caches export counters and gauges, and the server
//! and router render the whole registry at `GET /metrics`.
//!
//! Design constraints, in order:
//!
//! * **Lock-free hot path.** Recording into a [`Counter`], [`Gauge`] or
//!   [`Histogram`] is atomic adds only — a histogram observation is one
//!   bucket `fetch_add` plus one sum `fetch_add` (the count is derived at
//!   scrape time as the sum of the buckets). The registry's mutex is taken
//!   only at registration and at scrape.
//! * **Pay-for-what-you-use tracing.** With tracing off, a [`Span`] costs one
//!   `Instant::now()` pair and the histogram's two atomic adds; the trace
//!   branch is a single relaxed atomic load. With `EC_TRACE=path` (or
//!   `--trace path`) set, each span additionally appends one hand-serialized
//!   JSONL event (start/end/duration/thread/parent) so a whole run can be
//!   reconstructed as a flame-style timeline.
//! * **Observation never alters results.** Nothing here feeds back into
//!   scheduling or data; determinism suites pass bit-identical with tracing
//!   on and off.
//!
//! Everything is std-only: no vendored shims, hand-rolled JSON and
//! Prometheus-text serialization.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

pub mod trace;

/// What a histogram's `u64` observations mean, which controls how bucket
/// bounds and sums are rendered in the exposition (`Seconds` histograms store
/// microseconds internally and render as fractional seconds).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Unit {
    /// Observations are microseconds; rendered as seconds.
    Seconds,
    /// Observations are plain counts; rendered as-is.
    Count,
}

/// Monotonically increasing counter. Cheap to clone (an `Arc` handle).
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, lags). Cheap to clone.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    unit: Unit,
    /// Strictly increasing upper bounds in the histogram's native unit; an
    /// implicit `+Inf` bucket follows the last bound.
    bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) observation counts; `bounds.len() + 1`
    /// entries. Rendered cumulatively, as Prometheus requires.
    buckets: Box<[AtomicU64]>,
    /// Sum of all observed values, native unit.
    sum: AtomicU64,
}

/// Fixed-bucket histogram. Recording is two relaxed `fetch_add`s; quantiles
/// and the total count are derived from the buckets at scrape time.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

/// Latency bucket upper bounds in microseconds: 100 µs … 60 s.
pub const LATENCY_BUCKETS_US: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000,
];

/// Power-of-two-ish bounds for count-valued histograms (search steps, batch
/// sizes).
pub const COUNT_BUCKETS: &[u64] = &[
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
];

impl Histogram {
    /// Records one observation in the histogram's native unit. Exactly two
    /// relaxed atomic adds.
    pub fn observe(&self, value: u64) {
        let inner = &self.0;
        let idx = inner.bounds.partition_point(|b| *b < value);
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration (for `Unit::Seconds` histograms).
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Starts a [`Span`] that records its wall time here on drop and, when
    /// tracing is enabled, appends one JSONL event.
    pub fn start_span(&self, name: &'static str) -> Span<'_> {
        Span {
            hist: self,
            name,
            ctx: trace::begin(),
            start: Instant::now(),
        }
    }

    /// A point-in-time copy of the bucket state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        HistogramSnapshot {
            unit: inner.unit,
            bounds: inner.bounds.clone(),
            buckets: inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: inner.sum.load(Ordering::Relaxed),
        }
    }
}

/// A consistent-enough copy of a histogram's buckets for deriving count and
/// quantiles.
pub struct HistogramSnapshot {
    pub unit: Unit,
    pub bounds: Vec<u64>,
    pub buckets: Vec<u64>,
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observations (sum of every bucket).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper-bound estimate of the `q`-quantile (0.0 ..= 1.0) in the
    /// histogram's native unit: the lowest bucket bound whose cumulative
    /// count reaches `q * count`. Observations in the `+Inf` bucket clamp to
    /// the last finite bound.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return self
                    .bounds
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| self.bounds.last().copied().unwrap_or(0));
            }
        }
        self.bounds.last().copied().unwrap_or(0)
    }
}

/// An RAII stage timer: created via [`Histogram::start_span`] or the
/// [`span!`] macro, it records its wall time into the histogram on drop.
/// When tracing is enabled it also appends one JSONL event with this span's
/// id, parent id, thread, start offset and duration.
pub struct Span<'a> {
    hist: &'a Histogram,
    name: &'static str,
    ctx: Option<trace::SpanCtx>,
    start: Instant,
}

impl Span<'_> {
    /// Attaches a free-form detail string to the trace event. The closure is
    /// evaluated only when tracing is enabled, so detail formatting is free
    /// on the untraced path.
    pub fn with_detail(mut self, detail: impl FnOnce() -> String) -> Self {
        if let Some(ctx) = &mut self.ctx {
            ctx.detail = Some(detail());
        }
        self
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.hist.observe_duration(elapsed);
        if let Some(ctx) = self.ctx.take() {
            trace::finish(ctx, self.name, self.start, elapsed);
        }
    }
}

/// Opens a stage span recording into `ec_stage_seconds{stage="..."}`. The
/// histogram handle is resolved once per call site and cached in a static,
/// so the steady-state cost is the span itself. An optional second argument
/// attaches a detail string to the trace event (only evaluated when tracing
/// is on):
///
/// ```ignore
/// let _span = ec_obs::span!("grouping.pivot_search", column);
/// ```
#[macro_export]
macro_rules! span {
    ($stage:expr) => {{
        static HIST: std::sync::OnceLock<$crate::Histogram> = std::sync::OnceLock::new();
        HIST.get_or_init(|| $crate::stage_histogram($stage))
            .start_span($stage)
    }};
    ($stage:expr, $detail:expr) => {{
        static HIST: std::sync::OnceLock<$crate::Histogram> = std::sync::OnceLock::new();
        HIST.get_or_init(|| $crate::stage_histogram($stage))
            .start_span($stage)
            .with_detail(|| ($detail).to_string())
    }};
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn exposition(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    kind: Kind,
    help: String,
    /// Keyed by the rendered inner label list (`stage="x"`, possibly empty);
    /// `BTreeMap` keeps the exposition deterministic.
    series: BTreeMap<String, Series>,
}

/// A named collection of metric families. Most code uses the process-wide
/// [`global`] registry through the free-function conveniences; `Registry` is
/// public mainly so tests can render in isolation.
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders label pairs as `k="v",k2="v2"` (no braces), escaping values.
fn label_key(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                _ => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

/// Formats a native-unit value for exposition: seconds-unit values are
/// microseconds rendered as fractional seconds, counts render as integers.
fn format_value(unit: Unit, value: u64) -> String {
    match unit {
        Unit::Seconds => format!("{}", value as f64 / 1e6),
        Unit::Count => value.to_string(),
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            families: Mutex::new(BTreeMap::new()),
        }
    }

    fn family_series<F: FnOnce() -> Series>(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        create: F,
    ) -> Series {
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name} registered twice with different kinds"
        );
        let series = family
            .series
            .entry(label_key(labels))
            .or_insert_with(create);
        match series {
            Series::Counter(c) => Series::Counter(c.clone()),
            Series::Gauge(g) => Series::Gauge(g.clone()),
            Series::Histogram(h) => Series::Histogram(h.clone()),
        }
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a counter with the given label pairs.
    /// Registration is idempotent: the same (name, labels) always returns a
    /// handle to the same underlying value.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.family_series(name, help, Kind::Counter, labels, || {
            Series::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Series::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.family_series(name, help, Kind::Gauge, labels, || {
            Series::Gauge(Gauge(Arc::new(AtomicI64::new(0))))
        }) {
            Series::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    pub fn histogram(&self, name: &str, help: &str, unit: Unit, bounds: &[u64]) -> Histogram {
        self.histogram_with(name, help, unit, bounds, &[])
    }

    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        unit: Unit,
        bounds: &[u64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        match self.family_series(name, help, Kind::Histogram, labels, || {
            Series::Histogram(Histogram(Arc::new(HistogramInner {
                unit,
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
            })))
        }) {
            Series::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Renders the whole registry in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` per family, cumulative `_bucket`/`_sum`/`_count`
    /// for histograms). Family and series order is deterministic.
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap();
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(&family.help.replace('\\', "\\\\").replace('\n', "\\n"));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.kind.exposition());
            out.push('\n');
            for (labels, series) in family.series.iter() {
                match series {
                    Series::Counter(c) => {
                        push_sample(&mut out, name, "", labels, None, &c.get().to_string());
                    }
                    Series::Gauge(g) => {
                        push_sample(&mut out, name, "", labels, None, &g.get().to_string());
                    }
                    Series::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (i, &count) in snap.buckets.iter().enumerate() {
                            cumulative += count;
                            let le = match snap.bounds.get(i) {
                                Some(&bound) => format_value(snap.unit, bound),
                                None => "+Inf".to_string(),
                            };
                            push_sample(
                                &mut out,
                                name,
                                "_bucket",
                                labels,
                                Some(&le),
                                &cumulative.to_string(),
                            );
                        }
                        push_sample(
                            &mut out,
                            name,
                            "_sum",
                            labels,
                            None,
                            &format_value(snap.unit, snap.sum),
                        );
                        push_sample(
                            &mut out,
                            name,
                            "_count",
                            labels,
                            None,
                            &cumulative.to_string(),
                        );
                    }
                }
            }
        }
        out
    }
}

/// Appends one sample line: `name[suffix]{labels[,le="..."]} value`.
fn push_sample(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &str,
    le: Option<&str>,
    value: &str,
) {
    out.push_str(name);
    out.push_str(suffix);
    let has_labels = !labels.is_empty() || le.is_some();
    if has_labels {
        out.push('{');
        out.push_str(labels);
        if let Some(le) = le {
            if !labels.is_empty() {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(le);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every instrumented subsystem records into and
/// `GET /metrics` renders.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// [`Registry::counter`] on the global registry.
pub fn counter(name: &str, help: &str) -> Counter {
    global().counter(name, help)
}

/// [`Registry::counter_with`] on the global registry.
pub fn counter_with(name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
    global().counter_with(name, help, labels)
}

/// [`Registry::gauge`] on the global registry.
pub fn gauge(name: &str, help: &str) -> Gauge {
    global().gauge(name, help)
}

/// [`Registry::gauge_with`] on the global registry.
pub fn gauge_with(name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
    global().gauge_with(name, help, labels)
}

/// [`Registry::histogram`] on the global registry.
pub fn histogram(name: &str, help: &str, unit: Unit, bounds: &[u64]) -> Histogram {
    global().histogram(name, help, unit, bounds)
}

/// [`Registry::histogram_with`] on the global registry.
pub fn histogram_with(
    name: &str,
    help: &str,
    unit: Unit,
    bounds: &[u64],
    labels: &[(&str, &str)],
) -> Histogram {
    global().histogram_with(name, help, unit, bounds, labels)
}

/// The per-stage wall-time histogram the [`span!`] macro records into:
/// `ec_stage_seconds{stage="..."}`.
pub fn stage_histogram(stage: &str) -> Histogram {
    global().histogram_with(
        "ec_stage_seconds",
        "Wall time per instrumented pipeline stage.",
        Unit::Seconds,
        LATENCY_BUCKETS_US,
        &[("stage", stage)],
    )
}

/// Renders the global registry as Prometheus text exposition.
pub fn render() -> String {
    global().render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_and_are_idempotent() {
        let registry = Registry::new();
        let c = registry.counter("test_total", "A test counter.");
        c.inc();
        c.add(2);
        let again = registry.counter("test_total", "ignored on re-registration");
        again.inc();
        assert_eq!(c.get(), 4, "re-registration returns the same value");
        let g = registry.gauge("test_depth", "A test gauge.");
        g.set(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        let text = registry.render();
        assert!(text.contains("# TYPE test_total counter"), "{text}");
        assert!(text.contains("test_total 4\n"), "{text}");
        assert!(text.contains("# TYPE test_depth gauge"), "{text}");
        assert!(text.contains("test_depth 3\n"), "{text}");
    }

    #[test]
    fn labeled_series_are_distinct_and_sorted() {
        let registry = Registry::new();
        registry
            .counter_with("labeled_total", "h", &[("endpoint", "/b")])
            .add(2);
        registry
            .counter_with("labeled_total", "h", &[("endpoint", "/a")])
            .add(1);
        let text = registry.render();
        let a = text.find("labeled_total{endpoint=\"/a\"} 1").unwrap();
        let b = text.find("labeled_total{endpoint=\"/b\"} 2").unwrap();
        assert!(a < b, "series render in sorted label order:\n{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_count_matches() {
        let registry = Registry::new();
        let h = registry.histogram("lat_seconds", "h", Unit::Seconds, &[1_000, 10_000, 100_000]);
        h.observe(500); // le 0.001
        h.observe(1_000); // le 0.001 (inclusive upper bound)
        h.observe(5_000); // le 0.01
        h.observe(2_000_000); // +Inf
        let snap = h.snapshot();
        assert_eq!(snap.count(), 4);
        assert_eq!(snap.buckets, vec![2, 1, 0, 1]);
        let text = registry.render();
        assert!(
            text.contains("lat_seconds_bucket{le=\"0.001\"} 2"),
            "{text}"
        );
        assert!(text.contains("lat_seconds_bucket{le=\"0.01\"} 3"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 3"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("lat_seconds_count 4"), "{text}");
        // 500 + 1000 + 5000 + 2_000_000 µs = 2.0065 s
        assert!(text.contains("lat_seconds_sum 2.0065"), "{text}");
    }

    #[test]
    fn quantiles_come_from_bucket_bounds() {
        let registry = Registry::new();
        let h = registry.histogram("q", "h", Unit::Count, &[1, 2, 4, 8]);
        for v in [1, 1, 2, 3, 8] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), 2, "3rd of 5 lands in the le=2 bucket");
        assert_eq!(snap.quantile(1.0), 8);
        assert_eq!(snap.quantile(0.0), 1, "clamps to the first bucket");
    }

    #[test]
    fn spans_record_wall_time() {
        let registry = Registry::new();
        let h = registry.histogram("span_seconds", "h", Unit::Seconds, LATENCY_BUCKETS_US);
        {
            let _span = h.start_span("test.stage");
        }
        assert_eq!(h.snapshot().count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        registry
            .counter_with("esc_total", "h", &[("v", "a\"b\\c")])
            .inc();
        let text = registry.render();
        assert!(text.contains("esc_total{v=\"a\\\"b\\\\c\"} 1"), "{text}");
    }
}
