//! JSONL stage tracing: when enabled, every [`Span`](crate::Span) appends
//! one hand-serialized event to the trace file, recording its name, span id,
//! parent span id, thread, start offset and duration (all microseconds from
//! the moment tracing was initialized). A whole `ec pipeline` run can be
//! reconstructed as a flame-style timeline from the file.
//!
//! Tracing is off unless [`init`] is called (the CLI's `--trace path`) or the
//! `EC_TRACE` environment variable names a path at the time of the first
//! span. The enabled check on the span hot path is a single atomic load;
//! with tracing off no allocation, lock or I/O happens. Spans that run
//! before [`init`] are simply not recorded — once tracing is *on* it is
//! pinned for the rest of the process, and a second [`init`] errors.
//!
//! One event is written per span, at span *end* — parent/child nesting is
//! reconstructed from ids, and within a thread spans end in LIFO order, so
//! end-ordered events are enough to rebuild the timeline. Events from
//! different threads interleave; the per-line `thread` field separates them.
//! Each line is flushed as written: the sink lives in a static that is never
//! dropped, so buffering across lines would lose the tail of the file on
//! process exit.

use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

struct Sink {
    /// Zero point for `start_us`/`end_us` offsets.
    epoch: Instant,
    next_id: AtomicU64,
    out: Mutex<BufWriter<File>>,
}

static SINK: OnceLock<Sink> = OnceLock::new();

/// Whether the process has decided about tracing yet: `UNDECIDED` until the
/// first span (or [`init`] call), then `OFF` or `ON`. Spans read only this
/// atomic on the hot path; `OFF` can still flip to `ON` through [`init`] —
/// an embedder may run untraced work before opening a trace — but `ON` is
/// final, so `SINK` is written at most once.
static STATE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(UNDECIDED);
const UNDECIDED: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

/// Serializes the UNDECIDED→OFF/ON and OFF→ON transitions (never on the
/// span hot path once the state is decided).
static DECIDE: Mutex<()> = Mutex::new(());

fn new_sink(file: File) -> Sink {
    Sink {
        epoch: Instant::now(),
        next_id: AtomicU64::new(0),
        out: Mutex::new(BufWriter::new(file)),
    }
}

/// Enables tracing to `path`, overriding `EC_TRACE`. Spans that already ran
/// (while tracing was off) are not retroactively recorded and offsets count
/// from this call; errors if tracing is already writing somewhere.
pub fn init(path: &str) -> std::io::Result<()> {
    let _guard = DECIDE.lock().unwrap();
    if STATE.load(Ordering::Acquire) == ON {
        return Err(std::io::Error::new(
            std::io::ErrorKind::AlreadyExists,
            "tracing was already initialized",
        ));
    }
    let file = File::create(path)?;
    SINK.get_or_init(|| new_sink(file));
    STATE.store(ON, Ordering::Release);
    Ok(())
}

fn sink() -> Option<&'static Sink> {
    match STATE.load(Ordering::Acquire) {
        OFF => None,
        ON => SINK.get(),
        _ => {
            // First span of the process: decide from EC_TRACE, racing
            // threads serialized so exactly one opens the file.
            let _guard = DECIDE.lock().unwrap();
            match STATE.load(Ordering::Acquire) {
                OFF => return None,
                ON => return SINK.get(),
                _ => {}
            }
            let file = std::env::var("EC_TRACE")
                .ok()
                .filter(|path| !path.is_empty())
                .and_then(|path| File::create(&path).ok());
            match file {
                Some(file) => {
                    let sink = SINK.get_or_init(|| new_sink(file));
                    STATE.store(ON, Ordering::Release);
                    Some(sink)
                }
                None => {
                    STATE.store(OFF, Ordering::Release);
                    None
                }
            }
        }
    }
}

/// Whether trace events are being written. Useful for gating detail-string
/// construction beyond what [`Span::with_detail`](crate::Span::with_detail)
/// already defers.
pub fn enabled() -> bool {
    sink().is_some()
}

std::thread_local! {
    /// Stack of open span ids on this thread (for parent attribution).
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Small stable per-thread id for trace events (`ThreadId` has no stable
    /// public integer form).
    static THREAD_SEQ: u64 = {
        static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
        NEXT_THREAD.fetch_add(1, Ordering::Relaxed)
    };
}

/// Per-span trace context carried by an open [`Span`](crate::Span).
pub(crate) struct SpanCtx {
    id: u64,
    parent: u64,
    pub(crate) detail: Option<String>,
}

/// Claims a span id and pushes it on the thread's parent stack; `None` (the
/// common case) when tracing is off.
pub(crate) fn begin() -> Option<SpanCtx> {
    let sink = sink()?;
    let id = sink.next_id.fetch_add(1, Ordering::Relaxed) + 1;
    let parent = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    Some(SpanCtx {
        id,
        parent,
        detail: None,
    })
}

/// Pops the span off the parent stack and writes its event line.
pub(crate) fn finish(ctx: SpanCtx, name: &str, start: Instant, elapsed: Duration) {
    let Some(sink) = sink() else { return };
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        // Spans are guards, so within a thread they end LIFO; a span moved
        // across threads (not a supported pattern) just misses its pop.
        if stack.last() == Some(&ctx.id) {
            stack.pop();
        } else {
            stack.retain(|&id| id != ctx.id);
        }
    });
    let start_us = start
        .checked_duration_since(sink.epoch)
        .unwrap_or(Duration::ZERO)
        .as_micros() as u64;
    let dur_us = elapsed.as_micros() as u64;
    let thread = THREAD_SEQ.with(|t| *t);
    let mut line = String::with_capacity(128);
    line.push_str("{\"name\":\"");
    json_escape_into(&mut line, name);
    line.push_str("\",\"id\":");
    line.push_str(&ctx.id.to_string());
    line.push_str(",\"parent\":");
    line.push_str(&ctx.parent.to_string());
    line.push_str(",\"thread\":");
    line.push_str(&thread.to_string());
    line.push_str(",\"start_us\":");
    line.push_str(&start_us.to_string());
    line.push_str(",\"end_us\":");
    line.push_str(&(start_us + dur_us).to_string());
    line.push_str(",\"dur_us\":");
    line.push_str(&dur_us.to_string());
    if let Some(detail) = &ctx.detail {
        line.push_str(",\"detail\":\"");
        json_escape_into(&mut line, detail);
        line.push('"');
    }
    line.push_str("}\n");
    let mut out = sink.out.lock().unwrap();
    let _ = out.write_all(line.as_bytes());
    let _ = out.flush();
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_covers_quotes_and_control_chars() {
        let mut out = String::new();
        json_escape_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }

    // Sink behaviour (event lines, parent nesting) is covered by the
    // integration suite, which runs a traced pipeline in its own process;
    // the sink is process-global, so exercising it here would race with
    // other unit tests.
}
