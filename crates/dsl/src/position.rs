//! Position functions: locating positions in the input string.
//!
//! A position function maps the input string `s` to a character position in
//! `0..=|s|` (positions denote gaps between characters, so a string of `n`
//! characters has `n + 1` positions). The paper defines two kinds:
//!
//! * [`PositionFn::ConstPos`] — an absolute position, counted from the front
//!   for positive `k` and from the back for negative `k`;
//! * [`PositionFn::MatchPos`] — the beginning or end of the `k`-th match of a
//!   term, with negative `k` counting matches from the back.

use crate::ctx::{resolve_kth, StrCtx};
use crate::terms::Term;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a [`PositionFn::MatchPos`] refers to the beginning or the end of
/// the selected match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dir {
    /// The beginning position of the match (paper: `B`).
    Begin,
    /// The ending position of the match (paper: `E`).
    End,
}

/// A position function.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PositionFn {
    /// `ConstPos(k)`: for `k > 0` the position `k - 1` (the paper is 1-based),
    /// provided `k <= |s| + 1`; for `k < 0` the position `|s| + 1 + k`
    /// (counting from the back, `-1` being the position after the last
    /// character), provided `-(|s| + 1) <= k`.
    ConstPos(i32),
    /// `MatchPos(term, k, dir)`: the beginning or ending position of the
    /// `k`-th match of `term` in `s` (negative `k` counts from the back).
    MatchPos {
        /// The term whose matches are counted.
        term: Term,
        /// The 1-based match ordinal; negative counts from the back.
        k: i32,
        /// Whether to return the beginning or the ending position.
        dir: Dir,
    },
}

impl PositionFn {
    /// Convenience constructor for [`PositionFn::MatchPos`].
    pub fn match_pos(term: Term, k: i32, dir: Dir) -> Self {
        PositionFn::MatchPos { term, k, dir }
    }

    /// Convenience constructor for [`PositionFn::ConstPos`].
    pub fn const_pos(k: i32) -> Self {
        PositionFn::ConstPos(k)
    }

    /// Evaluates the position function on `ctx`, returning a character
    /// position in `0..=ctx.len()`, or `None` when the function is undefined
    /// on this input (ordinal out of range, `k == 0`, …).
    pub fn eval(&self, ctx: &StrCtx<'_>) -> Option<usize> {
        let n = ctx.len() as i64;
        match self {
            PositionFn::ConstPos(k) => {
                let k = *k as i64;
                if k > 0 && k <= n + 1 {
                    Some((k - 1) as usize)
                } else if k < 0 && -k <= n + 1 {
                    // Paper: |s| + 2 + k in 1-based positions = |s| + 1 + k 0-based.
                    Some((n + 1 + k) as usize)
                } else {
                    None
                }
            }
            PositionFn::MatchPos { term, k, dir } => {
                let matches = ctx.matches(term);
                let m = resolve_kth(&matches, *k)?;
                Some(match dir {
                    Dir::Begin => m.start,
                    Dir::End => m.end,
                })
            }
        }
    }

    /// The width of the character class used by this function (0 for constant
    /// positions and literal terms); used by the static preference order of
    /// Appendix E.
    pub fn class_width(&self) -> u32 {
        match self {
            PositionFn::ConstPos(_) => 1,
            PositionFn::MatchPos { term, .. } => term.class_width(),
        }
    }
}

impl fmt::Display for PositionFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PositionFn::ConstPos(k) => write!(f, "ConstPos({k})"),
            PositionFn::MatchPos { term, k, dir } => {
                let d = match dir {
                    Dir::Begin => "B",
                    Dir::End => "E",
                };
                write!(f, "MatchPos({term}, {k}, {d})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Paper Example B.1: s = "Lee, Mary", |s| = 9.
    #[test]
    fn paper_example_b1_const_pos() {
        let ctx = StrCtx::new("Lee, Mary");
        // ConstPos(2) = 2 in the paper's 1-based positions = 1 here.
        assert_eq!(PositionFn::const_pos(2).eval(&ctx), Some(1));
        // ConstPos(-5) = 9 + 2 - 5 = 6 (1-based) = 5 here.
        assert_eq!(PositionFn::const_pos(-5).eval(&ctx), Some(5));
    }

    #[test]
    fn paper_example_b1_match_pos() {
        let ctx = StrCtx::new("Lee, Mary");
        // MatchPos(TC, 2, B): beginning of "M" = paper position 6 = 5 here.
        assert_eq!(
            PositionFn::match_pos(Term::Upper, 2, Dir::Begin).eval(&ctx),
            Some(5)
        );
        // MatchPos(TC, 2, E): end of "M" = paper position 7 = 6 here.
        assert_eq!(
            PositionFn::match_pos(Term::Upper, 2, Dir::End).eval(&ctx),
            Some(6)
        );
    }

    #[test]
    fn figure3_positions() {
        // PA: beginning of the 1st match of TC -> paper 1 -> 0 here.
        // PB: ending of the 1st match of Tl -> "ee" ends at paper 4 -> 3 here.
        // PC: ending of the 1st match of Tb -> paper 6 -> 5 here.
        // PD: ending of the last match of TC -> paper 7 -> 6 here.
        let ctx = StrCtx::new("Lee, Mary");
        assert_eq!(
            PositionFn::match_pos(Term::Upper, 1, Dir::Begin).eval(&ctx),
            Some(0)
        );
        assert_eq!(
            PositionFn::match_pos(Term::Lower, 1, Dir::End).eval(&ctx),
            Some(3)
        );
        assert_eq!(
            PositionFn::match_pos(Term::Whitespace, 1, Dir::End).eval(&ctx),
            Some(5)
        );
        assert_eq!(
            PositionFn::match_pos(Term::Upper, -1, Dir::End).eval(&ctx),
            Some(6)
        );
    }

    #[test]
    fn const_pos_bounds() {
        let ctx = StrCtx::new("abc");
        assert_eq!(PositionFn::const_pos(1).eval(&ctx), Some(0));
        assert_eq!(PositionFn::const_pos(4).eval(&ctx), Some(3));
        assert_eq!(PositionFn::const_pos(5).eval(&ctx), None);
        assert_eq!(PositionFn::const_pos(-1).eval(&ctx), Some(3));
        assert_eq!(PositionFn::const_pos(-4).eval(&ctx), Some(0));
        assert_eq!(PositionFn::const_pos(-5).eval(&ctx), None);
        assert_eq!(PositionFn::const_pos(0).eval(&ctx), None);
    }

    #[test]
    fn match_pos_out_of_range() {
        let ctx = StrCtx::new("abc");
        assert_eq!(
            PositionFn::match_pos(Term::Digits, 1, Dir::Begin).eval(&ctx),
            None
        );
        assert_eq!(
            PositionFn::match_pos(Term::Lower, 2, Dir::Begin).eval(&ctx),
            None
        );
        assert_eq!(
            PositionFn::match_pos(Term::Lower, 0, Dir::Begin).eval(&ctx),
            None
        );
    }

    #[test]
    fn match_pos_literal_term() {
        let ctx = StrCtx::new("9th Street, Boston");
        let f = PositionFn::match_pos(Term::literal("Street"), 1, Dir::Begin);
        assert_eq!(f.eval(&ctx), Some(4));
    }

    #[test]
    fn positions_on_empty_string() {
        let ctx = StrCtx::new("");
        assert_eq!(PositionFn::const_pos(1).eval(&ctx), Some(0));
        assert_eq!(PositionFn::const_pos(-1).eval(&ctx), Some(0));
        assert_eq!(PositionFn::const_pos(2).eval(&ctx), None);
        assert_eq!(
            PositionFn::match_pos(Term::Upper, 1, Dir::Begin).eval(&ctx),
            None
        );
    }

    #[test]
    fn display_round_trips_visually() {
        let f = PositionFn::match_pos(Term::Upper, -1, Dir::End);
        assert_eq!(f.to_string(), "MatchPos(TC, -1, E)");
        assert_eq!(PositionFn::const_pos(3).to_string(), "ConstPos(3)");
    }
}
