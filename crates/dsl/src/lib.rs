//! # ec-dsl — the string transformation DSL
//!
//! This crate implements the domain-specific language (DSL) used by the
//! entity-consolidation reproduction of Deng et al., *Unsupervised String
//! Transformation Learning for Entity Consolidation* (ICDE 2019). The DSL is
//! the one designed by Gulwani for FlashFill (POPL 2011), summarised in
//! Appendix B of the paper, extended with the affix string functions
//! (`Prefix`, `Suffix`) introduced in Appendix D.
//!
//! A *transformation program* takes an input string `s` and produces an output
//! string `t` by concatenating the outputs of a sequence of *string
//! functions*. String functions either emit a constant string or a substring
//! of `s` delimited by *position functions*, which locate positions in `s`
//! using matches of *terms* (character-class "regexes" such as `[A-Z]+`, or
//! constant strings).
//!
//! ```
//! use ec_dsl::{Dir, PositionFn, Program, StrCtx, StringFn, Term};
//!
//! // The paper's running example (Figure 3): "Lee, Mary" -> "M. Lee".
//! let f2 = StringFn::sub_str(
//!     PositionFn::match_pos(Term::Upper, 1, Dir::Begin),
//!     PositionFn::match_pos(Term::Lower, 1, Dir::End),
//! ); // -> "Lee"
//! let f3 = StringFn::constant(". ");
//! let f1 = StringFn::sub_str(
//!     PositionFn::match_pos(Term::Whitespace, 1, Dir::End),
//!     PositionFn::match_pos(Term::Upper, -1, Dir::End),
//! ); // -> "M"
//! let program = Program::new(vec![f1, f3, f2]);
//! let ctx = StrCtx::new("Lee, Mary");
//! assert_eq!(program.eval(&ctx).as_deref(), Some("M. Lee"));
//! assert!(program.consistent_with(&ctx, "M. Lee"));
//! ```
//!
//! All positions exposed by this crate are **character indices** (not byte
//! offsets): a string of `n` characters has `n + 1` positions `0..=n`, each
//! denoting the gap before the character of the same index. The paper uses the
//! equivalent 1-based convention; conversion is a constant offset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctx;
pub mod parse;
pub mod position;
pub mod program;
pub mod strfn;
pub mod terms;

pub use ctx::StrCtx;
pub use parse::{parse_program, ParseError};
pub use position::{Dir, PositionFn};
pub use program::Program;
pub use strfn::StringFn;
pub use terms::{Term, TermMatch};

/// The four regex-based character-class terms of the paper (`TC`, `Tl`, `Td`,
/// `Tb`), in the static "wider class first" order used by Appendix E.
pub const CLASS_TERMS: [Term; 4] = [Term::Upper, Term::Lower, Term::Digits, Term::Whitespace];
