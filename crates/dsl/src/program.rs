//! Transformation programs: concatenations of string functions.
//!
//! A program `ρ := f1 ⊕ f2 ⊕ … ⊕ fn` (Definition 5 of the paper) takes an
//! input string `s` and outputs the concatenation of the outputs of its string
//! functions. A program is *consistent* with a replacement `s → t` iff it can
//! produce `t` from `s`; with the affix extension a program may be able to
//! produce several strings, so consistency is checked with a small dynamic
//! program rather than by direct evaluation.

use crate::ctx::StrCtx;
use crate::strfn::StringFn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A transformation program: a non-empty sequence of string functions whose
/// outputs are concatenated.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Program {
    fns: Vec<StringFn>,
}

impl Program {
    /// Creates a program from its string functions (listed left to right).
    pub fn new(fns: Vec<StringFn>) -> Self {
        Program { fns }
    }

    /// An empty program (producing the empty string); mainly useful as the
    /// starting point of a path search.
    pub fn empty() -> Self {
        Program { fns: Vec::new() }
    }

    /// The string functions of this program, in order.
    pub fn fns(&self) -> &[StringFn] {
        &self.fns
    }

    /// Number of string functions.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// True when the program has no string functions.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// Appends a string function, returning the extended program.
    pub fn extended(&self, f: StringFn) -> Program {
        let mut fns = self.fns.clone();
        fns.push(f);
        Program { fns }
    }

    /// True when every string function is deterministic (no affix functions).
    pub fn is_deterministic(&self) -> bool {
        self.fns.iter().all(StringFn::is_deterministic)
    }

    /// Evaluates the program when all of its string functions are
    /// deterministic and defined on `ctx`; returns `None` otherwise.
    pub fn eval(&self, ctx: &StrCtx<'_>) -> Option<String> {
        let mut out = String::new();
        for f in &self.fns {
            out.push_str(&f.eval(ctx)?);
        }
        Some(out)
    }

    /// Is this program consistent with the replacement `ctx.as_str() → t`,
    /// i.e. can it produce `t`?
    ///
    /// The check splits `t` into `self.len()` non-empty pieces (the paper's
    /// graph edges never carry empty substrings) and asks each string function
    /// whether it can produce its piece. The split search is a dynamic program
    /// over (function index, position in `t`), so affix functions — which can
    /// produce many strings — are handled without enumeration.
    pub fn consistent_with(&self, ctx: &StrCtx<'_>, t: &str) -> bool {
        let t_chars: Vec<char> = t.chars().collect();
        let n = t_chars.len();
        if self.fns.is_empty() {
            return n == 0;
        }
        if n == 0 {
            return false;
        }
        // reachable[i] = set of positions in t reachable after the first i functions.
        let mut reachable = vec![false; n + 1];
        reachable[0] = true;
        for f in &self.fns {
            let mut next = vec![false; n + 1];
            // Deterministic functions produce exactly one string; compute it once.
            let fixed = if f.is_deterministic() {
                f.eval(ctx)
            } else {
                None
            };
            for i in 0..n {
                if !reachable[i] {
                    continue;
                }
                match &fixed {
                    Some(out) => {
                        let out_chars: Vec<char> = out.chars().collect();
                        let j = i + out_chars.len();
                        if !out_chars.is_empty() && j <= n && t_chars[i..j] == out_chars[..] {
                            next[j] = true;
                        }
                    }
                    None if f.is_deterministic() => {
                        // Deterministic but undefined on this input: produces nothing.
                    }
                    None => {
                        // Affix function: try every non-empty piece t[i..j).
                        for j in (i + 1)..=n {
                            if next[j] {
                                continue;
                            }
                            let piece: String = t_chars[i..j].iter().collect();
                            if f.can_produce(ctx, &piece) {
                                next[j] = true;
                            }
                        }
                    }
                }
            }
            reachable = next;
            if !reachable.iter().any(|&b| b) {
                return false;
            }
        }
        reachable[n]
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.fns.is_empty() {
            return write!(f, "ε");
        }
        for (i, func) in self.fns.iter().enumerate() {
            if i > 0 {
                write!(f, " ⊕ ")?;
            }
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

impl From<Vec<StringFn>> for Program {
    fn from(fns: Vec<StringFn>) -> Self {
        Program::new(fns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::position::{Dir, PositionFn};
    use crate::terms::Term;

    fn f1() -> StringFn {
        // Substring "Lee" of "Lee, Mary".
        StringFn::sub_str(
            PositionFn::match_pos(Term::Upper, 1, Dir::Begin),
            PositionFn::match_pos(Term::Lower, 1, Dir::End),
        )
    }
    fn f2() -> StringFn {
        // Substring "M" of "Lee, Mary".
        StringFn::sub_str(
            PositionFn::match_pos(Term::Whitespace, 1, Dir::End),
            PositionFn::match_pos(Term::Upper, -1, Dir::End),
        )
    }
    fn f3() -> StringFn {
        StringFn::constant(". ")
    }

    // Paper Example B.3 / Figure 3: ρ := f2 ⊕ f3 ⊕ f1 maps "Lee, Mary" to "M. Lee".
    #[test]
    fn paper_example_b3() {
        let ctx = StrCtx::new("Lee, Mary");
        let rho = Program::new(vec![f2(), f3(), f1()]);
        assert_eq!(rho.eval(&ctx).as_deref(), Some("M. Lee"));
        assert!(rho.consistent_with(&ctx, "M. Lee"));
        assert!(!rho.consistent_with(&ctx, "M. Smith"));
    }

    #[test]
    fn same_program_on_second_replacement() {
        // The same program must be consistent with "Smith, James" -> "J. Smith"
        // (that is what makes Group 2 of Figure 2 a group).
        let ctx = StrCtx::new("Smith, James");
        let rho = Program::new(vec![f2(), f3(), f1()]);
        assert_eq!(rho.eval(&ctx).as_deref(), Some("J. Smith"));
        assert!(rho.consistent_with(&ctx, "J. Smith"));
    }

    #[test]
    fn empty_program() {
        let ctx = StrCtx::new("abc");
        let p = Program::empty();
        assert!(p.is_empty());
        assert_eq!(p.eval(&ctx).as_deref(), Some(""));
        assert!(p.consistent_with(&ctx, ""));
        assert!(!p.consistent_with(&ctx, "a"));
    }

    #[test]
    fn undefined_function_makes_eval_none() {
        let ctx = StrCtx::new("no digits here");
        let p = Program::new(vec![StringFn::sub_str(
            PositionFn::match_pos(Term::Digits, 1, Dir::Begin),
            PositionFn::match_pos(Term::Digits, 1, Dir::End),
        )]);
        assert_eq!(p.eval(&ctx), None);
        assert!(!p.consistent_with(&ctx, "anything"));
    }

    #[test]
    fn consistency_with_affix_functions() {
        // Street -> St: SubStr(capital) ⊕ Prefix(Tl, 1).
        let p = Program::new(vec![
            StringFn::sub_str(
                PositionFn::match_pos(Term::Upper, 1, Dir::Begin),
                PositionFn::match_pos(Term::Upper, 1, Dir::End),
            ),
            StringFn::prefix(Term::Lower, 1),
        ]);
        assert!(p.consistent_with(&StrCtx::new("Street"), "St"));
        assert!(p.consistent_with(&StrCtx::new("Avenue"), "Ave"));
        assert!(!p.consistent_with(&StrCtx::new("Street"), "Sx"));
        assert!(!p.is_deterministic());
        assert_eq!(p.eval(&StrCtx::new("Street")), None);
    }

    #[test]
    fn consistency_requires_full_cover() {
        let ctx = StrCtx::new("Lee, Mary");
        let p = Program::new(vec![f2()]);
        // f2 produces "M", not "M." — partial covers do not count.
        assert!(p.consistent_with(&ctx, "M"));
        assert!(!p.consistent_with(&ctx, "M."));
    }

    #[test]
    fn extended_builds_longer_program() {
        let p = Program::empty()
            .extended(f2())
            .extended(f3())
            .extended(f1());
        assert_eq!(p.len(), 3);
        assert_eq!(p.eval(&StrCtx::new("Lee, Mary")).as_deref(), Some("M. Lee"));
    }

    #[test]
    fn display_concatenation() {
        let p = Program::new(vec![f3(), StringFn::constant("x")]);
        assert_eq!(p.to_string(), "ConstantStr(\". \") ⊕ ConstantStr(\"x\")");
        assert_eq!(Program::empty().to_string(), "ε");
    }

    #[test]
    fn consistent_with_empty_target_is_false_for_nonempty_program() {
        let ctx = StrCtx::new("abc");
        let p = Program::new(vec![StringFn::constant("a")]);
        assert!(!p.consistent_with(&ctx, ""));
    }
}
