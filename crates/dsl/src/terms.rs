//! Terms: the character classes and constant strings that position functions
//! match against.
//!
//! The paper (Section 4.1 / Appendix B) pre-defines four regex-based terms —
//! capital letters `TC = [A-Z]+`, lowercase letters `Tl = [a-z]+`, digits
//! `Td = [0-9]+` and whitespace `Tb = \s+` — and additionally allows constant
//! string terms (a term `Tstr` that matches exactly the string `str`).
//! Single-character terms used by the structure signatures of Section 7.2 are
//! a special case of constant string terms.
//!
//! Matching is maximal-munch for the class terms: consecutive characters of the
//! same class form a single match, exactly like the `+`-quantified regexes in
//! the paper.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A term: either one of the four character classes or a constant string.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Term {
    /// `TC = [A-Z]+` (ASCII uppercase letters).
    Upper,
    /// `Tl = [a-z]+` (ASCII lowercase letters).
    Lower,
    /// `Td = [0-9]+` (ASCII digits).
    Digits,
    /// `Tb = \s+` (Unicode whitespace).
    Whitespace,
    /// A constant string term `Tstr`; matches exactly `str` (non-empty).
    Literal(Arc<str>),
}

impl Term {
    /// Creates a constant-string term.
    ///
    /// # Panics
    /// Panics if `s` is empty — a term must match a non-empty substring.
    pub fn literal(s: impl AsRef<str>) -> Self {
        let s = s.as_ref();
        assert!(!s.is_empty(), "literal terms must be non-empty");
        Term::Literal(Arc::from(s))
    }

    /// Returns true for the four regex-based character-class terms.
    pub fn is_class(&self) -> bool {
        !matches!(self, Term::Literal(_))
    }

    /// Does `c` belong to this character class? Always false for literals.
    pub fn contains_char(&self, c: char) -> bool {
        match self {
            Term::Upper => c.is_ascii_uppercase(),
            Term::Lower => c.is_ascii_lowercase(),
            Term::Digits => c.is_ascii_digit(),
            Term::Whitespace => c.is_whitespace(),
            Term::Literal(_) => false,
        }
    }

    /// The "width" of the character class, used for the static order of
    /// position functions (Appendix E): wider classes are preferred. Literals
    /// have width 0 (narrowest).
    pub fn class_width(&self) -> u32 {
        match self {
            Term::Whitespace => 4,
            Term::Upper => 3,
            Term::Lower => 3,
            Term::Digits => 2,
            Term::Literal(_) => 0,
        }
    }

    /// All non-overlapping matches of this term in `chars`, in left-to-right
    /// order, as half-open character-index ranges.
    ///
    /// Class terms use maximal munch (a run of class characters is one match);
    /// literal terms find every occurrence, scanning left to right and
    /// restarting after each match end (non-overlapping).
    pub fn matches(&self, chars: &[char]) -> Vec<TermMatch> {
        match self {
            Term::Literal(lit) => literal_matches(lit, chars),
            _ => class_matches(self, chars),
        }
    }

    /// Number of matches of this term in `chars`.
    pub fn match_count(&self, chars: &[char]) -> usize {
        self.matches(chars).len()
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Upper => write!(f, "TC"),
            Term::Lower => write!(f, "Tl"),
            Term::Digits => write!(f, "Td"),
            Term::Whitespace => write!(f, "Tb"),
            Term::Literal(s) => write!(f, "T{:?}", s),
        }
    }
}

/// A single match of a term: the half-open character range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TermMatch {
    /// Character index of the first character of the match.
    pub start: usize,
    /// Character index one past the last character of the match.
    pub end: usize,
}

impl TermMatch {
    /// Length of the match in characters.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the match is empty (never produced by [`Term::matches`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

fn class_matches(term: &Term, chars: &[char]) -> Vec<TermMatch> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if term.contains_char(chars[i]) {
            let start = i;
            while i < chars.len() && term.contains_char(chars[i]) {
                i += 1;
            }
            out.push(TermMatch { start, end: i });
        } else {
            i += 1;
        }
    }
    out
}

fn literal_matches(lit: &str, chars: &[char]) -> Vec<TermMatch> {
    let needle: Vec<char> = lit.chars().collect();
    if needle.is_empty() || needle.len() > chars.len() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut i = 0;
    while i + needle.len() <= chars.len() {
        if chars[i..i + needle.len()] == needle[..] {
            out.push(TermMatch {
                start: i,
                end: i + needle.len(),
            });
            i += needle.len();
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn class_membership() {
        assert!(Term::Upper.contains_char('A'));
        assert!(!Term::Upper.contains_char('a'));
        assert!(Term::Lower.contains_char('z'));
        assert!(!Term::Lower.contains_char('Z'));
        assert!(Term::Digits.contains_char('7'));
        assert!(!Term::Digits.contains_char('x'));
        assert!(Term::Whitespace.contains_char(' '));
        assert!(Term::Whitespace.contains_char('\t'));
        assert!(!Term::Whitespace.contains_char('-'));
        assert!(!Term::literal("ab").contains_char('a'));
    }

    #[test]
    fn upper_matches_maximal_munch() {
        // "Lee, Mary": TC matches "L" at [0,1) and "M" at [5,6).
        let s = chars("Lee, Mary");
        let m = Term::Upper.matches(&s);
        assert_eq!(
            m,
            vec![
                TermMatch { start: 0, end: 1 },
                TermMatch { start: 5, end: 6 }
            ]
        );
    }

    #[test]
    fn lower_matches() {
        let s = chars("Lee, Mary");
        let m = Term::Lower.matches(&s);
        assert_eq!(
            m,
            vec![
                TermMatch { start: 1, end: 3 },
                TermMatch { start: 6, end: 9 }
            ]
        );
    }

    #[test]
    fn digit_and_whitespace_matches() {
        let s = chars("9 St, 02141 WI");
        assert_eq!(
            Term::Digits.matches(&s),
            vec![
                TermMatch { start: 0, end: 1 },
                TermMatch { start: 6, end: 11 }
            ]
        );
        assert_eq!(Term::Whitespace.matches(&s).len(), 3);
    }

    #[test]
    fn consecutive_run_is_single_match() {
        let s = chars("ABCdefGHI");
        assert_eq!(
            Term::Upper.matches(&s),
            vec![
                TermMatch { start: 0, end: 3 },
                TermMatch { start: 6, end: 9 }
            ]
        );
    }

    #[test]
    fn literal_matches_non_overlapping() {
        let s = chars("aaaa");
        let m = Term::literal("aa").matches(&s);
        assert_eq!(
            m,
            vec![
                TermMatch { start: 0, end: 2 },
                TermMatch { start: 2, end: 4 }
            ]
        );
    }

    #[test]
    fn literal_not_found() {
        let s = chars("abc");
        assert!(Term::literal("xyz").matches(&s).is_empty());
        assert!(Term::literal("abcd").matches(&s).is_empty());
    }

    #[test]
    fn literal_full_string() {
        let s = chars("M. Lee");
        assert_eq!(
            Term::literal("M. Lee").matches(&s),
            vec![TermMatch { start: 0, end: 6 }]
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_literal_panics() {
        let _ = Term::literal("");
    }

    #[test]
    fn empty_input_has_no_matches() {
        for t in [
            Term::Upper,
            Term::Lower,
            Term::Digits,
            Term::Whitespace,
            Term::literal("a"),
        ] {
            assert!(t.matches(&[]).is_empty());
        }
    }

    #[test]
    fn class_width_order() {
        assert!(Term::Whitespace.class_width() > Term::Upper.class_width());
        assert!(Term::Upper.class_width() > Term::Digits.class_width());
        assert!(Term::Digits.class_width() > Term::literal("x").class_width());
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Term::Upper.to_string(), "TC");
        assert_eq!(Term::Lower.to_string(), "Tl");
        assert_eq!(Term::Digits.to_string(), "Td");
        assert_eq!(Term::Whitespace.to_string(), "Tb");
        assert_eq!(Term::literal("St").to_string(), "T\"St\"");
    }

    #[test]
    fn non_ascii_letters_are_not_class_members() {
        // Non-ASCII alphabetic characters fall through to single-character
        // literal terms, mirroring the paper's ASCII regexes.
        assert!(!Term::Upper.contains_char('É'));
        assert!(!Term::Lower.contains_char('é'));
    }

    #[test]
    fn unicode_literal_matching_uses_char_indices() {
        let s = chars("café bar");
        let m = Term::literal("é").matches(&s);
        assert_eq!(m, vec![TermMatch { start: 3, end: 4 }]);
    }
}
