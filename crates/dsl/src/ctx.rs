//! [`StrCtx`]: a prepared view of an input string.
//!
//! Every position function, string function and program in this crate is
//! evaluated against an input string `s` (the paper's "global parameter").
//! [`StrCtx`] decodes `s` into characters once and caches the matches of the
//! four character-class terms so that repeated evaluation — the transformation
//! graph builder evaluates thousands of candidate functions per replacement —
//! does not rescan the string.

use crate::terms::{Term, TermMatch};
use crate::CLASS_TERMS;

/// A prepared input string: the original text, its characters, and cached
/// matches of the four character-class terms.
#[derive(Debug, Clone)]
pub struct StrCtx<'a> {
    s: &'a str,
    chars: Vec<char>,
    class_matches: [Vec<TermMatch>; 4],
}

impl<'a> StrCtx<'a> {
    /// Prepares `s` for evaluation.
    pub fn new(s: &'a str) -> Self {
        let chars: Vec<char> = s.chars().collect();
        let class_matches = [
            CLASS_TERMS[0].matches(&chars),
            CLASS_TERMS[1].matches(&chars),
            CLASS_TERMS[2].matches(&chars),
            CLASS_TERMS[3].matches(&chars),
        ];
        StrCtx {
            s,
            chars,
            class_matches,
        }
    }

    /// The original string.
    pub fn as_str(&self) -> &'a str {
        self.s
    }

    /// The characters of the string.
    pub fn chars(&self) -> &[char] {
        &self.chars
    }

    /// Number of characters (`|s|`). Positions range over `0..=len()`.
    pub fn len(&self) -> usize {
        self.chars.len()
    }

    /// True when the string is empty.
    pub fn is_empty(&self) -> bool {
        self.chars.is_empty()
    }

    /// All matches of `term` in the string. Class-term matches are served from
    /// the cache; literal terms are matched on demand.
    pub fn matches(&self, term: &Term) -> Vec<TermMatch> {
        match term {
            Term::Upper => self.class_matches[0].clone(),
            Term::Lower => self.class_matches[1].clone(),
            Term::Digits => self.class_matches[2].clone(),
            Term::Whitespace => self.class_matches[3].clone(),
            Term::Literal(_) => term.matches(&self.chars),
        }
    }

    /// Cached matches of a class term, by reference (panics on literals).
    pub fn class_matches(&self, term: &Term) -> &[TermMatch] {
        match term {
            Term::Upper => &self.class_matches[0],
            Term::Lower => &self.class_matches[1],
            Term::Digits => &self.class_matches[2],
            Term::Whitespace => &self.class_matches[3],
            Term::Literal(_) => panic!("class_matches called with a literal term"),
        }
    }

    /// The substring spanning character positions `[i, j)`, as an owned string.
    ///
    /// # Panics
    /// Panics if `i > j` or `j > len()`.
    pub fn slice(&self, i: usize, j: usize) -> String {
        assert!(i <= j && j <= self.chars.len(), "slice out of bounds");
        self.chars[i..j].iter().collect()
    }

    /// Resolves the `k`-th match (1-based; negative counts from the end as in
    /// the paper: `-1` is the last match) of `term`.
    pub fn kth_match(&self, term: &Term, k: i32) -> Option<TermMatch> {
        let matches = self.matches(term);
        resolve_kth(&matches, k)
    }
}

/// Resolves a paper-style match ordinal: positive `k` is the `k`-th match from
/// the left (1-based); negative `k` is resolved as `m + 1 + k` where `m` is the
/// number of matches (so `-1` is the last). Returns `None` when out of range or
/// `k == 0`.
pub(crate) fn resolve_kth(matches: &[TermMatch], k: i32) -> Option<TermMatch> {
    let m = matches.len() as i64;
    let k = k as i64;
    let idx = if k > 0 {
        k
    } else if k < 0 {
        m + 1 + k
    } else {
        return None;
    };
    if idx >= 1 && idx <= m {
        Some(matches[(idx - 1) as usize])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let ctx = StrCtx::new("Lee, Mary");
        assert_eq!(ctx.len(), 9);
        assert!(!ctx.is_empty());
        assert_eq!(ctx.as_str(), "Lee, Mary");
        assert_eq!(ctx.slice(0, 3), "Lee");
        assert_eq!(ctx.slice(5, 9), "Mary");
        assert_eq!(ctx.slice(4, 4), "");
    }

    #[test]
    fn cached_class_matches_agree_with_direct_matching() {
        let ctx = StrCtx::new("9th St, 02141 WI");
        for term in CLASS_TERMS {
            assert_eq!(ctx.matches(&term), term.matches(ctx.chars()));
        }
    }

    #[test]
    fn kth_match_positive_and_negative() {
        let ctx = StrCtx::new("Lee, Mary");
        // TC matches: [0,1) "L" and [5,6) "M".
        assert_eq!(
            ctx.kth_match(&Term::Upper, 1),
            Some(TermMatch { start: 0, end: 1 })
        );
        assert_eq!(
            ctx.kth_match(&Term::Upper, 2),
            Some(TermMatch { start: 5, end: 6 })
        );
        assert_eq!(
            ctx.kth_match(&Term::Upper, -1),
            Some(TermMatch { start: 5, end: 6 })
        );
        assert_eq!(
            ctx.kth_match(&Term::Upper, -2),
            Some(TermMatch { start: 0, end: 1 })
        );
        assert_eq!(ctx.kth_match(&Term::Upper, 3), None);
        assert_eq!(ctx.kth_match(&Term::Upper, -3), None);
        assert_eq!(ctx.kth_match(&Term::Upper, 0), None);
    }

    #[test]
    fn literal_matches_via_ctx() {
        let ctx = StrCtx::new("Main Street and Wall Street");
        let m = ctx.matches(&Term::literal("Street"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn empty_string_ctx() {
        let ctx = StrCtx::new("");
        assert_eq!(ctx.len(), 0);
        assert!(ctx.is_empty());
        assert!(ctx.matches(&Term::Upper).is_empty());
        assert_eq!(ctx.slice(0, 0), "");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let ctx = StrCtx::new("ab");
        let _ = ctx.slice(1, 5);
    }

    #[test]
    fn unicode_positions_are_char_based() {
        let ctx = StrCtx::new("café 9");
        assert_eq!(ctx.len(), 6);
        assert_eq!(ctx.slice(0, 4), "café");
        assert_eq!(
            ctx.kth_match(&Term::Digits, 1),
            Some(TermMatch { start: 5, end: 6 })
        );
    }
}
