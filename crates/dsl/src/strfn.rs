//! String functions: the building blocks of transformation programs.
//!
//! The paper's original DSL (Appendix B) defines two string functions —
//! [`StringFn::ConstantStr`] and [`StringFn::SubStr`] — each of which maps the
//! input string to a single output string. Appendix D extends the DSL with two
//! *affix* functions, [`StringFn::Prefix`] and [`StringFn::Suffix`], which are
//! multi-valued: `Prefix(τ, k)` can produce *any* non-empty prefix of the
//! `k`-th match of `τ` in the input. Multi-valued functions cannot be
//! evaluated to a single string, so this module exposes two evaluation modes:
//!
//! * [`StringFn::eval`] — the unique output, `None` for affix functions;
//! * [`StringFn::can_produce`] — whether the function can produce a specific
//!   candidate output, which is what the transformation-graph machinery and
//!   [`crate::Program::consistent_with`] need.

use crate::ctx::StrCtx;
use crate::position::PositionFn;
use crate::terms::Term;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A string function of the (extended) DSL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StringFn {
    /// `ConstantStr(x)`: outputs the constant string `x` regardless of input.
    ConstantStr(Arc<str>),
    /// `SubStr(l, r)`: outputs the substring of the input delimited by the two
    /// position functions (`l < r` required at evaluation time).
    SubStr(PositionFn, PositionFn),
    /// `Prefix(τ, k)`: outputs any non-empty prefix of the `k`-th match of
    /// `τ` in the input (Appendix D extension).
    Prefix {
        /// The class term whose match is taken.
        term: Term,
        /// 1-based match ordinal; negative counts from the back.
        k: i32,
    },
    /// `Suffix(τ, k)`: outputs any non-empty suffix of the `k`-th match of
    /// `τ` in the input (Appendix D extension).
    Suffix {
        /// The class term whose match is taken.
        term: Term,
        /// 1-based match ordinal; negative counts from the back.
        k: i32,
    },
}

impl StringFn {
    /// Convenience constructor for [`StringFn::ConstantStr`].
    pub fn constant(s: impl AsRef<str>) -> Self {
        StringFn::ConstantStr(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for [`StringFn::SubStr`].
    pub fn sub_str(l: PositionFn, r: PositionFn) -> Self {
        StringFn::SubStr(l, r)
    }

    /// Convenience constructor for [`StringFn::Prefix`].
    pub fn prefix(term: Term, k: i32) -> Self {
        StringFn::Prefix { term, k }
    }

    /// Convenience constructor for [`StringFn::Suffix`].
    pub fn suffix(term: Term, k: i32) -> Self {
        StringFn::Suffix { term, k }
    }

    /// True for the deterministic (single-valued) functions of the original
    /// DSL; false for the multi-valued affix extension.
    pub fn is_deterministic(&self) -> bool {
        matches!(self, StringFn::ConstantStr(_) | StringFn::SubStr(_, _))
    }

    /// True for the affix (Prefix/Suffix) functions.
    pub fn is_affix(&self) -> bool {
        !self.is_deterministic()
    }

    /// Evaluates the function to its unique output, when it has one.
    ///
    /// Returns `None` when the function is undefined on this input (e.g. a
    /// position function out of range, or `l >= r`) and for the multi-valued
    /// affix functions.
    pub fn eval(&self, ctx: &StrCtx<'_>) -> Option<String> {
        match self {
            StringFn::ConstantStr(x) => Some(x.to_string()),
            StringFn::SubStr(l, r) => {
                let i = l.eval(ctx)?;
                let j = r.eval(ctx)?;
                if i < j {
                    Some(ctx.slice(i, j))
                } else {
                    None
                }
            }
            StringFn::Prefix { .. } | StringFn::Suffix { .. } => None,
        }
    }

    /// Can this function produce `out` when applied to `ctx`?
    ///
    /// For deterministic functions this checks equality with [`StringFn::eval`];
    /// for affix functions it checks that `out` is a non-empty prefix (resp.
    /// suffix) of the selected term match.
    pub fn can_produce(&self, ctx: &StrCtx<'_>, out: &str) -> bool {
        if out.is_empty() {
            return false;
        }
        match self {
            StringFn::ConstantStr(_) | StringFn::SubStr(_, _) => {
                self.eval(ctx).as_deref() == Some(out)
            }
            StringFn::Prefix { term, k } => match ctx.kth_match(term, *k) {
                Some(m) => {
                    let matched = ctx.slice(m.start, m.end);
                    matched.starts_with(out)
                }
                None => false,
            },
            StringFn::Suffix { term, k } => match ctx.kth_match(term, *k) {
                Some(m) => {
                    let matched = ctx.slice(m.start, m.end);
                    matched.ends_with(out)
                }
                None => false,
            },
        }
    }

    /// The length of the constant, if this is a [`StringFn::ConstantStr`].
    pub fn constant_len(&self) -> Option<usize> {
        match self {
            StringFn::ConstantStr(x) => Some(x.chars().count()),
            _ => None,
        }
    }
}

impl fmt::Display for StringFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StringFn::ConstantStr(x) => write!(f, "ConstantStr({x:?})"),
            StringFn::SubStr(l, r) => write!(f, "SubStr({l}, {r})"),
            StringFn::Prefix { term, k } => write!(f, "Prefix({term}, {k})"),
            StringFn::Suffix { term, k } => write!(f, "Suffix({term}, {k})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::position::Dir;

    fn ctx() -> StrCtx<'static> {
        StrCtx::new("Lee, Mary")
    }

    // Paper Example B.2.
    #[test]
    fn paper_example_b2() {
        let c = ctx();
        assert_eq!(StringFn::constant("MIT").eval(&c).as_deref(), Some("MIT"));
        let f = StringFn::sub_str(
            PositionFn::match_pos(Term::Upper, 1, Dir::Begin),
            PositionFn::match_pos(Term::Lower, 1, Dir::End),
        );
        assert_eq!(f.eval(&c).as_deref(), Some("Lee"));
    }

    #[test]
    fn substr_undefined_when_positions_cross_or_missing() {
        let c = ctx();
        // l >= r.
        let f = StringFn::sub_str(
            PositionFn::match_pos(Term::Upper, 2, Dir::Begin),
            PositionFn::match_pos(Term::Upper, 1, Dir::End),
        );
        assert_eq!(f.eval(&c), None);
        // Missing match.
        let g = StringFn::sub_str(
            PositionFn::match_pos(Term::Digits, 1, Dir::Begin),
            PositionFn::const_pos(-1),
        );
        assert_eq!(g.eval(&c), None);
        // Equal positions produce the empty string, which is disallowed.
        let h = StringFn::sub_str(PositionFn::const_pos(2), PositionFn::const_pos(2));
        assert_eq!(h.eval(&c), None);
    }

    #[test]
    fn can_produce_deterministic() {
        let c = ctx();
        let f = StringFn::sub_str(
            PositionFn::match_pos(Term::Upper, 1, Dir::Begin),
            PositionFn::match_pos(Term::Lower, 1, Dir::End),
        );
        assert!(f.can_produce(&c, "Lee"));
        assert!(!f.can_produce(&c, "Le"));
        assert!(!f.can_produce(&c, ""));
        assert!(StringFn::constant("M. ").can_produce(&c, "M. "));
        assert!(!StringFn::constant("M. ").can_produce(&c, "M."));
    }

    // Paper Example D.1: Street -> St via Prefix.
    #[test]
    fn paper_example_d1_prefix() {
        let c = StrCtx::new("Street");
        // 'treet' is the 1st lowercase match; 't' is a prefix of it.
        let f = StringFn::prefix(Term::Lower, 1);
        assert!(f.can_produce(&c, "t"));
        assert!(f.can_produce(&c, "tree"));
        assert!(!f.can_produce(&c, "reet"));
        assert_eq!(f.eval(&c), None, "affix functions are multi-valued");

        let c2 = StrCtx::new("Avenue");
        // 've' is a prefix of 'venue'.
        assert!(StringFn::prefix(Term::Lower, 1).can_produce(&c2, "ve"));
    }

    #[test]
    fn suffix_semantics() {
        let c = StrCtx::new("Wisconsin");
        // Lowercase match is "isconsin"; "sin" is a suffix of it.
        let f = StringFn::suffix(Term::Lower, 1);
        assert!(f.can_produce(&c, "sin"));
        assert!(f.can_produce(&c, "isconsin"));
        assert!(!f.can_produce(&c, "Wis"));
    }

    #[test]
    fn affix_out_of_range_match() {
        let c = StrCtx::new("ABC");
        assert!(!StringFn::prefix(Term::Lower, 1).can_produce(&c, "a"));
        assert!(!StringFn::suffix(Term::Digits, -1).can_produce(&c, "1"));
    }

    #[test]
    fn deterministic_flags() {
        assert!(StringFn::constant("x").is_deterministic());
        assert!(!StringFn::prefix(Term::Lower, 1).is_deterministic());
        assert!(StringFn::suffix(Term::Lower, 1).is_affix());
    }

    #[test]
    fn constant_len_counts_chars() {
        assert_eq!(StringFn::constant("héllo").constant_len(), Some(5));
        assert_eq!(
            StringFn::sub_str(PositionFn::const_pos(1), PositionFn::const_pos(2)).constant_len(),
            None
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            StringFn::constant("M. ").to_string(),
            "ConstantStr(\"M. \")"
        );
        assert_eq!(
            StringFn::prefix(Term::Lower, 1).to_string(),
            "Prefix(Tl, 1)"
        );
    }
}
