//! Parsing transformation programs back from their display syntax.
//!
//! Every DSL type renders to a stable, human-readable form (`ConstantStr(".
//! ")`, `SubStr(MatchPos(TC, 1, B), ConstPos(3))`, `Prefix(Tl, 1)`, programs
//! joined with `⊕`). This module makes that syntax a real serialization
//! format: [`parse_program`] (and `Program`'s [`std::str::FromStr`]) parse it
//! back, so learned programs can be stored in text snapshots — the
//! program-library format of `ec-core` — and reloaded without a binary
//! serializer. The grammar is exactly what [`std::fmt::Display`] emits;
//! string contents use Rust's debug escaping.

use crate::position::{Dir, PositionFn};
use crate::program::Program;
use crate::strfn::StringFn;
use crate::terms::Term;
use std::fmt;

/// A failure while parsing program syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a program from its display syntax (`f1 ⊕ f2 ⊕ …`, or `ε` for the
/// empty program). The whole input must be consumed.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut cursor = Cursor::new(text);
    cursor.skip_ws();
    if cursor.eat("ε") {
        cursor.skip_ws();
        cursor.expect_end()?;
        return Ok(Program::empty());
    }
    let mut fns = vec![cursor.parse_string_fn()?];
    loop {
        cursor.skip_ws();
        if cursor.eat("⊕") {
            cursor.skip_ws();
            fns.push(cursor.parse_string_fn()?);
        } else {
            break;
        }
    }
    cursor.expect_end()?;
    Ok(Program::new(fns))
}

impl std::str::FromStr for Program {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_program(s)
    }
}

/// Escapes `s` exactly like the display syntax does (Rust debug escaping,
/// including the surrounding quotes).
pub fn quote(s: &str) -> String {
    format!("{s:?}")
}

/// Parses one quoted string (as produced by [`quote`]) at the start of
/// `text`, returning the unescaped contents and the rest of the input.
pub fn unquote(text: &str) -> Result<(String, &str), ParseError> {
    let mut cursor = Cursor::new(text);
    let s = cursor.parse_quoted()?;
    Ok((s, &text[cursor.pos..]))
}

struct Cursor<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor { text, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.text.len() - trimmed.len();
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            self.err(format!("expected '{token}'"))
        }
    }

    fn expect_end(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        if self.rest().is_empty() {
            Ok(())
        } else {
            self.err("trailing input after program")
        }
    }

    fn parse_string_fn(&mut self) -> Result<StringFn, ParseError> {
        self.skip_ws();
        if self.eat("ConstantStr(") {
            let s = self.parse_quoted()?;
            self.expect(")")?;
            Ok(StringFn::constant(s))
        } else if self.eat("SubStr(") {
            let l = self.parse_position_fn()?;
            self.expect(",")?;
            self.skip_ws();
            let r = self.parse_position_fn()?;
            self.expect(")")?;
            Ok(StringFn::sub_str(l, r))
        } else if self.eat("Prefix(") {
            let (term, k) = self.parse_term_and_ordinal()?;
            Ok(StringFn::prefix(term, k))
        } else if self.eat("Suffix(") {
            let (term, k) = self.parse_term_and_ordinal()?;
            Ok(StringFn::suffix(term, k))
        } else {
            self.err("expected ConstantStr, SubStr, Prefix or Suffix")
        }
    }

    fn parse_term_and_ordinal(&mut self) -> Result<(Term, i32), ParseError> {
        let term = self.parse_term()?;
        self.expect(",")?;
        self.skip_ws();
        let k = self.parse_i32()?;
        self.expect(")")?;
        Ok((term, k))
    }

    fn parse_position_fn(&mut self) -> Result<PositionFn, ParseError> {
        self.skip_ws();
        if self.eat("ConstPos(") {
            let k = self.parse_i32()?;
            self.expect(")")?;
            Ok(PositionFn::const_pos(k))
        } else if self.eat("MatchPos(") {
            let term = self.parse_term()?;
            self.expect(",")?;
            self.skip_ws();
            let k = self.parse_i32()?;
            self.expect(",")?;
            self.skip_ws();
            let dir = if self.eat("B") {
                Dir::Begin
            } else if self.eat("E") {
                Dir::End
            } else {
                return self.err("expected direction B or E");
            };
            self.expect(")")?;
            Ok(PositionFn::match_pos(term, k, dir))
        } else {
            self.err("expected ConstPos or MatchPos")
        }
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        // Longest-match first: TC before T"…" (both start with 'T').
        if self.eat("TC") {
            Ok(Term::Upper)
        } else if self.eat("Tl") {
            Ok(Term::Lower)
        } else if self.eat("Td") {
            Ok(Term::Digits)
        } else if self.eat("Tb") {
            Ok(Term::Whitespace)
        } else if self.rest().starts_with("T\"") {
            self.pos += 1;
            let s = self.parse_quoted()?;
            if s.is_empty() {
                return self.err("literal terms must be non-empty");
            }
            Ok(Term::literal(s))
        } else {
            self.err("expected term TC, Tl, Td, Tb or T\"…\"")
        }
    }

    fn parse_i32(&mut self) -> Result<i32, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        let digits_end = rest
            .char_indices()
            .take_while(|&(i, c)| c.is_ascii_digit() || (i == 0 && c == '-'))
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        let token = &rest[..digits_end];
        match token.parse() {
            Ok(n) => {
                self.pos += digits_end;
                Ok(n)
            }
            Err(_) => self.err("expected an integer"),
        }
    }

    /// Parses a Rust-debug-escaped quoted string (`"a\tb"`).
    fn parse_quoted(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        self.expect("\"")?;
        let mut out = String::new();
        let mut chars = self.rest().char_indices();
        loop {
            let Some((i, c)) = chars.next() else {
                return self.err("unterminated string");
            };
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => {
                    let Some((_, esc)) = chars.next() else {
                        return self.err("dangling escape");
                    };
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '\'' => out.push('\''),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        '0' => out.push('\0'),
                        'u' => {
                            // \u{XXXX}
                            match chars.next() {
                                Some((_, '{')) => {}
                                _ => return self.err("expected '{' after \\u"),
                            }
                            let mut code = String::new();
                            loop {
                                match chars.next() {
                                    Some((_, '}')) => break,
                                    Some((_, h)) if h.is_ascii_hexdigit() => code.push(h),
                                    _ => return self.err("bad \\u escape"),
                                }
                            }
                            let value =
                                u32::from_str_radix(&code, 16).ok().and_then(char::from_u32);
                            match value {
                                Some(ch) => out.push(ch),
                                None => return self.err("invalid unicode escape"),
                            }
                        }
                        other => return self.err(format!("unknown escape '\\{other}'")),
                    }
                }
                other => out.push(other),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(program: Program) {
        let text = program.to_string();
        let parsed: Program = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(parsed, program, "{text}");
    }

    #[test]
    fn figure3_program_round_trips() {
        round_trip(Program::new(vec![
            StringFn::sub_str(
                PositionFn::match_pos(Term::Whitespace, 1, Dir::End),
                PositionFn::match_pos(Term::Upper, -1, Dir::End),
            ),
            StringFn::constant(". "),
            StringFn::sub_str(
                PositionFn::match_pos(Term::Upper, 1, Dir::Begin),
                PositionFn::match_pos(Term::Lower, 1, Dir::End),
            ),
        ]));
    }

    #[test]
    fn every_function_kind_round_trips() {
        round_trip(Program::new(vec![
            StringFn::constant("x \"quoted\" \\ tab\t nl\n é"),
            StringFn::prefix(Term::Lower, 1),
            StringFn::suffix(Term::Digits, -2),
            StringFn::sub_str(PositionFn::const_pos(-3), PositionFn::const_pos(4)),
            StringFn::sub_str(
                PositionFn::match_pos(Term::literal("St. #5, x"), 2, Dir::Begin),
                PositionFn::match_pos(Term::Whitespace, -1, Dir::End),
            ),
        ]));
        round_trip(Program::empty());
    }

    #[test]
    fn constants_containing_the_join_symbol_round_trip() {
        round_trip(Program::new(vec![
            StringFn::constant("a ⊕ b"),
            StringFn::constant("ε"),
        ]));
    }

    #[test]
    fn parse_errors_name_the_offset() {
        let err = parse_program("SubStr(ConstPos(1)").unwrap_err();
        assert!(err.to_string().contains("expected ','"), "{err}");
        assert!(parse_program("Bogus(1)").is_err());
        assert!(parse_program("ConstantStr(\"unterminated)").is_err());
        assert!(parse_program("ConstantStr(\"x\") trailing").is_err());
        assert!(parse_program("Prefix(T\"\", 1)").is_err());
        assert!(parse_program("MatchPos(TC, 1, B)").is_err(), "not a fn");
    }

    #[test]
    fn quote_and_unquote_are_inverse() {
        for s in ["", "plain", "with \"quotes\"", "\\ \t\n\r\0", "ünïcodé ⊕"] {
            let quoted = quote(s);
            let (back, rest) = unquote(&quoted).unwrap();
            assert_eq!(back, s);
            assert!(rest.is_empty());
        }
        let (s, rest) = unquote("\"a b\" tail").unwrap();
        assert_eq!(s, "a b");
        assert_eq!(rest, " tail");
    }

    #[test]
    fn parsed_program_still_evaluates() {
        let text = "SubStr(MatchPos(Tb, 1, E), MatchPos(TC, -1, E)) ⊕ ConstantStr(\". \") \
                    ⊕ SubStr(MatchPos(TC, 1, B), MatchPos(Tl, 1, E))";
        let program: Program = text.parse().unwrap();
        let ctx = crate::StrCtx::new("Lee, Mary");
        assert_eq!(program.eval(&ctx).as_deref(), Some("M. Lee"));
    }
}
