//! Property-based tests for the DSL: invariants that must hold for arbitrary
//! input strings and arbitrary (well-formed) functions.

use ec_dsl::{Dir, PositionFn, Program, StrCtx, StringFn, Term, CLASS_TERMS};
use proptest::prelude::*;

fn arb_string() -> impl Strategy<Value = String> {
    // A mix of the character classes the DSL knows about plus punctuation.
    proptest::string::string_regex("[A-Za-z0-9 ,.\\-()]{0,24}").unwrap()
}

fn arb_class_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        Just(Term::Upper),
        Just(Term::Lower),
        Just(Term::Digits),
        Just(Term::Whitespace),
    ]
}

fn arb_position_fn() -> impl Strategy<Value = PositionFn> {
    prop_oneof![
        (-6i32..=6).prop_map(PositionFn::ConstPos),
        (
            arb_class_term(),
            -3i32..=3,
            prop_oneof![Just(Dir::Begin), Just(Dir::End)]
        )
            .prop_map(|(term, k, dir)| PositionFn::MatchPos { term, k, dir }),
    ]
}

fn arb_string_fn() -> impl Strategy<Value = StringFn> {
    prop_oneof![
        "[A-Za-z0-9 .,]{1,6}".prop_map(StringFn::constant),
        (arb_position_fn(), arb_position_fn()).prop_map(|(l, r)| StringFn::sub_str(l, r)),
        (arb_class_term(), -3i32..=3).prop_map(|(t, k)| StringFn::prefix(t, k)),
        (arb_class_term(), -3i32..=3).prop_map(|(t, k)| StringFn::suffix(t, k)),
    ]
}

proptest! {
    /// Term matches are sorted, disjoint, non-empty and within bounds, and
    /// every character of a class match belongs to the class.
    #[test]
    fn term_matches_are_well_formed(s in arb_string(), term in arb_class_term()) {
        let chars: Vec<char> = s.chars().collect();
        let matches = term.matches(&chars);
        let mut prev_end = 0usize;
        for m in &matches {
            prop_assert!(m.start < m.end);
            prop_assert!(m.end <= chars.len());
            prop_assert!(m.start >= prev_end);
            prev_end = m.end;
            for &c in &chars[m.start..m.end] {
                prop_assert!(term.contains_char(c));
            }
        }
        // Maximal munch: the character just before/after a match is not in the class.
        for m in &matches {
            if m.start > 0 {
                prop_assert!(!term.contains_char(chars[m.start - 1]));
            }
            if m.end < chars.len() {
                prop_assert!(!term.contains_char(chars[m.end]));
            }
        }
    }

    /// Every character of the input is covered by exactly one class term or is
    /// a "single character term" (covered by none) — the partition property the
    /// structure signatures of Section 7.2 rely on.
    #[test]
    fn class_terms_partition_characters(s in arb_string()) {
        for c in s.chars() {
            let n = CLASS_TERMS.iter().filter(|t| t.contains_char(c)).count();
            prop_assert!(n <= 1, "character {c:?} matched {n} classes");
        }
    }

    /// Position functions always return a position within 0..=len.
    #[test]
    fn position_fn_in_bounds(s in arb_string(), f in arb_position_fn()) {
        let ctx = StrCtx::new(&s);
        if let Some(p) = f.eval(&ctx) {
            prop_assert!(p <= ctx.len());
        }
    }

    /// A deterministic string function can always produce what it evaluates to,
    /// and can_produce never accepts the empty string.
    #[test]
    fn eval_implies_can_produce(s in arb_string(), f in arb_string_fn()) {
        let ctx = StrCtx::new(&s);
        if let Some(out) = f.eval(&ctx) {
            if !out.is_empty() {
                prop_assert!(f.can_produce(&ctx, &out));
            }
        }
        prop_assert!(!f.can_produce(&ctx, ""));
    }

    /// A program built from deterministic functions is consistent with exactly
    /// its own evaluation result.
    #[test]
    fn program_consistent_with_own_output(
        s in arb_string(),
        fns in proptest::collection::vec(arb_string_fn().prop_filter("det", |f| f.is_deterministic()), 1..4),
    ) {
        let ctx = StrCtx::new(&s);
        let p = Program::new(fns);
        if let Some(out) = p.eval(&ctx) {
            if !out.is_empty() && p.fns().iter().all(|f| f.eval(&ctx).map(|o| !o.is_empty()).unwrap_or(false)) {
                let longer = format!("{out}#");
                prop_assert!(p.consistent_with(&ctx, &out));
                prop_assert!(!p.consistent_with(&ctx, &longer));
            }
        }
    }

    /// Affix functions accept exactly the prefixes/suffixes of the selected match.
    #[test]
    fn affix_accepts_only_affixes(s in arb_string(), term in arb_class_term(), k in 1i32..=2) {
        let ctx = StrCtx::new(&s);
        if let Some(m) = ctx.kth_match(&term, k) {
            let matched = ctx.slice(m.start, m.end);
            let pre = StringFn::prefix(term.clone(), k);
            let suf = StringFn::suffix(term.clone(), k);
            for end in 1..=matched.chars().count() {
                let p: String = matched.chars().take(end).collect();
                prop_assert!(pre.can_produce(&ctx, &p));
            }
            for start in 0..matched.chars().count() {
                let q: String = matched.chars().skip(start).collect();
                prop_assert!(suf.can_produce(&ctx, &q));
            }
            let longer = format!("{matched}x");
            prop_assert!(!pre.can_produce(&ctx, &longer));
        }
    }
}
