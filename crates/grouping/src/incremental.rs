//! Incremental (top-k) grouping — Section 6, Algorithms 5–7.
//!
//! Instead of partitioning all replacements upfront, [`IncrementalGrouper`]
//! produces the *next largest* group per invocation. Each graph carries an
//! upper bound (Section 6.2) on how many graphs can share its pivot path;
//! graphs are visited in decreasing upper-bound order and the scan stops as
//! soon as the best group found so far is at least as large as the next upper
//! bound. Only then is the (expensive) pivot-path search run, and only on the
//! few graphs that could still win.
//!
//! Deviation from the paper's pseudocode, documented here: the paper carries
//! per-graph lower bounds (`G_lo`) across invocations. Once graphs are removed
//! from `G` after a group is emitted those stale bounds can exceed the true
//! pivot share count, so this implementation resets the lower bounds at the
//! start of every invocation (they are still used for global-threshold pruning
//! *within* an invocation). Upper bounds remain valid across invocations —
//! removing graphs can only shrink pivot share counts — and are carried over
//! and tightened, which is where the incremental speed-up comes from.

use crate::config::GroupingConfig;
use crate::group::Group;
use crate::prepared::PreparedGraphs;
use crate::search::{PivotResult, PivotSearcher};
use ec_graph::Replacement;
use ec_index::GraphId;
use std::sync::Arc;

/// The incremental (top-k) grouper.
#[derive(Debug)]
pub struct IncrementalGrouper {
    prepared: Arc<PreparedGraphs>,
    config: GroupingConfig,
    /// Persistent per-graph upper bounds on pivot-path sharing.
    upper_bounds: Vec<u32>,
    /// Graphs not yet emitted in a group.
    active: Vec<bool>,
    /// Number of active graphs.
    remaining: usize,
    /// Replacements without graphs, emitted as trailing singleton groups.
    skipped: Vec<Replacement>,
}

impl IncrementalGrouper {
    /// Preprocesses `replacements` (Algorithm 6): graphs, inverted index and
    /// initial upper bounds.
    pub fn new(replacements: &[Replacement], config: GroupingConfig) -> Self {
        let prepared = Arc::new(PreparedGraphs::build(replacements, &config));
        Self::with_prepared(prepared, config)
    }

    /// Builds a grouper over an already-prepared (possibly shared) graph
    /// state, skipping Algorithm 6. Upper bounds, the active set and the
    /// skipped list are derived from `prepared` — they are cheap relative to
    /// graph construction and indexing, and deriving them keeps the grouper's
    /// behaviour identical to [`IncrementalGrouper::new`] over the same
    /// replacements.
    pub fn with_prepared(prepared: Arc<PreparedGraphs>, config: GroupingConfig) -> Self {
        let n = prepared.len();
        let upper_bounds: Vec<u32> = (0..n)
            .map(|g| prepared.upper_bound(GraphId(g as u32)) as u32)
            .collect();
        let skipped = prepared.skipped().to_vec();
        IncrementalGrouper {
            prepared,
            config,
            upper_bounds,
            active: vec![true; n],
            remaining: n,
            skipped,
        }
    }

    /// Access to the preprocessed graphs.
    pub fn prepared(&self) -> &PreparedGraphs {
        &self.prepared
    }

    /// Number of graphs not yet emitted in a group.
    pub fn remaining_graphs(&self) -> usize {
        self.remaining
    }

    /// Produces the next largest group (Algorithm 7), or `None` when every
    /// replacement has been emitted.
    ///
    /// Groups are produced in non-increasing size order (Theorem 6.4); after
    /// all graphs are exhausted, replacements whose graphs could not be built
    /// are emitted one per call as singleton groups.
    ///
    /// The scan runs pivot-path searches **speculatively in batches** and
    /// then replays the sequential visiting protocol over the batch's
    /// results: a search's outcome only depends on the graph, the active set
    /// and whether its true share count clears the threshold — not on the
    /// threshold's exact value — so a result computed at the batch-entry
    /// threshold can stand in for the sequential search at the (possibly
    /// higher) replay threshold. Batch sizes follow a fixed exponential ramp
    /// (1, 2, 4, … capped), *independent of the thread count*: together with
    /// [`PivotSearcher::search_many`]'s snapshot semantics this makes the
    /// emitted groups and stored upper bounds bit-identical for every
    /// [`GroupingConfig::parallelism`] — even when the step budget truncates
    /// a search — while the ramp bounds the speculation wasted when the stop
    /// condition halts mid-batch (at most one round's worth, ≤ the work
    /// already done).
    ///
    /// The ramp's early batches search only one or two graphs, which on a
    /// mega-group partition (one huge cluster of lookalikes) used to pin a
    /// single worker while the rest of the pool idled. Those batches now
    /// engage the frontier engine's parallel wave scheduling *inside* each
    /// search ([`GroupingConfig::intra_search_sharding`]), so `--threads`
    /// cuts time-to-first-group on exactly the worst-case columns.
    pub fn next_group(&mut self) -> Option<Group> {
        if self.remaining == 0 {
            return self.skipped.pop().map(Group::singleton);
        }
        let searcher = PivotSearcher::new(Arc::clone(&self.prepared), &self.config);
        // Visit active graphs in decreasing upper-bound order.
        let mut order: Vec<usize> = (0..self.prepared.len())
            .filter(|&g| self.active[g])
            .collect();
        order.sort_by_key(|&g| std::cmp::Reverse(self.upper_bounds[g]));

        let mut lower_bounds = vec![1u32; self.prepared.len()];
        let mut best: Option<PivotResult> = None;
        /// Upper limit of the speculative batch ramp.
        const MAX_SEARCH_BATCH: usize = 64;
        let mut batch_size = 1usize;
        let mut start = 0usize;
        'scan: while start < order.len() {
            let batch = &order[start..(start + batch_size).min(order.len())];
            start += batch.len();
            batch_size = (batch_size * 2).min(MAX_SEARCH_BATCH);
            // A pivot path shared by a single graph yields a singleton group
            // no matter which path it is, so the search only needs paths
            // shared by at least two graphs (threshold ≥ 1); graphs whose
            // every path is unshared fall through to the singleton fallback
            // below. This prunes conflict-heavy partitions (where most labels
            // occur in one graph only) by orders of magnitude.
            let batch_threshold = best.as_ref().map(|b| b.share_count).unwrap_or(0).max(1);
            let gids: Vec<GraphId> = batch.iter().map(|&g| GraphId(g as u32)).collect();
            let results = searcher.search_many(
                &gids,
                batch_threshold,
                &self.active,
                &mut lower_bounds,
                self.config.parallelism,
            );
            // Replay the sequential protocol over the speculative results.
            for (result, &g) in results.into_iter().zip(batch) {
                if let Some(b) = &best {
                    // Stop condition: no unvisited graph can beat the best
                    // group. Later batch results are discarded, exactly as the
                    // sequential scan would never have computed them.
                    if b.share_count >= self.upper_bounds[g] as usize {
                        break 'scan;
                    }
                }
                let threshold = best.as_ref().map(|b| b.share_count).unwrap_or(0).max(1);
                match result {
                    // `search` accepts only paths shared by strictly more than
                    // its threshold, so a speculative result that does not
                    // clear the replay threshold is exactly what the
                    // sequential search would have rejected as `None`.
                    Some(result) if result.share_count > threshold => {
                        self.upper_bounds[g] = result.share_count as u32;
                        best = Some(result);
                    }
                    _ => {
                        // The pivot of g is shared by at most `threshold` graphs.
                        self.upper_bounds[g] = self.upper_bounds[g].min(threshold as u32);
                    }
                }
            }
        }
        let Some(best) = best else {
            // No remaining graph shares a transformation path with another
            // active graph: everything left is a singleton. Emit them in the
            // deterministic visiting order, one per invocation.
            let g = order[0];
            self.active[g] = false;
            self.remaining -= 1;
            return Some(Group::singleton(
                self.prepared.replacement(GraphId(g as u32)).clone(),
            ));
        };
        let members: Vec<Replacement> = best
            .complete
            .iter()
            .map(|&g| {
                self.active[g.index()] = false;
                self.remaining -= 1;
                self.prepared.replacement(g).clone()
            })
            .collect();
        let program = self.prepared.resolve_program(&best.path);
        Some(Group::new(Some(program), members))
    }

    /// Drains the grouper, returning all remaining groups in emission order.
    pub fn all_groups(&mut self) -> Vec<Group> {
        let mut groups = Vec::new();
        while let Some(g) = self.next_group() {
            groups.push(g);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oneshot::OneShotGrouper;

    fn example_5_1() -> Vec<Replacement> {
        vec![
            Replacement::new("Lee, Mary", "M. Lee"),
            Replacement::new("Smith, James", "J. Smith"),
            Replacement::new("Lee, Mary", "Mary Lee"),
        ]
    }

    // Paper Example 6.1: the first invocation returns the group {G1, G2}.
    #[test]
    fn paper_example_6_1_first_group() {
        let mut grouper = IncrementalGrouper::new(&example_5_1(), GroupingConfig::default());
        assert_eq!(grouper.remaining_graphs(), 3);
        let first = grouper.next_group().unwrap();
        assert_eq!(first.size(), 2);
        assert!(first
            .members()
            .contains(&Replacement::new("Lee, Mary", "M. Lee")));
        assert!(first
            .members()
            .contains(&Replacement::new("Smith, James", "J. Smith")));
        assert_eq!(grouper.remaining_graphs(), 1);
        let second = grouper.next_group().unwrap();
        assert_eq!(second.size(), 1);
        assert_eq!(
            second.members()[0],
            Replacement::new("Lee, Mary", "Mary Lee")
        );
        assert!(grouper.next_group().is_none());
    }

    #[test]
    fn groups_are_emitted_in_non_increasing_size_order() {
        let mut reps = Vec::new();
        // Three transformation families of different sizes.
        let names = [
            ("Lee", "Mary"),
            ("Smith", "James"),
            ("Brown", "Anna"),
            ("Jones", "Paul"),
            ("Davis", "Emma"),
        ];
        for (last, first) in names {
            reps.push(Replacement::new(
                format!("{last}, {first}"),
                format!("{first} {last}"),
            ));
        }
        for (last, first) in &names[..3] {
            let initial = first.chars().next().unwrap();
            reps.push(Replacement::new(
                format!("{last}, {first}"),
                format!("{initial}. {last}"),
            ));
        }
        reps.push(Replacement::new("Wisconsin", "WI"));
        let mut grouper = IncrementalGrouper::new(&reps, GroupingConfig::default());
        let groups = grouper.all_groups();
        let sizes: Vec<usize> = groups.iter().map(Group::size).collect();
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "sizes must be non-increasing: {sizes:?}");
        }
        assert_eq!(
            sizes[0], 5,
            "the transposition family is the largest group: {sizes:?}"
        );
        assert_eq!(sizes.iter().sum::<usize>(), reps.len());
    }

    // Theorem 6.4: the incremental algorithm produces the same groups as the
    // one-shot algorithm, ordered by size.
    #[test]
    fn incremental_matches_one_shot_group_sizes() {
        let reps = {
            let mut v = Vec::new();
            let cluster1 = ["Mary Lee", "M. Lee", "Lee, Mary"];
            let cluster2 = ["Smith, James", "James Smith", "J. Smith"];
            for cluster in [cluster1, cluster2] {
                for a in cluster {
                    for b in cluster {
                        if a != b {
                            v.push(Replacement::new(a, b));
                        }
                    }
                }
            }
            v
        };
        let one_shot: Vec<usize> = OneShotGrouper::new(&reps, GroupingConfig::default())
            .group_all()
            .iter()
            .map(Group::size)
            .collect();
        let incremental: Vec<usize> = IncrementalGrouper::new(&reps, GroupingConfig::default())
            .all_groups()
            .iter()
            .map(Group::size)
            .collect();
        assert_eq!(
            one_shot.iter().sum::<usize>(),
            incremental.iter().sum::<usize>(),
            "both cover all replacements"
        );
        assert_eq!(one_shot[0], incremental[0], "largest group size agrees");
    }

    #[test]
    fn every_member_of_each_group_satisfies_the_shared_program() {
        let reps = vec![
            Replacement::new("Street", "St"),
            Replacement::new("Avenue", "Ave"),
            Replacement::new("Boulevard", "Blvd"),
            Replacement::new("Wisconsin", "WI"),
            Replacement::new("California", "CA"),
            Replacement::new("9th", "9"),
            Replacement::new("3rd", "3"),
        ];
        let mut grouper = IncrementalGrouper::new(&reps, GroupingConfig::default());
        let groups = grouper.all_groups();
        assert_eq!(groups.iter().map(Group::size).sum::<usize>(), reps.len());
        for g in &groups {
            if let Some(p) = g.program() {
                for r in g.members() {
                    let ctx = ec_dsl::StrCtx::new(r.lhs());
                    assert!(p.consistent_with(&ctx, r.rhs()), "{p} vs {r}");
                }
            }
        }
    }

    #[test]
    fn all_groups_is_thread_independent_even_when_the_step_budget_binds() {
        let mut reps = example_5_1();
        reps.push(Replacement::new("Smith, James", "James Smith"));
        reps.push(Replacement::new("Doe, John", "J. Doe"));
        reps.push(Replacement::new("Roe, Jane", "Jane Roe"));
        let drain = |threads: usize| {
            let config = GroupingConfig {
                max_search_steps: 20,
                parallelism: ec_graph::Parallelism::fixed(threads),
                ..GroupingConfig::default()
            };
            IncrementalGrouper::new(&reps, config).all_groups()
        };
        let base = drain(1);
        for threads in [2usize, 4, 7] {
            assert_eq!(base, drain(threads), "threads={threads}");
        }
    }

    #[test]
    fn skipped_replacements_are_emitted_last_as_singletons() {
        let config = GroupingConfig {
            graph: ec_graph::GraphConfig {
                max_output_len: Some(8),
                ..ec_graph::GraphConfig::default()
            },
            ..GroupingConfig::default()
        };
        let reps = vec![
            Replacement::new("Street", "St"),
            Replacement::new("Avenue", "Ave"),
            Replacement::new("x", "an output string that is far too long"),
        ];
        let mut grouper = IncrementalGrouper::new(&reps, config);
        let groups = grouper.all_groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].size(), 2);
        assert_eq!(groups[1].size(), 1);
        assert!(groups[1].program().is_none());
    }

    #[test]
    fn with_prepared_matches_new_and_shares_the_preparation() {
        let reps = example_5_1();
        let config = GroupingConfig::default();
        let prepared = Arc::new(PreparedGraphs::build(&reps, &config));
        let base = IncrementalGrouper::new(&reps, config.clone()).all_groups();
        let from_shared =
            IncrementalGrouper::with_prepared(Arc::clone(&prepared), config.clone()).all_groups();
        assert_eq!(base, from_shared);
        // The same preparation can seed a second, independent grouper.
        let again = IncrementalGrouper::with_prepared(prepared, config).all_groups();
        assert_eq!(base, again);
    }

    #[test]
    fn empty_input() {
        let mut grouper = IncrementalGrouper::new(&[], GroupingConfig::default());
        assert!(grouper.next_group().is_none());
        assert_eq!(grouper.remaining_graphs(), 0);
    }

    #[test]
    fn upper_bounds_never_underestimate_group_sizes() {
        // The first emitted group's size must never exceed the maximum initial
        // upper bound — otherwise the bound of Section 6.2 would be unsound.
        let reps = example_5_1();
        let grouper_probe = IncrementalGrouper::new(&reps, GroupingConfig::default());
        let max_ub = (0..grouper_probe.prepared().len())
            .map(|g| grouper_probe.prepared().upper_bound(GraphId(g as u32)))
            .max()
            .unwrap();
        let mut grouper = IncrementalGrouper::new(&reps, GroupingConfig::default());
        let first = grouper.next_group().unwrap();
        assert!(first.size() <= max_ub);
    }
}
