//! Graph/index preparation ("Preprocessing", Algorithm 6).
//!
//! [`PreparedGraphs`] owns everything the pivot-path search needs for one set
//! of candidate replacements: the transformation graphs, the shared label
//! interner and the inverted index, plus the per-graph upper bounds of
//! Section 6.2 used by the incremental algorithm.

use crate::config::GroupingConfig;
use ec_graph::{GraphBuilder, LabelId, LabelInterner, Replacement, TransformationGraph};
use ec_index::{GraphId, InvertedIndex};

/// One worker's output: each replacement with its graph and private interner
/// (`None` when the graph configuration rejected the replacement).
type BuiltChunk = Vec<(Replacement, Option<(TransformationGraph, LabelInterner)>)>;

/// The preprocessed state of one grouping problem.
#[derive(Debug, Clone)]
pub struct PreparedGraphs {
    /// Replacements whose graphs were built, in input order (deduplicated).
    replacements: Vec<Replacement>,
    /// The corresponding transformation graphs (`graphs[i]` ↔ `replacements[i]`).
    graphs: Vec<TransformationGraph>,
    /// Replacements rejected by the graph configuration (e.g. output string
    /// too long); they are emitted as singleton groups by the drivers.
    skipped: Vec<Replacement>,
    /// The shared label interner.
    interner: LabelInterner,
    /// The inverted index over all edge labels.
    index: InvertedIndex,
}

impl PreparedGraphs {
    /// Builds graphs and the inverted index for `replacements` (duplicates are
    /// removed first; input order of first occurrence is preserved).
    pub fn build(replacements: &[Replacement], config: &GroupingConfig) -> Self {
        let _span = ec_obs::span!("grouping.prepared_build", replacements.len());
        let mut unique: Vec<Replacement> = Vec::with_capacity(replacements.len());
        {
            let mut seen = std::collections::HashSet::new();
            for r in replacements {
                if seen.insert(r.clone()) {
                    unique.push(r.clone());
                }
            }
        }
        let builder = GraphBuilder::new(config.graph.clone());
        let mut interner = LabelInterner::new();
        let mut graphs = Vec::with_capacity(unique.len());
        let mut retained = Vec::with_capacity(unique.len());
        let mut skipped = Vec::new();

        let threads = config.parallelism.threads();
        if config.parallel_graph_build && threads > 1 && unique.len() >= 64 {
            // Chunks run as `'static` tasks on the shared worker pool, so the
            // replacements move behind an `Arc` and each task gets an index
            // range instead of a borrowed slice.
            let chunk_size = unique.len().div_ceil(threads);
            let unique: std::sync::Arc<Vec<Replacement>> = std::sync::Arc::new(unique);
            let tasks: Vec<ec_graph::PoolTask<BuiltChunk>> = (0..unique.len())
                .step_by(chunk_size)
                .map(|start| {
                    let unique = std::sync::Arc::clone(&unique);
                    let graph_config = config.graph.clone();
                    Box::new(move || {
                        let builder = GraphBuilder::new(graph_config);
                        unique[start..(start + chunk_size).min(unique.len())]
                            .iter()
                            .map(|r| {
                                let mut local = LabelInterner::new();
                                let g = builder.build(r, &mut local);
                                (r.clone(), g.map(|g| (g, local)))
                            })
                            .collect::<Vec<_>>()
                    }) as ec_graph::PoolTask<BuiltChunk>
                })
                .collect();
            let results: Vec<BuiltChunk> = config.parallelism.run_tasks(tasks);
            for chunk in results {
                for (r, built) in chunk {
                    match built {
                        Some((mut g, local)) => {
                            g.remap_labels(|old| interner.intern(local.resolve(old).clone()));
                            retained.push(r);
                            graphs.push(g);
                        }
                        None => skipped.push(r),
                    }
                }
            }
        } else {
            for r in &unique {
                match builder.build(r, &mut interner) {
                    Some(g) => {
                        retained.push(r.clone());
                        graphs.push(g);
                    }
                    None => skipped.push(r.clone()),
                }
            }
        }

        let index = InvertedIndex::build(&graphs, interner.len());
        PreparedGraphs {
            replacements: retained,
            graphs,
            skipped,
            interner,
            index,
        }
    }

    /// Grows the prepared state in place with `new_replacements` — the delta
    /// ingest path's alternative to a full rebuild.
    ///
    /// Replacements already present (built or skipped) are dropped, exactly as
    /// [`PreparedGraphs::build`]'s up-front dedup would drop them; the
    /// survivors' graphs are built sequentially against the *shared* interner
    /// (so labels keep interning in first-occurrence order, as a sequential
    /// build over the concatenated input would) and their postings are
    /// appended to the index via [`InvertedIndex::append`], touching only the
    /// labels the new graphs use. The result is equivalent to
    /// `PreparedGraphs::build(old ++ new, config)`. Returns the number of new
    /// graphs built.
    pub fn append(&mut self, new_replacements: &[Replacement], config: &GroupingConfig) -> usize {
        let _span = ec_obs::span!("grouping.prepared_append", new_replacements.len());
        let fresh: Vec<Replacement> = {
            let seen: std::collections::HashSet<&Replacement> = self
                .replacements
                .iter()
                .chain(self.skipped.iter())
                .collect();
            let mut batch_seen = std::collections::HashSet::new();
            new_replacements
                .iter()
                .filter(|r| !seen.contains(*r) && batch_seen.insert((*r).clone()))
                .cloned()
                .collect()
        };
        if fresh.is_empty() {
            return 0;
        }
        let builder = GraphBuilder::new(config.graph.clone());
        let base = self.graphs.len();
        let mut new_graphs = Vec::new();
        for r in fresh {
            match builder.build(&r, &mut self.interner) {
                Some(g) => {
                    self.replacements.push(r);
                    new_graphs.push(g);
                }
                None => self.skipped.push(r),
            }
        }
        let built = new_graphs.len();
        if built > 0 || self.index.num_labels() < self.interner.len() {
            self.index = self.index.append(&new_graphs, base, self.interner.len());
            self.graphs.extend(new_graphs);
        }
        built
    }

    /// Reassembles a prepared state from already-built components (e.g. a
    /// compiled artifact), skipping graph construction and indexing.
    ///
    /// Returns `None` when the components are structurally inconsistent:
    /// `graphs` and `replacements` must pair up one-to-one, and the index must
    /// cover every interned label. Edge-label ids must already be validated
    /// against `interner` by the caller.
    pub fn from_parts(
        replacements: Vec<Replacement>,
        graphs: Vec<TransformationGraph>,
        skipped: Vec<Replacement>,
        interner: LabelInterner,
        index: InvertedIndex,
    ) -> Option<Self> {
        if replacements.len() != graphs.len() || index.num_labels() < interner.len() {
            return None;
        }
        // Edge-label bounds are the caller's responsibility: the artifact
        // decoder checks every id against the interner as it copies the
        // label blocks, where the ids are already in cache — re-walking
        // millions of labels here doubled the cost of an artifact load.
        Some(PreparedGraphs {
            replacements,
            graphs,
            skipped,
            interner,
            index,
        })
    }

    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when no graph was built.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The replacements with graphs, in graph-id order.
    pub fn replacements(&self) -> &[Replacement] {
        &self.replacements
    }

    /// The replacement of a graph.
    pub fn replacement(&self, g: GraphId) -> &Replacement {
        &self.replacements[g.index()]
    }

    /// The graphs, indexed by [`GraphId`].
    pub fn graphs(&self) -> &[TransformationGraph] {
        &self.graphs
    }

    /// One graph.
    pub fn graph(&self, g: GraphId) -> &TransformationGraph {
        &self.graphs[g.index()]
    }

    /// Replacements that were skipped (no graph built).
    pub fn skipped(&self) -> &[Replacement] {
        &self.skipped
    }

    /// The shared label interner.
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// The inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The last node of a graph (the target every transformation path must reach).
    pub fn last_node(&self, g: GraphId) -> u32 {
        self.graphs[g.index()].last_node()
    }

    /// The upper bound of Section 6.2 for graph `g`: for every output-string
    /// position, some edge covering that position must appear in the pivot
    /// path, so the minimum over positions of the maximum posting-list length
    /// among covering labels bounds the pivot-path share count from above.
    pub fn upper_bound(&self, g: GraphId) -> usize {
        let graph = self.graph(g);
        let t_len = graph.t_len();
        if t_len == 0 {
            return 1;
        }
        let mut ub = vec![0usize; t_len];
        for edge in graph.edges() {
            let mut best = 0usize;
            for &label in &edge.labels {
                best = best.max(self.index.list_graph_count(label));
            }
            for slot in ub
                .iter_mut()
                .take(edge.to as usize)
                .skip(edge.from as usize)
            {
                if *slot < best {
                    *slot = best;
                }
            }
        }
        ub.into_iter().min().unwrap_or(1).max(1)
    }

    /// Resolves a path of label ids into the corresponding transformation
    /// program.
    pub fn resolve_program(&self, path: &[LabelId]) -> ec_dsl::Program {
        ec_dsl::Program::new(
            path.iter()
                .map(|&l| self.interner.resolve(l).clone())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reps() -> Vec<Replacement> {
        vec![
            Replacement::new("Lee, Mary", "M. Lee"),
            Replacement::new("Smith, James", "J. Smith"),
            Replacement::new("Lee, Mary", "Mary Lee"),
        ]
    }

    #[test]
    fn build_keeps_input_order_and_dedups() {
        let mut input = reps();
        input.push(Replacement::new("Lee, Mary", "M. Lee")); // duplicate
        let prepared = PreparedGraphs::build(&input, &GroupingConfig::default());
        assert_eq!(prepared.len(), 3);
        assert_eq!(prepared.replacements(), &reps()[..]);
        assert!(prepared.skipped().is_empty());
        assert!(!prepared.is_empty());
    }

    #[test]
    fn skipped_replacements_are_reported() {
        let config = GroupingConfig {
            graph: ec_graph::GraphConfig {
                max_output_len: Some(4),
                ..ec_graph::GraphConfig::default()
            },
            ..GroupingConfig::default()
        };
        let prepared = PreparedGraphs::build(&reps(), &config);
        assert_eq!(prepared.len(), 0);
        assert_eq!(prepared.skipped().len(), 3);
    }

    // Paper Example 6.3: the upper bounds of G1, G2, G3 are 2, 2 and 1... the
    // exact values depend on which labels the builder generates (our builder
    // generates a richer label set than the worked example), but the invariant
    // that the bound is a true upper bound on pivot-path sharing is checked in
    // the incremental-grouper tests. Here we check basic sanity.
    #[test]
    fn upper_bounds_are_positive_and_bounded_by_graph_count() {
        let prepared = PreparedGraphs::build(&reps(), &GroupingConfig::default());
        for g in 0..prepared.len() {
            let ub = prepared.upper_bound(GraphId(g as u32));
            assert!(ub >= 1);
            assert!(ub <= prepared.len());
        }
    }

    #[test]
    fn parallel_and_sequential_builds_agree() {
        let mut many = Vec::new();
        for i in 0..80 {
            many.push(Replacement::new(
                format!("value {i} alpha"),
                format!("alpha value {i}"),
            ));
        }
        let seq = PreparedGraphs::build(
            &many,
            &GroupingConfig {
                parallel_graph_build: false,
                ..GroupingConfig::default()
            },
        );
        let par = PreparedGraphs::build(
            &many,
            &GroupingConfig {
                parallel_graph_build: true,
                ..GroupingConfig::default()
            },
        );
        assert_eq!(seq.len(), par.len());
        assert_eq!(seq.replacements(), par.replacements());
        for g in 0..seq.len() {
            let gid = GraphId(g as u32);
            assert_eq!(seq.graph(gid).num_edges(), par.graph(gid).num_edges());
            assert_eq!(seq.graph(gid).num_labels(), par.graph(gid).num_labels());
        }
    }

    #[test]
    fn append_matches_a_full_sequential_build() {
        let mut many = Vec::new();
        for i in 0..40 {
            many.push(Replacement::new(
                format!("value {i} alpha"),
                format!("alpha value {i}"),
            ));
        }
        // Duplicates of earlier replacements inside the appended batch must be
        // dropped, as build's up-front dedup would drop them.
        many.push(Replacement::new("value 3 alpha", "alpha value 3"));
        many.push(Replacement::new("fresh, one", "one fresh"));
        let config = GroupingConfig {
            parallel_graph_build: false,
            ..GroupingConfig::default()
        };
        for split in [0usize, 1, 17, 40, many.len()] {
            let mut grown = PreparedGraphs::build(&many[..split], &config);
            grown.append(&many[split..], &config);
            let full = PreparedGraphs::build(&many, &config);
            assert_eq!(grown.replacements(), full.replacements(), "split={split}");
            assert_eq!(grown.skipped(), full.skipped(), "split={split}");
            assert_eq!(
                grown.interner().len(),
                full.interner().len(),
                "split={split}"
            );
            assert_eq!(
                grown.index().raw_parts(),
                full.index().raw_parts(),
                "split={split}"
            );
            for g in 0..full.len() {
                let gid = GraphId(g as u32);
                assert_eq!(grown.upper_bound(gid), full.upper_bound(gid));
            }
        }
    }

    #[test]
    fn append_skips_already_known_replacements() {
        let config = GroupingConfig::default();
        let mut prepared = PreparedGraphs::build(&reps(), &config);
        let before = prepared.len();
        assert_eq!(prepared.append(&reps(), &config), 0);
        assert_eq!(prepared.len(), before);
    }

    #[test]
    fn from_parts_round_trips_a_built_state_and_rejects_mismatched_components() {
        let built = PreparedGraphs::build(&reps(), &GroupingConfig::default());
        let replacements = built.replacements().to_vec();
        let graphs = built.graphs().to_vec();
        let skipped = built.skipped().to_vec();
        let interner = built.interner().clone();
        let (postings, offsets, counts) = built.index().raw_parts();
        let index = InvertedIndex::from_parts(
            postings.to_vec().into(),
            offsets.to_vec().into(),
            counts.to_vec().into(),
        )
        .unwrap();
        let rebuilt = PreparedGraphs::from_parts(
            replacements.clone(),
            graphs.clone(),
            skipped,
            interner.clone(),
            index,
        )
        .expect("consistent components are accepted");
        assert_eq!(rebuilt.replacements(), built.replacements());
        assert_eq!(rebuilt.len(), built.len());
        for g in 0..built.len() {
            let gid = GraphId(g as u32);
            assert_eq!(rebuilt.upper_bound(gid), built.upper_bound(gid));
        }

        // Mismatched replacement/graph counts are rejected.
        let (postings, offsets, counts) = built.index().raw_parts();
        let index = InvertedIndex::from_parts(
            postings.to_vec().into(),
            offsets.to_vec().into(),
            counts.to_vec().into(),
        )
        .unwrap();
        assert!(PreparedGraphs::from_parts(
            replacements[..1].to_vec(),
            graphs.clone(),
            Vec::new(),
            interner.clone(),
            index,
        )
        .is_none());

        // An index that does not cover the interner is rejected.
        let small = InvertedIndex::build(&[], 0);
        assert!(
            PreparedGraphs::from_parts(replacements, graphs, Vec::new(), interner, small).is_none()
        );
    }

    #[test]
    fn resolve_program_round_trip() {
        let prepared = PreparedGraphs::build(&reps(), &GroupingConfig::default());
        let g = prepared.graph(GraphId(0));
        let first_edge = &g.edges()[0];
        let program = prepared.resolve_program(&first_edge.labels);
        assert_eq!(program.len(), first_edge.labels.len());
    }
}
