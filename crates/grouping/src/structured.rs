//! Structure-refined grouping (Section 7.2) with lazy, incremental partitions.
//!
//! Replacements are first partitioned by their structure signatures; pivot
//! paths then only need to be searched within a structure group, and two
//! replacements are grouped together only when they share both the structure
//! and the transformation program. To keep the incremental top-k property, a
//! structure group is only *preprocessed* (graphs + index built) the first
//! time it could possibly hold the next largest group: until then, its total
//! replacement count serves as an upper bound — exactly the lazy scheme
//! described at the end of Section 7.2.

use crate::config::GroupingConfig;
use crate::group::Group;
use crate::incremental::IncrementalGrouper;
use crate::oneshot::{sort_groups, OneShotGrouper};
use crate::prepared::PreparedGraphs;
use ec_graph::{structure::replacement_structure, Replacement, ReplacementStructure};
use std::collections::HashMap;
use std::sync::Arc;

/// Splits `replacements` into the structure partitions the grouper scans:
/// one partition per [`ReplacementStructure`] when
/// [`GroupingConfig::structure_refinement`] is set (biggest first, ties by
/// first member), otherwise a single partition. `ec compile` uses the same
/// function so compiled partitions line up one-to-one with the ones a fresh
/// [`StructuredGrouper`] would form.
pub fn partition_replacements(
    replacements: &[Replacement],
    config: &GroupingConfig,
) -> Vec<Vec<Replacement>> {
    if config.structure_refinement {
        let mut by_structure: HashMap<ReplacementStructure, Vec<Replacement>> = HashMap::new();
        for r in replacements {
            by_structure
                .entry(replacement_structure(r.lhs(), r.rhs()))
                .or_default()
                .push(r.clone());
        }
        let mut parts: Vec<Vec<Replacement>> = by_structure.into_values().collect();
        // Deterministic order: biggest partitions first, ties by first member.
        parts.sort_by(|a, b| {
            b.len()
                .cmp(&a.len())
                .then_with(|| a.first().cmp(&b.first()))
        });
        parts
    } else {
        vec![replacements.to_vec()]
    }
}

/// A grouper that composes the structure refinement of Section 7.2 with the
/// incremental top-k algorithm of Section 6. This is the `Group` method
/// evaluated in the paper's Figures 6–8.
#[derive(Debug)]
pub struct StructuredGrouper {
    partitions: Vec<Partition>,
    config: GroupingConfig,
}

#[derive(Debug)]
struct Partition {
    replacements: Vec<Replacement>,
    /// Preprocessed graphs loaded from a compiled artifact; consulted by
    /// [`Partition::materialize`] instead of running Algorithm 6.
    precompiled: Option<Arc<PreparedGraphs>>,
    grouper: Option<IncrementalGrouper>,
    /// The next group of this partition, already computed but not yet emitted.
    peeked: Option<Group>,
    exhausted: bool,
}

impl Partition {
    /// An upper bound on the size of the next group this partition can produce.
    fn upper_bound(&self) -> usize {
        if self.exhausted {
            return 0;
        }
        if let Some(g) = &self.peeked {
            return g.size();
        }
        match &self.grouper {
            Some(grouper) => grouper.remaining_graphs().max(1),
            None => self.replacements.len(),
        }
    }

    /// Makes sure `peeked` holds the partition's next group (computing it if
    /// needed), or marks the partition exhausted.
    fn materialize(&mut self, config: &GroupingConfig) {
        if self.exhausted || self.peeked.is_some() {
            return;
        }
        let grouper = self
            .grouper
            .get_or_insert_with(|| match self.precompiled.take() {
                Some(prepared) => IncrementalGrouper::with_prepared(prepared, config.clone()),
                None => IncrementalGrouper::new(&self.replacements, config.clone()),
            });
        match grouper.next_group() {
            Some(g) => self.peeked = Some(g),
            None => self.exhausted = true,
        }
    }
}

impl StructuredGrouper {
    /// Partitions `replacements` by structure (when
    /// [`GroupingConfig::structure_refinement`] is set; otherwise a single
    /// partition is used) and prepares lazy incremental groupers.
    pub fn new(replacements: &[Replacement], config: GroupingConfig) -> Self {
        StructuredGrouper {
            partitions: partition_replacements(replacements, &config)
                .into_iter()
                .map(|replacements| Partition {
                    replacements,
                    precompiled: None,
                    grouper: None,
                    peeked: None,
                    exhausted: false,
                })
                .collect(),
            config,
        }
    }

    /// Builds a grouper over partitions whose preparation (graphs, interner,
    /// index) was already done — e.g. loaded from a compiled artifact. Each
    /// `(members, prepared)` pair must correspond to one partition as produced
    /// by [`partition_replacements`] with the same `config`; the emitted
    /// groups are then identical to a fresh [`StructuredGrouper::new`] over
    /// the concatenated members.
    pub fn from_compiled(
        parts: Vec<(Vec<Replacement>, Arc<PreparedGraphs>)>,
        config: GroupingConfig,
    ) -> Self {
        StructuredGrouper {
            partitions: parts
                .into_iter()
                .map(|(replacements, prepared)| Partition {
                    replacements,
                    precompiled: Some(prepared),
                    grouper: None,
                    peeked: None,
                    exhausted: false,
                })
                .collect(),
            config,
        }
    }

    /// Produces the next largest group across all structure partitions, or
    /// `None` when everything has been emitted.
    pub fn next_group(&mut self) -> Option<Group> {
        loop {
            // The best already-materialized candidate.
            let best_peeked: Option<(usize, usize)> = self
                .partitions
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.peeked.as_ref().map(|g| (i, g.size())))
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
            // The best not-yet-materialized potential.
            let best_potential: Option<(usize, usize)> = self
                .partitions
                .iter()
                .enumerate()
                .filter(|(_, p)| p.peeked.is_none() && !p.exhausted)
                .map(|(i, p)| (i, p.upper_bound()))
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));

            match (best_peeked, best_potential) {
                (Some((i, size)), Some((_, potential))) if size >= potential => {
                    return self.partitions[i].peeked.take();
                }
                (Some((i, _)), None) => {
                    return self.partitions[i].peeked.take();
                }
                (_, Some((j, _))) => {
                    let config = self.config.clone();
                    self.partitions[j].materialize(&config);
                }
                (None, None) => return None,
            }
        }
    }

    /// The first `k` groups (or fewer if the input is exhausted earlier).
    pub fn top_groups(&mut self, k: usize) -> Vec<Group> {
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            match self.next_group() {
                Some(g) => out.push(g),
                None => break,
            }
        }
        out
    }

    /// Drains the grouper, returning every group in emission order.
    pub fn all_groups(&mut self) -> Vec<Group> {
        let mut out = Vec::new();
        while let Some(g) = self.next_group() {
            out.push(g);
        }
        out
    }

    /// Upfront (one-shot) structure-refined grouping: partitions by structure,
    /// runs [`OneShotGrouper`] per partition, and returns all groups sorted by
    /// size. Used by the `OneShot`/`EarlyTerm` timing comparison of Figure 9.
    pub fn one_shot_all(replacements: &[Replacement], config: GroupingConfig) -> Vec<Group> {
        let mut groups = Vec::new();
        if config.structure_refinement {
            let mut by_structure: HashMap<ReplacementStructure, Vec<Replacement>> = HashMap::new();
            for r in replacements {
                by_structure
                    .entry(replacement_structure(r.lhs(), r.rhs()))
                    .or_default()
                    .push(r.clone());
            }
            let mut parts: Vec<Vec<Replacement>> = by_structure.into_values().collect();
            parts.sort_by(|a, b| {
                b.len()
                    .cmp(&a.len())
                    .then_with(|| a.first().cmp(&b.first()))
            });
            for part in parts {
                groups.extend(OneShotGrouper::new(&part, config.clone()).group_all());
            }
        } else {
            groups = OneShotGrouper::new(replacements, config).group_all();
        }
        sort_groups(&mut groups);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_replacements() -> Vec<Replacement> {
        vec![
            // Name transpositions (structure: TC Tl , b TC Tl -> TC Tl b TC Tl).
            Replacement::new("Lee, Mary", "Mary Lee"),
            Replacement::new("Smith, James", "James Smith"),
            Replacement::new("Brown, Anna", "Anna Brown"),
            // Initials.
            Replacement::new("Lee, Mary", "M. Lee"),
            Replacement::new("Smith, James", "J. Smith"),
            // Ordinal suffixes (structure: TdTl -> Td).
            Replacement::new("9th", "9"),
            Replacement::new("3rd", "3"),
            Replacement::new("22nd", "22"),
            // State abbreviations.
            Replacement::new("Wisconsin", "WI"),
            Replacement::new("California", "CA"),
        ]
    }

    #[test]
    fn groups_cover_everything_and_sizes_are_non_increasing() {
        let reps = mixed_replacements();
        let mut grouper = StructuredGrouper::new(&reps, GroupingConfig::default());
        let groups = grouper.all_groups();
        let total: usize = groups.iter().map(Group::size).sum();
        assert_eq!(total, reps.len());
        for w in groups.windows(2) {
            assert!(
                w[0].size() >= w[1].size(),
                "{:?}",
                groups.iter().map(Group::size).collect::<Vec<_>>()
            );
        }
        assert_eq!(
            groups[0].size(),
            3,
            "the transposition family is the largest group"
        );
    }

    #[test]
    fn structure_refinement_separates_structurally_different_pairs() {
        // Without structure refinement, "9th"→"9" and "Wisconsin"→"WI" could in
        // principle end up in one group (both are "keep a leading piece"); with
        // it they cannot, because Td→TdTl differs from TCTl→TC.
        let reps = vec![
            Replacement::new("9th", "9"),
            Replacement::new("3rd", "3"),
            Replacement::new("Wisconsin", "WI"),
            Replacement::new("California", "CA"),
        ];
        let mut grouper = StructuredGrouper::new(&reps, GroupingConfig::default());
        let groups = grouper.all_groups();
        for g in &groups {
            let has_digit = g
                .members()
                .iter()
                .any(|r| r.lhs().chars().any(|c| c.is_ascii_digit()));
            let has_state = g
                .members()
                .iter()
                .any(|r| r.lhs() == "Wisconsin" || r.lhs() == "California");
            assert!(
                !(has_digit && has_state),
                "structurally different pairs must not mix: {g}"
            );
        }
    }

    #[test]
    fn top_groups_stops_at_k() {
        let reps = mixed_replacements();
        let mut grouper = StructuredGrouper::new(&reps, GroupingConfig::default());
        let top2 = grouper.top_groups(2);
        assert_eq!(top2.len(), 2);
        assert!(top2[0].size() >= top2[1].size());
        // The rest can still be drained afterwards.
        let rest = grouper.all_groups();
        let total: usize = top2.iter().chain(rest.iter()).map(Group::size).sum();
        assert_eq!(total, reps.len());
    }

    #[test]
    fn incremental_and_one_shot_structured_agree_on_sizes() {
        let reps = mixed_replacements();
        let incremental: Vec<usize> = StructuredGrouper::new(&reps, GroupingConfig::default())
            .all_groups()
            .iter()
            .map(Group::size)
            .collect();
        let mut one_shot: Vec<usize> =
            StructuredGrouper::one_shot_all(&reps, GroupingConfig::default())
                .iter()
                .map(Group::size)
                .collect();
        one_shot.sort_unstable_by(|a, b| b.cmp(a));
        let mut incr_sorted = incremental.clone();
        incr_sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(one_shot, incr_sorted);
    }

    #[test]
    fn disabling_structure_refinement_uses_a_single_partition() {
        let reps = mixed_replacements();
        let config = GroupingConfig {
            structure_refinement: false,
            ..GroupingConfig::default()
        };
        let mut grouper = StructuredGrouper::new(&reps, config);
        let groups = grouper.all_groups();
        let total: usize = groups.iter().map(Group::size).sum();
        assert_eq!(total, reps.len());
    }

    #[test]
    fn doc_example_from_lib_rs() {
        let replacements = vec![
            Replacement::new("Lee, Mary", "M. Lee"),
            Replacement::new("Smith, James", "J. Smith"),
            Replacement::new("Lee, Mary", "Mary Lee"),
            Replacement::new("Smith, James", "James Smith"),
        ];
        let mut grouper = StructuredGrouper::new(&replacements, GroupingConfig::default());
        let first = grouper.next_group().expect("at least one group");
        assert_eq!(first.size(), 2);
    }

    #[test]
    fn empty_input() {
        let mut grouper = StructuredGrouper::new(&[], GroupingConfig::default());
        assert!(grouper.next_group().is_none());
        assert!(grouper.all_groups().is_empty());
    }

    #[test]
    fn from_compiled_emits_the_same_groups_as_a_fresh_grouper() {
        let reps = mixed_replacements();
        let config = GroupingConfig::default();
        let fresh = StructuredGrouper::new(&reps, config.clone()).all_groups();
        let parts: Vec<(Vec<Replacement>, Arc<PreparedGraphs>)> =
            partition_replacements(&reps, &config)
                .into_iter()
                .map(|members| {
                    let prepared = Arc::new(PreparedGraphs::build(&members, &config));
                    (members, prepared)
                })
                .collect();
        let compiled = StructuredGrouper::from_compiled(parts, config).all_groups();
        assert_eq!(fresh, compiled);
    }
}
