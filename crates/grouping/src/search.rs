//! Pivot-path search (Algorithm 3 `SearchPivot`, with the early-termination
//! optimizations of Algorithm 4).
//!
//! For a graph `G`, the *pivot path* is the transformation path of `G` (a path
//! from the first to the last node, one label per edge) shared by the largest
//! number of graphs in the collection. The search is a depth-first enumeration
//! of paths starting at the first node, maintaining the list `ℓ` of graphs
//! containing the current prefix via the inverted index; two optimizations
//! prune the enumeration:
//!
//! * **local threshold** — extending a path can only shrink `ℓ`, so branches
//!   whose list is not strictly larger than the best complete path found so
//!   far (or the caller-provided threshold) are cut;
//! * **global threshold** — every time a complete transformation path shared
//!   by `n` graphs is found, those graphs' pivot paths are known to be shared
//!   by at least `n` graphs, so their own searches can start from that bound.
//!
//! Ties between equally-shared paths are broken by the static function order
//! of Appendix E: paths using fewer `ConstantStr` labels are preferred, since
//! constants are the least general functions (two replacements with identical
//! right-hand sides trivially share an all-constants path that conveys no
//! transformation at all).
//!
//! ## The frontier engine
//!
//! The search used to be one recursive DFS — which made a single expensive
//! search (the mega-group shape: one huge cluster whose graphs all share
//! long inverted lists) impossible to parallelize: `search_many` shards
//! across graphs-to-search, so one mega search pinned a single worker while
//! the rest of the pool idled. The search now runs on an explicit-frontier
//! engine ([`GroupingConfig::intra_search_sharding`], on by default):
//!
//! * the root's viable extensions are computed once and each becomes a
//!   [`SearchTask`] — an independent subproblem carrying its path prefix,
//!   the prefix's [`PathList`] (a cheap arena view, never a copied
//!   occurrence vector), a *snapshot* of the acceptance bar and of the
//!   searched graph's own lower bound, and a private step-budget slice;
//! * tasks are pulled off the frontier queue in deterministic **waves**
//!   (sizes 1, 2, 4, 8, 8, …): every task of a wave reads only state
//!   snapshotted at the wave boundary, and wave outcomes are reduced in
//!   expansion order — bests folded with the acceptance rule, [`BoundRaises`]
//!   max-merged, unspent budget returned to the pot;
//! * a wave's tasks run through [`ec_graph::Parallelism::run_nested`]: inline
//!   when scheduling is sequential, on the shared worker pool otherwise.
//!
//! The task tree, the per-task pruning inputs and the reduction order are all
//! fixed by the search inputs alone — scheduling only decides *where* a task
//! runs — so the engine's result is bit-identical for every thread count by
//! construction, even when [`GroupingConfig::max_search_steps`] truncates
//! the search. The first wave holds a single task (the most promising root
//! extension, which usually establishes the final bar), so later, wider
//! waves prune almost as well as the fully sequential DFS.

use crate::config::GroupingConfig;
use crate::prepared::PreparedGraphs;
use ec_dsl::StringFn;
use ec_graph::{LabelId, Parallelism, PoolTask};
use ec_index::{GraphId, InvertedIndex, PathList};
use std::sync::Arc;

/// Upper limit of the frontier's wave-size ramp (1, 2, 4, 8, 8, …). Waves are
/// the engine's determinism unit — every task of a wave reads only state
/// snapshotted at the wave boundary — so the cap bounds both the attainable
/// intra-search parallelism and how stale a task's pruning inputs can be.
const INTRA_SEARCH_WAVE_CAP: usize = 8;

/// Registry handles for the search's two budget signals: how many steps each
/// pivot search actually spends, and how often the budget runs dry (a search
/// that keeps exhausting its budget is the first thing to look at when group
/// quality drops on label-rich data).
struct SearchMetrics {
    steps: ec_obs::Histogram,
    budget_exhausted: ec_obs::Counter,
}

fn search_metrics() -> &'static SearchMetrics {
    static METRICS: std::sync::OnceLock<SearchMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| SearchMetrics {
        steps: ec_obs::histogram(
            "ec_pivot_search_steps",
            "Path-extension steps spent per pivot search.",
            ec_obs::Unit::Count,
            ec_obs::COUNT_BUCKETS,
        ),
        budget_exhausted: ec_obs::counter(
            "ec_pivot_budget_exhausted_total",
            "Pivot searches that ran out of their step budget.",
        ),
    })
}

/// The result of a pivot-path search.
#[derive(Debug, Clone)]
pub struct PivotResult {
    /// The pivot path (sequence of labels).
    pub path: Vec<LabelId>,
    /// Graphs containing the path anchored at their first node.
    pub list: PathList,
    /// Graphs for which the path is a *complete* transformation path (reaches
    /// their last node) and which are still active; these are the graphs that
    /// may join the group keyed by this path.
    pub complete: Vec<GraphId>,
    /// The number of active graphs containing the path (the score the search
    /// maximises, the paper's `|ℓ|`).
    pub share_count: usize,
}

/// Searches pivot paths over one [`PreparedGraphs`] collection.
///
/// The searcher is cheap to construct (two passes over the graphs and the
/// interner) and immutable afterwards, so one instance can serve the searches
/// of many graphs — including concurrently via [`PivotSearcher::search_many`].
/// All state is held behind [`Arc`]s, so cloning a searcher is cheap and a
/// clone can be moved into a `'static` task on the shared worker pool.
#[derive(Clone)]
pub struct PivotSearcher {
    prepared: Arc<PreparedGraphs>,
    config: Arc<GroupingConfig>,
    /// `last_nodes[g]` — the last node of graph `g`, precomputed once instead
    /// of per search.
    last_nodes: Arc<Vec<u32>>,
    /// `constant_chars[label]` — constant output characters per label,
    /// precomputed once instead of per search.
    constant_chars: Arc<Vec<usize>>,
}

struct SearchState<'a> {
    index: &'a InvertedIndex,
    active: &'a [bool],
    last_nodes: &'a [u32],
    max_path_len: usize,
    early_termination: bool,
    /// `dist_to_end[i]` — minimum number of edges needed to reach the last
    /// node of the searched graph from node `i` (`u32::MAX` if unreachable).
    /// Branches that cannot complete within the path-length cap are pruned.
    dist_to_end: &'a [u32],
    /// Remaining budget of path extensions (list intersections); when it runs
    /// out the search keeps whatever best complete path it has found so far.
    steps_left: usize,
    /// `constant_chars[label]` — number of output characters the label emits
    /// as a constant (0 for non-constant labels), used for the static-order
    /// tie-break: among equally shared paths the one whose output depends the
    /// least on constants (and then the shorter one) is preferred.
    constant_chars: &'a [usize],
    /// The searched graph's own global lower bound (the paper's `G_lo[g]`) —
    /// the only bound the DFS ever *reads*. Starts from the caller-provided
    /// value and is raised when a complete path of the graph itself is found,
    /// so a search's pruning inputs never depend on the bounds raised by
    /// sibling searches running in the same [`PivotSearcher::search_many`]
    /// call.
    own_bound: u32,
    /// Write-only update list of bound raises; the caller merges it into the
    /// shared bounds afterwards by element-wise maximum.
    raised: &'a mut BoundRaises,
    /// The acceptance bar: the `(share count, quality)` every new complete
    /// path must beat. Holds the maximum of the [`SearchTask`] floor this
    /// state started from (the bar snapshotted when the task was spawned)
    /// and the local `best` — for a whole-search DFS the floor is `None`, so
    /// the bar tracks `best` exactly.
    bar: Option<(usize, Quality)>,
    /// Best complete path found *by this state*: `(path, list, share count,
    /// quality)`. A path only lands here when it also beats the bar, so a
    /// task's best is `None` when nothing in its subtree beat its floor.
    best: Option<(Vec<LabelId>, PathList, usize, Quality)>,
    threshold: usize,
}

impl SearchState<'_> {
    /// Accepts `(path, list, count, quality)` as the new best if it clears the
    /// local threshold and beats the bar.
    fn offer(
        &mut self,
        count: usize,
        quality: Quality,
        make: impl FnOnce() -> (Vec<LabelId>, PathList),
    ) {
        if count <= self.threshold || !beats(count, quality, &self.bar) {
            return;
        }
        let (path, list) = make();
        self.bar = Some((count, quality));
        self.best = Some((path, list, count, quality));
    }
}

/// Does a candidate `(count, quality)` beat the acceptance bar? Quality only
/// degrades as a path grows, so a partial path's quality is a valid lower
/// bound for this comparison (the pruning sites rely on that).
fn beats(count: usize, quality: Quality, bar: &Option<(usize, Quality)>) -> bool {
    match bar {
        None => true,
        Some((bar_count, bar_quality)) => {
            count > *bar_count || (count == *bar_count && quality < *bar_quality)
        }
    }
}

/// Tie-break quality of a path: total characters produced by constant labels,
/// then path length. Smaller is better; both components only grow as a path is
/// extended, so a partial path's quality is a valid lower bound on the quality
/// of any of its completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Quality {
    constant_chars: usize,
    len: usize,
}

/// A sparse, write-only accumulator of global-threshold raises
/// (`graph → bound`, merged by maximum).
///
/// Workers used to carry a dense `vec![0u32; graphs]` each — O(threads ×
/// graphs) allocation and merge traffic per batch even when a batch raises a
/// handful of bounds. The update list stores only the raises that actually
/// happened; duplicates are compacted away (keeping the maximum per graph)
/// whenever the list doubles past its watermark, so its memory is
/// proportional to the number of *distinct* graphs raised, not to the
/// collection size.
#[derive(Debug, Default)]
pub struct BoundRaises {
    entries: Vec<(u32, u32)>,
    /// Compact when the list grows past this length.
    watermark: usize,
}

impl BoundRaises {
    /// Records `bound` as a lower bound for `graph`.
    fn push(&mut self, graph: usize, bound: u32) {
        self.entries.push((graph as u32, bound));
        if self.entries.len() > self.watermark.max(64) {
            self.compact();
            // Keep amortized-O(1) pushes: only re-compact after the list
            // doubles past the distinct-entry count.
            self.watermark = self.entries.len() * 2;
        }
    }

    /// Sorts and deduplicates the list, keeping the maximum bound per graph.
    fn compact(&mut self) {
        self.entries.sort_unstable();
        self.entries.dedup_by(|next, kept| {
            if kept.0 == next.0 {
                kept.1 = kept.1.max(next.1);
                true
            } else {
                false
            }
        });
    }

    /// Merges the recorded raises into `lower_bounds` by element-wise
    /// maximum.
    fn merge_into(&self, lower_bounds: &mut [u32]) {
        for &(graph, bound) in &self.entries {
            let slot = &mut lower_bounds[graph as usize];
            if *slot < bound {
                *slot = bound;
            }
        }
    }

    /// Absorbs another update list (raises merge by maximum, so absorption
    /// order never matters). Compacts on the same doubling watermark as
    /// [`BoundRaises::push`].
    fn absorb(&mut self, other: BoundRaises) {
        self.entries.extend(other.entries);
        if self.entries.len() > self.watermark.max(64) {
            self.compact();
            self.watermark = self.entries.len() * 2;
        }
    }
}

/// One frontier subproblem of the intra-search engine: explore every
/// pivot-path completion below one root extension of the searched graph.
/// Everything a task reads is snapshotted at spawn time, so a task is a pure
/// function of its fields — which is what makes the engine's output
/// independent of where (and when) the task runs.
struct SearchTask {
    /// The root extension's label — the first label of every path in the
    /// subtree.
    label: LabelId,
    /// The node the one-label prefix has reached in the searched graph.
    node: u32,
    /// The prefix's occurrence list. A cheap arena view ([`PathList`] clones
    /// are reference-count bumps), not a copied occurrence vector.
    list: PathList,
    /// Constant output characters emitted by the prefix.
    const_chars: usize,
    /// Snapshot of the acceptance bar when the task was spawned.
    floor: Option<(usize, Quality)>,
    /// Snapshot of the searched graph's own global lower bound at spawn.
    own_bound: u32,
    /// The task's private step-budget slice.
    budget: usize,
}

/// What one [`SearchTask`] produced, reduced by the engine in expansion
/// order.
struct TaskOutcome {
    /// The subtree's best complete path, if any beat the task's floor.
    best: Option<(Vec<LabelId>, PathList, usize, Quality)>,
    /// Bound raises recorded in the subtree.
    raised: BoundRaises,
    /// The searched graph's own bound as raised within the subtree.
    own_bound: u32,
    /// Steps actually consumed (≤ the task's budget slice).
    steps_used: usize,
}

impl PivotSearcher {
    /// Creates a searcher over `prepared` using `config`'s path-length cap and
    /// early-termination setting.
    pub fn new(prepared: Arc<PreparedGraphs>, config: &GroupingConfig) -> Self {
        let last_nodes: Vec<u32> = prepared.graphs().iter().map(|g| g.last_node()).collect();
        let constant_chars: Vec<usize> = prepared
            .interner()
            .iter()
            .map(|(_, f)| match f {
                StringFn::ConstantStr(c) => c.chars().count(),
                _ => 0,
            })
            .collect();
        PivotSearcher {
            prepared,
            config: Arc::new(config.clone()),
            last_nodes: Arc::new(last_nodes),
            constant_chars: Arc::new(constant_chars),
        }
    }

    /// Searches the pivot path of graph `g`.
    ///
    /// * `threshold` — only paths shared by **more than** `threshold` active
    ///   graphs are acceptable (the incremental algorithm passes `τ - 1`; the
    ///   one-shot algorithm passes 0).
    /// * `active` — graphs still participating (inactive graphs are invisible
    ///   to share counts and group membership).
    /// * `lower_bounds` — the per-graph global thresholds, updated in place
    ///   whenever a complete path is found (only when early termination is
    ///   enabled, mirroring Algorithm 4).
    ///
    /// Returns `None` when no transformation path of `g` is shared by more
    /// than `threshold` active graphs (within the path-length cap).
    pub fn search(
        &self,
        g: GraphId,
        threshold: usize,
        active: &[bool],
        lower_bounds: &mut [u32],
    ) -> Option<PivotResult> {
        // Raises are merged into `lower_bounds` after the search, which keeps
        // the cumulative-bounds behavior of Algorithm 4 for a lone `search`
        // call (the engine itself only ever reads the searched graph's own
        // bound, tracked separately).
        let own_bound = lower_bounds[g.index()];
        let mut raised = BoundRaises::default();
        let active: Arc<[bool]> = active.into();
        let result = self.search_with_bounds(
            g,
            threshold,
            &active,
            own_bound,
            &mut raised,
            Parallelism::SEQUENTIAL,
        );
        raised.merge_into(lower_bounds);
        result
    }

    /// The core search: reads only `own_bound` (the searched graph's own
    /// global threshold) and records every bound raise into the write-only
    /// `raised` list, without ever reading other graphs' entries. `waves`
    /// decides only where the frontier engine's wave tasks run (inline or on
    /// the shared pool) — never what they compute.
    fn search_with_bounds(
        &self,
        g: GraphId,
        threshold: usize,
        active: &Arc<[bool]>,
        own_bound: u32,
        raised: &mut BoundRaises,
        waves: Parallelism,
    ) -> Option<PivotResult> {
        let graph = self.prepared.graph(g);
        // Minimum number of edges from each node of `graph` to its last node;
        // paths that cannot complete within the length cap are never
        // explored. Shared with the engine's subtree tasks.
        let dist_to_end = Arc::new(distance_to_end(graph));
        let mut state = SearchState {
            index: self.prepared.index(),
            active: &active[..],
            last_nodes: &self.last_nodes,
            max_path_len: self.config.max_path_len,
            early_termination: self.config.early_termination,
            dist_to_end: &dist_to_end[..],
            steps_left: self.config.max_search_steps.max(1),
            constant_chars: &self.constant_chars,
            own_bound,
            raised,
            bar: None,
            best: None,
            threshold,
        };
        let universe = PathList::universe(self.prepared.len());

        // Seed the best path with the single-edge paths over the full-output
        // edge (which always includes the `ConstantStr(t)` label): this both
        // guarantees that a complete path is known before the search budget
        // can run out and gives the local threshold an immediate baseline.
        if let Some(full_edge) = graph.edge(0, graph.last_node()) {
            for &label in &full_edge.labels {
                let list = state.index.extend(&universe, label);
                let count = active_count(&list, state.active);
                let quality = Quality {
                    constant_chars: state.constant_chars[label.index()],
                    len: 1,
                };
                state.offer(count, quality, || (vec![label], list));
            }
        }

        let reachable =
            state.dist_to_end.first().copied().unwrap_or(u32::MAX) as usize <= state.max_path_len;
        if reachable {
            if self.config.intra_search_sharding && graph.last_node() != 0 {
                self.run_frontier(g, &mut state, &universe, active, &dist_to_end, waves);
            } else {
                let mut path = Vec::new();
                dfs(graph, g, 0, &mut path, &universe, 0, &mut state);
            }
        }
        let metrics = search_metrics();
        let initial_budget = self.config.max_search_steps.max(1);
        metrics
            .steps
            .observe((initial_budget - state.steps_left) as u64);
        if state.steps_left == 0 {
            metrics.budget_exhausted.inc();
        }
        let last_nodes = state.last_nodes;
        let (path, list, count, _) = state.best.take()?;
        let complete: Vec<GraphId> = list
            .occurrences()
            .iter()
            .filter(|occ| active[occ.graph.index()] && occ.end == last_nodes[occ.graph.index()])
            .map(|occ| occ.graph)
            .collect();
        let mut complete_dedup = complete;
        complete_dedup.dedup();
        Some(PivotResult {
            path,
            list,
            complete: complete_dedup,
            share_count: count,
        })
    }

    /// The explicit-frontier engine (see the module docs): computes the
    /// root's viable extensions once, turns each into a [`SearchTask`], and
    /// executes the frontier in deterministic waves whose outcomes reduce in
    /// expansion order. `state` carries the pruning inputs in and the best
    /// path (plus raises and remaining budget) out.
    fn run_frontier(
        &self,
        g: GraphId,
        state: &mut SearchState<'_>,
        universe: &PathList,
        active: &Arc<[bool]>,
        dist_to_end: &Arc<Vec<u32>>,
        waves: Parallelism,
    ) {
        let graph = self.prepared.graph(g);
        // Root expansion: identical to the DFS's candidate step at node 0,
        // including step consumption; `None` means the budget died during the
        // expansion, exactly where the DFS would have stopped.
        let Some(candidates) = collect_candidates(graph, 0, universe, 0, 0, state) else {
            return;
        };
        let mut frontier = candidates.into_iter();
        let mut exhausted = false;
        let mut wave_cap = 1usize;
        while !exhausted && state.steps_left > 0 {
            // Pull the next wave of still-viable tasks off the frontier. The
            // viability re-check mirrors the DFS's pre-descend re-check, with
            // the bar and own bound as of this wave boundary.
            let mut wave: Vec<SearchTask> = Vec::with_capacity(wave_cap);
            while wave.len() < wave_cap {
                let Some((label, to, list, count, next_chars)) = frontier.next() else {
                    exhausted = true;
                    break;
                };
                if state.early_termination {
                    if count <= state.threshold || (count as u32) < state.own_bound {
                        continue;
                    }
                    let partial = Quality {
                        constant_chars: next_chars,
                        len: 1,
                    };
                    if !beats(count, partial, &state.bar) {
                        continue;
                    }
                }
                wave.push(SearchTask {
                    label,
                    node: to,
                    list,
                    const_chars: next_chars,
                    floor: state.bar,
                    own_bound: state.own_bound,
                    budget: 0, // sliced below, once the wave's size is known
                });
            }
            if wave.is_empty() {
                continue;
            }
            // Slice the remaining budget across the wave; unspent slices
            // return to the pot when the wave's outcomes are reduced.
            let share = state.steps_left / wave.len();
            let extra = state.steps_left % wave.len();
            for (i, task) in wave.iter_mut().enumerate() {
                task.budget = share + usize::from(i < extra);
            }
            let tasks: Vec<PoolTask<TaskOutcome>> = wave
                .into_iter()
                .map(|task| {
                    let searcher = self.clone();
                    let active = Arc::clone(active);
                    let dist_to_end = Arc::clone(dist_to_end);
                    let threshold = state.threshold;
                    Box::new(move || searcher.run_task(g, task, threshold, &active, &dist_to_end))
                        as PoolTask<TaskOutcome>
                })
                .collect();
            // Reduce outcomes in expansion order — together with the
            // snapshot semantics above this is what keeps the engine
            // bit-identical for every thread count.
            for outcome in waves.run_nested(tasks) {
                state.steps_left -= outcome.steps_used;
                state.own_bound = state.own_bound.max(outcome.own_bound);
                state.raised.absorb(outcome.raised);
                if let Some((path, list, count, quality)) = outcome.best {
                    state.offer(count, quality, || (path, list));
                }
            }
            wave_cap = (wave_cap * 2).min(INTRA_SEARCH_WAVE_CAP);
        }
    }

    /// Executes one [`SearchTask`]: a sequential DFS over the task's subtree,
    /// reading only the task's snapshots. A pure function of its arguments.
    fn run_task(
        &self,
        g: GraphId,
        task: SearchTask,
        threshold: usize,
        active: &Arc<[bool]>,
        dist_to_end: &Arc<Vec<u32>>,
    ) -> TaskOutcome {
        let graph = self.prepared.graph(g);
        let mut raised = BoundRaises::default();
        let budget = task.budget;
        let mut state = SearchState {
            index: self.prepared.index(),
            active: &active[..],
            last_nodes: &self.last_nodes,
            max_path_len: self.config.max_path_len,
            early_termination: self.config.early_termination,
            dist_to_end: &dist_to_end[..],
            steps_left: budget,
            constant_chars: &self.constant_chars,
            own_bound: task.own_bound,
            raised: &mut raised,
            bar: task.floor,
            best: None,
            threshold,
        };
        let mut path = vec![task.label];
        dfs(
            graph,
            g,
            task.node,
            &mut path,
            &task.list,
            task.const_chars,
            &mut state,
        );
        let steps_used = budget - state.steps_left;
        let own_bound = state.own_bound;
        let best = state.best.take();
        TaskOutcome {
            best,
            raised,
            own_bound,
            steps_used,
        }
    }

    /// Searches the pivot paths of `gids`, sharded across scoped worker
    /// threads, and returns the results in `gids` order.
    ///
    /// The output is **bit-identical for every thread count, by
    /// construction**: every search in the call reads only its searched
    /// graph's bound as snapshotted at entry (plus the raises produced by its
    /// own complete paths), and all raises are collected into write-only
    /// [`BoundRaises`] update lists merged into `lower_bounds` by
    /// element-wise maximum after the searches finish. A search's pruning
    /// inputs therefore never depend on how the graphs are chunked across
    /// workers — which also keeps results identical when
    /// [`GroupingConfig::max_search_steps`] truncates a search, since the
    /// number of steps a search consumes depends only on chunk-independent
    /// state. (Every raise is a sound lower bound, so deferring the merge
    /// only weakens pruning within one call, never correctness.)
    ///
    /// Each worker is handed only its own chunk's graph bounds plus a sparse
    /// update list, so the per-batch memory traffic is O(graphs searched +
    /// raises recorded) instead of the former O(threads × graphs) full-vector
    /// copies. Sharded batches run as `'static` tasks on the process-wide
    /// work-stealing pool (`ec_graph::pool`) — no scoped threads are spawned
    /// per call, which is what makes the incremental grouper's speculative
    /// batch loop cheap inside long-lived processes like `ec serve`.
    ///
    /// When workers outnumber the graphs to search (the mega-group shape —
    /// one or two huge searches pinning a single worker while the rest of
    /// the pool idles) and [`GroupingConfig::intra_search_sharding`] is on,
    /// each search additionally runs its frontier waves *in parallel* on the
    /// same pool. That choice is scheduling-only: the engine computes the
    /// same task tree either way, so it never affects results.
    pub fn search_many(
        &self,
        gids: &[GraphId],
        threshold: usize,
        active: &[bool],
        lower_bounds: &mut [u32],
        parallelism: ec_graph::Parallelism,
    ) -> Vec<Option<PivotResult>> {
        let _span = ec_obs::span!("grouping.pivot_search", gids.len());
        let shards = parallelism.shards(gids.len());
        let chunk_size = gids.len().div_ceil(shards.max(1)).max(1);
        // Intra-search wave scheduling: worth paying for only when workers
        // outnumber the graphs to search; results are identical either way.
        let waves = if self.config.intra_search_sharding && parallelism.threads() > gids.len() {
            parallelism
        } else {
            Parallelism::SEQUENTIAL
        };
        let active: Arc<[bool]> = active.into();
        type ShardOutput = (Vec<Option<PivotResult>>, BoundRaises);
        let shard_outputs: Vec<ShardOutput> = if shards <= 1 {
            let mut raised = BoundRaises::default();
            let results = gids
                .iter()
                // Snapshot each graph's own bound before any search runs, so
                // the sequential path reads exactly what the sharded path
                // would (raises merge only after the whole call).
                .map(|&g| (g, lower_bounds[g.index()]))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|(g, own_bound)| {
                    self.search_with_bounds(g, threshold, &active, own_bound, &mut raised, waves)
                })
                .collect();
            vec![(results, raised)]
        } else {
            // Snapshot only the searched graphs' own bounds, chunk by chunk,
            // before any search runs — the values every search reads are
            // fixed at entry no matter how chunks are scheduled.
            let tasks: Vec<PoolTask<ShardOutput>> = gids
                .chunks(chunk_size)
                .map(|chunk| {
                    let searcher = self.clone();
                    let chunk: Vec<GraphId> = chunk.to_vec();
                    let bounds: Vec<u32> = chunk.iter().map(|&g| lower_bounds[g.index()]).collect();
                    let active = Arc::clone(&active);
                    Box::new(move || {
                        let mut raised = BoundRaises::default();
                        let results = chunk
                            .iter()
                            .zip(&bounds)
                            .map(|(&g, &own_bound)| {
                                searcher.search_with_bounds(
                                    g,
                                    threshold,
                                    &active,
                                    own_bound,
                                    &mut raised,
                                    waves,
                                )
                            })
                            .collect();
                        (results, raised)
                    }) as PoolTask<ShardOutput>
                })
                .collect();
            parallelism.run_tasks(tasks)
        };
        let mut out = Vec::with_capacity(gids.len());
        for (results, raised) in shard_outputs {
            out.extend(results);
            raised.merge_into(lower_bounds);
        }
        out
    }
}

/// `dist[i]` — the minimum number of edges needed to go from node `i` to the
/// last node of `graph`, or `u32::MAX` when the last node is unreachable from
/// `i`. Computed by a reverse DP over the DAG (edges always point forward).
fn distance_to_end(graph: &ec_graph::TransformationGraph) -> Vec<u32> {
    let last = graph.last_node();
    let mut dist = vec![u32::MAX; last as usize + 1];
    dist[last as usize] = 0;
    for i in (0..last).rev() {
        let mut best = u32::MAX;
        for edge in graph.out_edges(i) {
            let d = dist[edge.to as usize];
            if d != u32::MAX {
                best = best.min(d + 1);
            }
        }
        dist[i as usize] = best;
    }
    dist
}

/// Number of distinct *active* graphs in a path list.
fn active_count(list: &PathList, active: &[bool]) -> usize {
    let mut count = 0;
    let mut last = None;
    for occ in list.occurrences() {
        if active[occ.graph.index()] && last != Some(occ.graph) {
            count += 1;
            last = Some(occ.graph);
        }
    }
    count
}

/// One viable extension of the current node: `(label, target node, extended
/// list, active share count, constant chars including the label)`.
type Candidate = (LabelId, u32, PathList, usize, usize);

/// The DFS's candidate step, shared by the recursive DFS and the frontier
/// engine's root expansion: collects the viable extensions of `node`, sorted
/// into exploration order — decreasing share count (ties: longer edges, then
/// fewer constant characters). Finding a high-share complete path early makes
/// the local threshold bite on all remaining branches, which is where
/// essentially all of the search time goes on real data.
///
/// Consumes one step per examined label; returns `None` when the budget ran
/// out mid-collection (the caller must stop, keeping its best so far).
fn collect_candidates(
    graph: &ec_graph::TransformationGraph,
    node: u32,
    list: &PathList,
    path_len: usize,
    const_chars: usize,
    state: &mut SearchState<'_>,
) -> Option<Vec<Candidate>> {
    // Only one more label fits: the next edge must reach the last node.
    let last_step = path_len + 1 == state.max_path_len;
    // Remaining length budget for the rest of the path.
    let remaining = state.max_path_len - path_len;
    let mut candidates: Vec<Candidate> = Vec::new();
    for edge in graph.out_edges(node) {
        if last_step && edge.to != graph.last_node() {
            continue;
        }
        // Feasibility: after taking this edge there must still be enough path
        // length left to reach the last node.
        let to_end = state.dist_to_end[edge.to as usize];
        if to_end == u32::MAX || 1 + to_end as usize > remaining {
            continue;
        }
        for &label in &edge.labels {
            // Cheap upper bound: a label occurring in at most `threshold`
            // graphs can never lead to an acceptable path.
            if state.index.list_graph_count(label) <= state.threshold {
                continue;
            }
            if state.steps_left == 0 {
                return None;
            }
            state.steps_left -= 1;
            let extended = state.index.extend(list, label);
            if extended.is_empty() {
                continue;
            }
            let count = active_count(&extended, state.active);
            if count == 0 {
                continue;
            }
            let next_chars = const_chars + state.constant_chars[label.index()];
            if state.early_termination {
                // Local threshold: the extension must still be able to beat the
                // best complete path found so far — a strictly larger share
                // count, or an equal count with strictly better quality (the
                // partial quality only degrades as the path grows, so it lower
                // bounds any completion) — and it must not fall below the
                // graph's own global lower bound (Algorithm 4, line 5).
                if count <= state.threshold || (count as u32) < state.own_bound {
                    continue;
                }
                let partial = Quality {
                    constant_chars: next_chars,
                    len: path_len + 1,
                };
                if !beats(count, partial, &state.bar) {
                    continue;
                }
            }
            candidates.push((label, edge.to, extended, count, next_chars));
        }
    }
    candidates.sort_by(|a, b| {
        b.3.cmp(&a.3) // larger share count first
            .then_with(|| b.1.cmp(&a.1)) // longer jumps first (completes sooner)
            .then_with(|| a.4.cmp(&b.4)) // fewer constant characters first
    });
    Some(candidates)
}

fn dfs(
    graph: &ec_graph::TransformationGraph,
    g: GraphId,
    node: u32,
    path: &mut Vec<LabelId>,
    list: &PathList,
    const_chars: usize,
    state: &mut SearchState<'_>,
) {
    if node == graph.last_node() {
        // The maintained path is a transformation path of `graph`.
        let count = active_count(list, state.active);
        let quality = Quality {
            constant_chars: const_chars,
            len: path.len(),
        };
        state.offer(count, quality, || (path.clone(), list.clone()));
        if state.early_termination {
            // Global threshold update (Algorithm 4): every graph for which this
            // path is complete has a pivot path shared by at least `count` graphs.
            for occ in list.occurrences() {
                let gi = occ.graph.index();
                if state.active[gi] && occ.end == state.last_nodes[gi] {
                    state.raised.push(gi, count as u32);
                    if gi == g.index() && state.own_bound < count as u32 {
                        state.own_bound = count as u32;
                    }
                }
            }
        }
        return;
    }
    if path.len() >= state.max_path_len {
        return;
    }
    let Some(candidates) = collect_candidates(graph, node, list, path.len(), const_chars, state)
    else {
        return;
    };
    for (label, to, extended, count, next_chars) in candidates {
        if state.steps_left == 0 {
            return;
        }
        if state.early_termination {
            // Re-check against the (possibly improved) bar before descending.
            if count <= state.threshold || (count as u32) < state.own_bound {
                continue;
            }
            let partial = Quality {
                constant_chars: next_chars,
                len: path.len() + 1,
            };
            if !beats(count, partial, &state.bar) {
                continue;
            }
        }
        path.push(label);
        dfs(graph, g, to, path, &extended, next_chars, state);
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_dsl::{Dir, PositionFn, StringFn, Term};
    use ec_graph::Replacement;

    fn prepared(reps: &[Replacement], config: &GroupingConfig) -> Arc<PreparedGraphs> {
        Arc::new(PreparedGraphs::build(reps, config))
    }

    fn example_5_1() -> Vec<Replacement> {
        vec![
            Replacement::new("Lee, Mary", "M. Lee"),
            Replacement::new("Smith, James", "J. Smith"),
            Replacement::new("Lee, Mary", "Mary Lee"),
        ]
    }

    // Paper Example 5.2 / Table 5: the pivot path of G1 is f2 ⊕ f3 ⊕ f1,
    // shared by G1 and G2.
    #[test]
    fn paper_example_5_2_pivot_of_g1() {
        let config = GroupingConfig::default();
        let prep = prepared(&example_5_1(), &config);
        let searcher = PivotSearcher::new(Arc::clone(&prep), &config);
        let mut lower = vec![1u32; prep.len()];
        let active = vec![true; prep.len()];
        let result = searcher
            .search(GraphId(0), 0, &active, &mut lower)
            .expect("pivot path exists");
        assert_eq!(result.share_count, 2, "pivot of G1 is shared by G1 and G2");
        assert_eq!(result.complete, vec![GraphId(0), GraphId(1)]);
        // The shared program must actually transform both replacements.
        let program = prep.resolve_program(&result.path);
        for gid in &result.complete {
            let r = prep.replacement(*gid);
            let ctx = ec_dsl::StrCtx::new(r.lhs());
            assert!(
                program.consistent_with(&ctx, r.rhs()),
                "{program} must be consistent with {r}"
            );
        }
    }

    // Paper Example 5.3: after searching G1, the global threshold of G2 is 2,
    // so G2's own search can prune aggressively and still finds a pivot shared
    // by 2 graphs.
    #[test]
    fn paper_example_5_3_global_threshold_propagates() {
        let config = GroupingConfig::default();
        let prep = prepared(&example_5_1(), &config);
        let searcher = PivotSearcher::new(Arc::clone(&prep), &config);
        let mut lower = vec![1u32; prep.len()];
        let active = vec![true; prep.len()];
        let _ = searcher.search(GraphId(0), 0, &active, &mut lower).unwrap();
        assert_eq!(lower[1], 2, "G2's lower bound is raised to 2");
        let result = searcher.search(GraphId(1), 0, &active, &mut lower).unwrap();
        assert_eq!(result.share_count, 2);
    }

    #[test]
    fn pivot_of_g3_is_the_name_transposition() {
        // G3 = "Lee, Mary" -> "Mary Lee" shares its transposition program with
        // no other graph in this tiny example, so its pivot is shared by 1.
        let config = GroupingConfig::default();
        let prep = prepared(&example_5_1(), &config);
        let searcher = PivotSearcher::new(Arc::clone(&prep), &config);
        let mut lower = vec![1u32; prep.len()];
        let active = vec![true; prep.len()];
        let result = searcher.search(GraphId(2), 0, &active, &mut lower).unwrap();
        assert_eq!(result.share_count, 1);
        assert_eq!(result.complete, vec![GraphId(2)]);
    }

    #[test]
    fn adding_the_fourth_replacement_grows_the_transposition_group() {
        let mut reps = example_5_1();
        reps.push(Replacement::new("Smith, James", "James Smith"));
        let config = GroupingConfig::default();
        let prep = prepared(&reps, &config);
        let searcher = PivotSearcher::new(Arc::clone(&prep), &config);
        let mut lower = vec![1u32; prep.len()];
        let active = vec![true; prep.len()];
        let result = searcher.search(GraphId(2), 0, &active, &mut lower).unwrap();
        assert_eq!(
            result.share_count, 2,
            "Lee/Mary and Smith/James transpositions share a program"
        );
        assert!(result.complete.contains(&GraphId(2)));
        assert!(result.complete.contains(&GraphId(3)));
    }

    #[test]
    fn early_termination_does_not_change_the_result() {
        let mut reps = example_5_1();
        reps.push(Replacement::new("Smith, James", "James Smith"));
        reps.push(Replacement::new("Doe, John", "J. Doe"));
        reps.push(Replacement::new("Roe, Jane", "Jane Roe"));
        let with = GroupingConfig::default();
        let without = GroupingConfig::one_shot();
        let prep_with = prepared(&reps, &with);
        let prep_without = prepared(&reps, &without);
        for g in 0..reps.len() {
            let mut lower_a = vec![1u32; reps.len()];
            let mut lower_b = vec![1u32; reps.len()];
            let active = vec![true; reps.len()];
            let a = PivotSearcher::new(Arc::clone(&prep_with), &with)
                .search(GraphId(g as u32), 0, &active, &mut lower_a)
                .unwrap();
            let b = PivotSearcher::new(Arc::clone(&prep_without), &without)
                .search(GraphId(g as u32), 0, &active, &mut lower_b)
                .unwrap();
            assert_eq!(a.share_count, b.share_count, "graph {g}");
            assert_eq!(a.complete.len(), b.complete.len(), "graph {g}");
        }
    }

    #[test]
    fn threshold_filters_small_pivots() {
        let config = GroupingConfig::default();
        let prep = prepared(&example_5_1(), &config);
        let searcher = PivotSearcher::new(Arc::clone(&prep), &config);
        let mut lower = vec![1u32; prep.len()];
        let active = vec![true; prep.len()];
        // G3's pivot is shared by only 1 graph, so a threshold of 1 rejects it.
        assert!(searcher
            .search(GraphId(2), 1, &active, &mut lower)
            .is_none());
        // G1's pivot is shared by 2 graphs, so a threshold of 1 accepts it…
        assert!(searcher
            .search(GraphId(0), 1, &active, &mut lower)
            .is_some());
        // …and a threshold of 2 rejects it.
        let mut lower = vec![1u32; prep.len()];
        assert!(searcher
            .search(GraphId(0), 2, &active, &mut lower)
            .is_none());
    }

    #[test]
    fn inactive_graphs_are_not_counted_or_grouped() {
        let config = GroupingConfig::default();
        let prep = prepared(&example_5_1(), &config);
        let searcher = PivotSearcher::new(Arc::clone(&prep), &config);
        let mut lower = vec![1u32; prep.len()];
        let mut active = vec![true; prep.len()];
        active[1] = false; // deactivate "Smith, James" -> "J. Smith"
        let result = searcher.search(GraphId(0), 0, &active, &mut lower).unwrap();
        assert_eq!(result.share_count, 1);
        assert_eq!(result.complete, vec![GraphId(0)]);
    }

    #[test]
    fn max_path_len_limits_the_search() {
        // With a path cap of 1 the only complete paths are single labels such
        // as the full-string constant, so the pivot is shared by 1 graph.
        let config = GroupingConfig {
            max_path_len: 1,
            ..GroupingConfig::default()
        };
        let prep = prepared(&example_5_1(), &config);
        let searcher = PivotSearcher::new(Arc::clone(&prep), &config);
        let mut lower = vec![1u32; prep.len()];
        let active = vec![true; prep.len()];
        let result = searcher.search(GraphId(0), 0, &active, &mut lower).unwrap();
        assert_eq!(result.share_count, 1);
        assert_eq!(result.path.len(), 1);
    }

    #[test]
    fn search_many_is_bit_identical_to_sequential_searches() {
        // A workload with several transformation families so the searches
        // interact through the shared lower bounds.
        let mut reps = Vec::new();
        for (last, first) in [
            ("Lee", "Mary"),
            ("Smith", "James"),
            ("Brown", "Anna"),
            ("Jones", "Paul"),
            ("Davis", "Emma"),
            ("Moore", "Lucy"),
        ] {
            reps.push(Replacement::new(
                format!("{last}, {first}"),
                format!("{first} {last}"),
            ));
            let initial = first.chars().next().unwrap();
            reps.push(Replacement::new(
                format!("{last}, {first}"),
                format!("{initial}. {last}"),
            ));
        }
        let config = GroupingConfig::default();
        let prep = prepared(&reps, &config);
        let searcher = PivotSearcher::new(Arc::clone(&prep), &config);
        let active = vec![true; prep.len()];
        let gids: Vec<GraphId> = (0..prep.len()).map(|g| GraphId(g as u32)).collect();

        let mut seq_bounds = vec![1u32; prep.len()];
        let sequential: Vec<Option<PivotResult>> = gids
            .iter()
            .map(|&g| searcher.search(g, 0, &active, &mut seq_bounds))
            .collect();
        for threads in [1, 2, 4, 7] {
            let mut par_bounds = vec![1u32; prep.len()];
            let parallel = searcher.search_many(
                &gids,
                0,
                &active,
                &mut par_bounds,
                ec_graph::Parallelism::fixed(threads),
            );
            assert_eq!(parallel.len(), sequential.len());
            for (a, b) in sequential.iter().zip(&parallel) {
                let a = a.as_ref().unwrap();
                let b = b.as_ref().unwrap();
                assert_eq!(a.path, b.path, "threads={threads}");
                assert_eq!(a.share_count, b.share_count, "threads={threads}");
                assert_eq!(a.complete, b.complete, "threads={threads}");
            }
            // The merged bounds are sound: never above the sequential bounds'
            // final values' own soundness limit — each graph's bound must not
            // exceed its true pivot share count.
            for (g, bound) in par_bounds.iter().enumerate() {
                let share = sequential[g].as_ref().unwrap().share_count;
                assert!(
                    *bound as usize <= share,
                    "threads={threads}: bound {bound} exceeds true share {share} of graph {g}"
                );
            }
        }
    }

    /// A workload with several interacting transformation families, reused by
    /// the engine-equivalence tests below.
    fn family_replacements() -> Vec<Replacement> {
        let mut reps = Vec::new();
        for (last, first) in [
            ("Lee", "Mary"),
            ("Smith", "James"),
            ("Brown", "Anna"),
            ("Jones", "Paul"),
            ("Davis", "Emma"),
            ("Moore", "Lucy"),
        ] {
            reps.push(Replacement::new(
                format!("{last}, {first}"),
                format!("{first} {last}"),
            ));
            let initial = first.chars().next().unwrap();
            reps.push(Replacement::new(
                format!("{last}, {first}"),
                format!("{initial}. {last}"),
            ));
        }
        reps
    }

    #[test]
    fn frontier_engine_matches_the_plain_dfs_when_the_budget_is_unbound() {
        // With a step budget the search never exhausts, the frontier engine
        // must reproduce the recursive DFS exactly: pruning is sound in both,
        // and the engine's in-order reduction preserves the DFS's tie-breaks.
        let reps = family_replacements();
        // The default 50k-step budget binds on this label-rich workload, and
        // a bound budget is exactly where the two strategies may legitimately
        // differ (shared pot vs per-task slices) — so lift it out of the way.
        let engine_config = GroupingConfig {
            max_search_steps: 100_000_000,
            ..GroupingConfig::default()
        };
        let dfs_config = GroupingConfig {
            intra_search_sharding: false,
            ..engine_config.clone()
        };
        assert!(engine_config.intra_search_sharding);
        let prep_engine = prepared(&reps, &engine_config);
        let prep_dfs = prepared(&reps, &dfs_config);
        let engine = PivotSearcher::new(Arc::clone(&prep_engine), &engine_config);
        let dfs = PivotSearcher::new(Arc::clone(&prep_dfs), &dfs_config);
        let active = vec![true; reps.len()];
        let mut bounds_engine = vec![1u32; reps.len()];
        let mut bounds_dfs = vec![1u32; reps.len()];
        for g in 0..reps.len() {
            let a = engine
                .search(GraphId(g as u32), 0, &active, &mut bounds_engine)
                .unwrap();
            let b = dfs
                .search(GraphId(g as u32), 0, &active, &mut bounds_dfs)
                .unwrap();
            assert_eq!(a.path, b.path, "graph {g}");
            assert_eq!(a.share_count, b.share_count, "graph {g}");
            assert_eq!(a.complete, b.complete, "graph {g}");
            assert_eq!(a.list, b.list, "graph {g}");
        }
    }

    #[test]
    fn frontier_waves_are_scheduling_independent_even_when_the_budget_binds() {
        // A starved budget truncates every subtree task at its private slice;
        // whether the wave runs inline (1 thread) or on the pool (more
        // workers than graphs searched) must not move the truncation points.
        let reps = family_replacements();
        let config = GroupingConfig {
            max_search_steps: 25,
            ..GroupingConfig::default()
        };
        let prep = prepared(&reps, &config);
        let searcher = PivotSearcher::new(Arc::clone(&prep), &config);
        let active = vec![true; prep.len()];
        let run = |threads: usize| {
            let mut bounds = vec![1u32; prep.len()];
            let results: Vec<Option<PivotResult>> = (0..prep.len())
                .flat_map(|g| {
                    // One graph per call, so threads > gids.len() engages the
                    // parallel wave scheduling inside each search.
                    searcher.search_many(
                        &[GraphId(g as u32)],
                        0,
                        &active,
                        &mut bounds,
                        ec_graph::Parallelism::fixed(threads),
                    )
                })
                .collect();
            (results, bounds)
        };
        let (base_results, base_bounds) = run(1);
        for threads in [2usize, 4, 7] {
            let (results, bounds) = run(threads);
            assert_eq!(bounds, base_bounds, "threads={threads}");
            assert_eq!(results.len(), base_results.len());
            for (a, b) in base_results.iter().zip(&results) {
                match (a, b) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.path, b.path, "threads={threads}");
                        assert_eq!(a.share_count, b.share_count, "threads={threads}");
                        assert_eq!(a.complete, b.complete, "threads={threads}");
                        assert_eq!(a.list, b.list, "threads={threads}");
                    }
                    _ => panic!("presence differs at {threads} threads"),
                }
            }
        }
    }

    #[test]
    fn affix_pivot_groups_street_and_avenue() {
        // Street->St and Avenue->Ave share a pivot only thanks to the affix
        // extension (Appendix D / Example D.1).
        let reps = vec![
            Replacement::new("Street", "St"),
            Replacement::new("Avenue", "Ave"),
        ];
        let with_affix = GroupingConfig::default();
        let prep = prepared(&reps, &with_affix);
        let searcher = PivotSearcher::new(Arc::clone(&prep), &with_affix);
        let mut lower = vec![1u32; 2];
        let active = vec![true; 2];
        let result = searcher.search(GraphId(0), 0, &active, &mut lower).unwrap();
        assert_eq!(result.share_count, 2);
        let program = prep.resolve_program(&result.path);
        assert!(program.fns().iter().any(StringFn::is_affix));

        let without = GroupingConfig::without_affix();
        let prep2 = prepared(&reps, &without);
        let searcher2 = PivotSearcher::new(Arc::clone(&prep2), &without);
        let mut lower2 = vec![1u32; 2];
        let result2 = searcher2
            .search(GraphId(0), 0, &active, &mut lower2)
            .unwrap();
        assert_eq!(
            result2.share_count, 1,
            "without affix labels the two graphs share no program"
        );
    }

    #[test]
    fn pivot_program_reproduces_figure_3() {
        // The pivot program of the initials transformation must contain the
        // f2/f3/f1 shape of Figure 3 (a substring, a constant ". ", a substring).
        let reps = vec![
            Replacement::new("Lee, Mary", "M. Lee"),
            Replacement::new("Smith, James", "J. Smith"),
            Replacement::new("Brown, Anna", "A. Brown"),
        ];
        let config = GroupingConfig::default();
        let prep = prepared(&reps, &config);
        let searcher = PivotSearcher::new(Arc::clone(&prep), &config);
        let mut lower = vec![1u32; 3];
        let active = vec![true; 3];
        let result = searcher.search(GraphId(0), 0, &active, &mut lower).unwrap();
        assert_eq!(result.share_count, 3);
        let program = prep.resolve_program(&result.path);
        // The program must be consistent with a fresh, unseen name pair too —
        // that is what "learning a transformation" means.
        let ctx = ec_dsl::StrCtx::new("Stone, Olivia");
        assert!(program.consistent_with(&ctx, "O. Stone"), "{program}");
        // And it must include the constant ". " somewhere (or an equivalent),
        // since ". " never appears in the inputs.
        assert!(program
            .fns()
            .iter()
            .any(|f| matches!(f, StringFn::ConstantStr(c) if c.contains('.'))));
        let _ = PositionFn::const_pos(1);
        let _ = Dir::Begin;
        let _ = Term::Upper;
    }
}
