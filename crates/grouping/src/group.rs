//! Replacement groups: the unit presented to a human for verification.

use ec_dsl::Program;
use ec_graph::Replacement;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A group of candidate replacements that share a transformation program.
///
/// Groups are what the framework presents to the human expert: approving a
/// group applies all of its member replacements (in a direction chosen by the
/// expert), rejecting it applies none.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Group {
    /// The shared transformation program (the pivot path), when the group was
    /// formed by pivot-path search. Singleton fallback groups (e.g. for
    /// replacements whose graphs were not built) have `None`.
    pub program: Option<Program>,
    /// The member replacements, in deterministic order.
    pub members: Vec<Replacement>,
}

impl Group {
    /// Creates a group from a shared program and its members.
    pub fn new(program: Option<Program>, mut members: Vec<Replacement>) -> Self {
        members.sort();
        members.dedup();
        Group { program, members }
    }

    /// Creates a singleton group holding one replacement with no shared program.
    pub fn singleton(replacement: Replacement) -> Self {
        Group {
            program: None,
            members: vec![replacement],
        }
    }

    /// Number of member replacements — the ranking key of Section 3, Step 3.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The member replacements.
    pub fn members(&self) -> &[Replacement] {
        &self.members
    }

    /// The shared program, if any.
    pub fn program(&self) -> Option<&Program> {
        self.program.as_ref()
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.program {
            Some(p) => writeln!(
                f,
                "group of {} replacements sharing {p}",
                self.members.len()
            )?,
            None => writeln!(f, "singleton group")?,
        }
        for m in &self.members {
            writeln!(f, "  {m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_are_sorted_and_deduplicated() {
        let g = Group::new(
            None,
            vec![
                Replacement::new("b", "c"),
                Replacement::new("a", "b"),
                Replacement::new("b", "c"),
            ],
        );
        assert_eq!(g.size(), 2);
        assert_eq!(g.members()[0], Replacement::new("a", "b"));
    }

    #[test]
    fn singleton() {
        let g = Group::singleton(Replacement::new("x", "y"));
        assert_eq!(g.size(), 1);
        assert!(g.program().is_none());
    }

    #[test]
    fn display_mentions_size() {
        let g = Group::new(None, vec![Replacement::new("a", "b")]);
        let s = g.to_string();
        assert!(s.contains("\"a\" -> \"b\""));
    }
}
