//! One-shot grouping: `UnsupervisedGrouping` (Algorithm 2).
//!
//! Every graph's pivot path is computed and graphs with the same pivot path
//! form a group. With [`GroupingConfig::early_termination`] disabled this is
//! the paper's `OneShot` method; enabled, it is `EarlyTerm` (Figure 9). The
//! produced groups are identical either way; only the running time differs.

use crate::config::GroupingConfig;
use crate::group::Group;
use crate::prepared::PreparedGraphs;
use crate::search::PivotSearcher;
use ec_graph::{LabelId, Replacement};
use ec_index::GraphId;
use std::collections::HashMap;
use std::sync::Arc;

/// The one-shot (upfront) grouper.
#[derive(Debug)]
pub struct OneShotGrouper {
    prepared: Arc<PreparedGraphs>,
    config: GroupingConfig,
}

impl OneShotGrouper {
    /// Preprocesses `replacements` (builds graphs and the inverted index).
    pub fn new(replacements: &[Replacement], config: GroupingConfig) -> Self {
        let prepared = Arc::new(PreparedGraphs::build(replacements, &config));
        OneShotGrouper { prepared, config }
    }

    /// Access to the preprocessed graphs.
    pub fn prepared(&self) -> &PreparedGraphs {
        &self.prepared
    }

    /// Partitions all replacements into groups (Algorithm 2) and returns them
    /// sorted by size, largest first. Replacements whose graphs could not be
    /// built are appended as singleton groups.
    ///
    /// The per-graph pivot-path searches are sharded across
    /// [`GroupingConfig::parallelism`] worker threads; the produced groups are
    /// bit-identical for every thread count (see
    /// [`PivotSearcher::search_many`]). Searches run in fixed-size batches:
    /// the batch boundaries are where the global lower bounds of Algorithm 4
    /// merge, so pruning strength — and with it every search's step
    /// consumption — depends only on the (thread-count-independent) batch
    /// schedule, while bounds still propagate with at most one batch of lag.
    /// When a batch's tail leaves more workers than graphs (or the whole
    /// collection is a handful of huge graphs), each search also runs its
    /// frontier waves in parallel — see
    /// [`GroupingConfig::intra_search_sharding`].
    pub fn group_all(&self) -> Vec<Group> {
        /// Graphs searched per bound-merge round.
        const SEARCH_BATCH: usize = 32;
        let n = self.prepared.len();
        let searcher = PivotSearcher::new(Arc::clone(&self.prepared), &self.config);
        let active = vec![true; n];
        let mut lower_bounds = vec![1u32; n];
        let gids: Vec<GraphId> = (0..n).map(|g| GraphId(g as u32)).collect();
        let mut by_pivot: HashMap<Vec<LabelId>, Vec<GraphId>> = HashMap::new();
        for batch in gids.chunks(SEARCH_BATCH) {
            let results = searcher.search_many(
                batch,
                0,
                &active,
                &mut lower_bounds,
                self.config.parallelism,
            );
            for (&gid, result) in batch.iter().zip(results) {
                let result = result.expect("every graph has at least one transformation path");
                by_pivot.entry(result.path).or_default().push(gid);
            }
        }
        let mut groups: Vec<Group> = by_pivot
            .into_iter()
            .map(|(path, members)| {
                let program = self.prepared.resolve_program(&path);
                Group::new(
                    Some(program),
                    members
                        .into_iter()
                        .map(|g| self.prepared.replacement(g).clone())
                        .collect(),
                )
            })
            .collect();
        for r in self.prepared.skipped() {
            groups.push(Group::singleton(r.clone()));
        }
        sort_groups(&mut groups);
        groups
    }
}

/// Sorts groups by size descending, breaking ties by the first member so the
/// order is deterministic.
pub(crate) fn sort_groups(groups: &mut [Group]) {
    groups.sort_by(|a, b| {
        b.size()
            .cmp(&a.size())
            .then_with(|| a.members().first().cmp(&b.members().first()))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 12 name-attribute candidate replacements of Figure 2 (both
    /// directions of each pair within the two clusters of Table 1).
    fn figure2_name_replacements() -> Vec<Replacement> {
        let cluster1 = ["Mary Lee", "M. Lee", "Lee, Mary"];
        let cluster2 = ["Smith, James", "James Smith", "J. Smith"];
        let mut reps = Vec::new();
        for cluster in [cluster1, cluster2] {
            for a in cluster {
                for b in cluster {
                    if a != b {
                        reps.push(Replacement::new(a, b));
                    }
                }
            }
        }
        assert_eq!(reps.len(), 12);
        reps
    }

    #[test]
    fn figure2_produces_pairwise_groups() {
        let grouper = OneShotGrouper::new(&figure2_name_replacements(), GroupingConfig::default());
        let groups = grouper.group_all();
        // All 12 replacements are covered exactly once.
        let total: usize = groups.iter().map(Group::size).sum();
        assert_eq!(total, 12);
        // The largest groups pair a Lee replacement with the analogous Smith
        // replacement (Figure 2 groups 1-6 each have two members).
        assert_eq!(groups[0].size(), 2, "groups: {groups:#?}");
        // Size-2 groups must mix the two clusters (that is the whole point of
        // learning transformations that repeat across clusters).
        for g in groups.iter().filter(|g| g.size() == 2) {
            let mentions_lee = g
                .members()
                .iter()
                .any(|r| r.lhs().contains("Lee") || r.rhs().contains("Lee"));
            let mentions_smith = g
                .members()
                .iter()
                .any(|r| r.lhs().contains("Smith") || r.rhs().contains("Smith"));
            assert!(
                mentions_lee && mentions_smith,
                "cross-cluster group expected: {g}"
            );
        }
        // Sizes are non-increasing.
        for w in groups.windows(2) {
            assert!(w[0].size() >= w[1].size());
        }
    }

    #[test]
    fn abbreviation_groups_from_figure_2_right_column() {
        let reps = vec![
            Replacement::new("9th", "9"),
            Replacement::new("3rd", "3"),
            Replacement::new("Street", "St"),
            Replacement::new("Avenue", "Ave"),
            Replacement::new("Wisconsin", "WI"),
            Replacement::new("California", "CA"),
        ];
        let grouper = OneShotGrouper::new(&reps, GroupingConfig::default());
        let groups = grouper.group_all();
        let sizes: Vec<usize> = groups.iter().map(Group::size).collect();
        // 9th→9 and 3rd→3 share "keep the leading digits"; Street→St /
        // Avenue→Ave share the affix program; Wisconsin→WI / California→CA
        // share "first capital + a capital prefix/constant"… the exact split
        // of the last pair depends on the learned program, but the first two
        // pairs must be grouped.
        assert!(sizes[0] == 2, "sizes: {sizes:?}");
        let digit_group = groups
            .iter()
            .find(|g| g.members().iter().any(|r| r.lhs() == "9th"))
            .unwrap();
        assert!(
            digit_group.members().iter().any(|r| r.lhs() == "3rd"),
            "{groups:#?}"
        );
        let street_group = groups
            .iter()
            .find(|g| g.members().iter().any(|r| r.lhs() == "Street"))
            .unwrap();
        assert!(
            street_group.members().iter().any(|r| r.lhs() == "Avenue"),
            "{groups:#?}"
        );
    }

    #[test]
    fn early_termination_produces_identical_groups() {
        let reps = figure2_name_replacements();
        let with = OneShotGrouper::new(&reps, GroupingConfig::default()).group_all();
        let without = OneShotGrouper::new(&reps, GroupingConfig::one_shot()).group_all();
        let sizes_with: Vec<usize> = with.iter().map(Group::size).collect();
        let sizes_without: Vec<usize> = without.iter().map(Group::size).collect();
        assert_eq!(sizes_with, sizes_without);
        let members_with: Vec<_> = with.iter().flat_map(|g| g.members().to_vec()).collect();
        let members_without: Vec<_> = without.iter().flat_map(|g| g.members().to_vec()).collect();
        assert_eq!(members_with.len(), members_without.len());
    }

    #[test]
    fn group_all_is_thread_independent_even_when_the_step_budget_binds() {
        // A starved step budget truncates every search; the batched snapshot
        // protocol must keep the truncation point — and so the groups —
        // independent of the thread count.
        let reps = figure2_name_replacements();
        let group = |threads: usize| {
            let config = GroupingConfig {
                max_search_steps: 20,
                parallelism: ec_graph::Parallelism::fixed(threads),
                ..GroupingConfig::default()
            };
            OneShotGrouper::new(&reps, config).group_all()
        };
        let base = group(1);
        for threads in [2usize, 4, 7] {
            assert_eq!(base, group(threads), "threads={threads}");
        }
    }

    #[test]
    fn skipped_replacements_become_singletons() {
        let config = GroupingConfig {
            graph: ec_graph::GraphConfig {
                max_output_len: Some(6),
                ..ec_graph::GraphConfig::default()
            },
            ..GroupingConfig::default()
        };
        let reps = vec![
            Replacement::new("a", "bb"),
            Replacement::new("c", "a very long output string"),
        ];
        let groups = OneShotGrouper::new(&reps, config).group_all();
        assert_eq!(groups.len(), 2);
        assert!(groups
            .iter()
            .any(|g| g.program().is_none() && g.size() == 1));
    }

    #[test]
    fn empty_input_yields_no_groups() {
        let groups = OneShotGrouper::new(&[], GroupingConfig::default()).group_all();
        assert!(groups.is_empty());
    }

    #[test]
    fn group_programs_are_consistent_with_all_members() {
        let reps = figure2_name_replacements();
        let groups = OneShotGrouper::new(&reps, GroupingConfig::default()).group_all();
        for g in &groups {
            if let Some(p) = g.program() {
                for r in g.members() {
                    let ctx = ec_dsl::StrCtx::new(r.lhs());
                    assert!(p.consistent_with(&ctx, r.rhs()), "{p} vs {r}");
                }
            }
        }
    }
}
