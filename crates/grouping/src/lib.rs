//! # ec-grouping — unsupervised string-transformation learning
//!
//! This crate implements the core algorithmic contribution of the paper:
//! partitioning a set `Φ` of candidate replacements into groups such that all
//! replacements in a group share a transformation program (a common *pivot
//! path* through their transformation graphs), with the number of groups kept
//! small by a greedy strategy (optimal partitioning is NP-complete, Section
//! 4.2).
//!
//! Three grouping drivers are provided, matching the methods compared in the
//! paper's Figure 9:
//!
//! * [`OneShotGrouper`] — the vanilla `UnsupervisedGrouping` of Algorithm 2,
//!   optionally with the local/global threshold early-termination
//!   optimizations of Algorithm 4 (`EarlyTerm`);
//! * [`IncrementalGrouper`] — the top-k algorithm of Section 6 (Algorithms
//!   5–7) that produces the next-largest group per invocation;
//! * [`StructuredGrouper`] — either of the above composed with the
//!   structure-signature refinement of Section 7.2, which is the configuration
//!   the paper actually evaluates (`Group` in Figures 6–8).
//!
//! ```
//! use ec_graph::Replacement;
//! use ec_grouping::{GroupingConfig, StructuredGrouper};
//!
//! let replacements = vec![
//!     Replacement::new("Lee, Mary", "M. Lee"),
//!     Replacement::new("Smith, James", "J. Smith"),
//!     Replacement::new("Lee, Mary", "Mary Lee"),
//!     Replacement::new("Smith, James", "James Smith"),
//! ];
//! let mut grouper = StructuredGrouper::new(&replacements, GroupingConfig::default());
//! let first = grouper.next_group().expect("at least one group");
//! assert_eq!(first.size(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod group;
mod incremental;
mod oneshot;
mod prepared;
mod search;
mod structured;

pub use config::GroupingConfig;
pub use ec_graph::Parallelism;
pub use group::Group;
pub use incremental::IncrementalGrouper;
pub use oneshot::OneShotGrouper;
pub use prepared::PreparedGraphs;
pub use search::{PivotResult, PivotSearcher};
pub use structured::{partition_replacements, StructuredGrouper};
