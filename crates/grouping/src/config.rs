//! Grouping configuration.

use ec_graph::{GraphConfig, Parallelism};
use serde::{Deserialize, Serialize};

/// Configuration shared by all grouping drivers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupingConfig {
    /// Graph-construction configuration (affix labels on/off, constant policy, …).
    pub graph: GraphConfig,
    /// Maximum number of string functions in a pivot path. The paper limits
    /// the path length to 6 in all experiments (Section 8.2); longer paths are
    /// never explored.
    pub max_path_len: usize,
    /// Enable the local/global threshold early-termination optimizations of
    /// Section 5.2. Disabling this reproduces the `OneShot` baseline of
    /// Figure 9; it never changes the produced groups, only the time taken.
    pub early_termination: bool,
    /// Pre-partition replacements by their structure signatures (Section 7.2)
    /// before grouping. Only consulted by [`crate::StructuredGrouper`].
    pub structure_refinement: bool,
    /// Budget on the number of path extensions (inverted-list intersections)
    /// one pivot-path search may perform. Appendix E notes that when the
    /// search is too expensive one can cap the path length or sample; this cap
    /// plays the same role for pathological graphs (very long outputs whose
    /// pieces rarely occur in the input): when it is hit, the best complete
    /// path found so far is used. Typical searches finish in a few hundred
    /// extensions, orders of magnitude below the default.
    ///
    /// **Determinism:** results are bit-identical for every
    /// [`GroupingConfig::parallelism`] even when this budget truncates a
    /// search — the drivers use thread-count-independent batch schedules and
    /// snapshot bound semantics, so step consumption never depends on the
    /// thread count. Changing *this cap itself* (or toggling
    /// [`GroupingConfig::early_termination`]) can change the groups on
    /// workloads where the budget binds, since pruning strength then decides
    /// where a search is cut off.
    pub max_search_steps: usize,
    /// Build transformation graphs on multiple threads (per-thread label
    /// interners merged afterwards). Deterministic regardless of the setting.
    pub parallel_graph_build: bool,
    /// Run each pivot-path search through the explicit-frontier engine, whose
    /// root-level subtrees are independent `SearchTask` subproblems that can
    /// execute on the shared worker pool when there are more workers than
    /// graphs to search — the only way `--threads` helps a *single* expensive
    /// search (the mega-group shape). The engine's task decomposition is
    /// fixed per search (deterministic waves, snapshot bounds, in-order
    /// reduction), so results are bit-identical for every thread count;
    /// disabling this restores the plain recursive DFS, which can differ from
    /// the engine only on searches truncated by
    /// [`GroupingConfig::max_search_steps`].
    pub intra_search_sharding: bool,
    /// Worker threads for the sharded stages: graph preparation and the
    /// per-graph pivot-path searches of the one-shot and incremental
    /// groupers. Every setting produces bit-identical groups; only the
    /// wall-clock time changes (see `ec_graph::Parallelism`).
    pub parallelism: Parallelism,
}

impl Default for GroupingConfig {
    fn default() -> Self {
        GroupingConfig {
            // Appendix E restricts which ConstantStr labels the pivot-path
            // search considers (locally high-scoring constants only); the
            // grouping default approximates that static order by keeping only
            // short constants (plus the full-output constant every graph needs
            // for a guaranteed transformation path). Long constants convey no
            // transformation and blow up the path search combinatorially.
            graph: GraphConfig {
                constant_policy: ec_graph::ConstantPolicy::MaxLen(4),
                ..GraphConfig::default()
            },
            max_path_len: 6,
            early_termination: true,
            structure_refinement: true,
            max_search_steps: 50_000,
            parallel_graph_build: true,
            intra_search_sharding: true,
            parallelism: Parallelism::AUTO,
        }
    }
}

impl GroupingConfig {
    /// The configuration of the paper's `OneShot` method (no early
    /// termination).
    pub fn one_shot() -> Self {
        GroupingConfig {
            early_termination: false,
            ..Self::default()
        }
    }

    /// The configuration of the `NoAffix` ablation (Figure 10).
    pub fn without_affix() -> Self {
        let mut config = Self::default();
        config.graph.enable_affix = false;
        config
    }

    /// The default configuration with a fixed worker-thread count for the
    /// sharded stages (`0` means auto).
    pub fn with_threads(threads: usize) -> Self {
        GroupingConfig {
            parallelism: Parallelism::from(threads),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = GroupingConfig::default();
        assert_eq!(c.max_path_len, 6);
        assert!(c.early_termination);
        assert!(c.structure_refinement);
        assert!(c.graph.enable_affix);
        assert!(c.intra_search_sharding);
    }

    #[test]
    fn presets() {
        assert!(!GroupingConfig::one_shot().early_termination);
        assert!(!GroupingConfig::without_affix().graph.enable_affix);
        assert_eq!(
            GroupingConfig::with_threads(3).parallelism,
            Parallelism::fixed(3)
        );
        assert_eq!(
            GroupingConfig::with_threads(0).parallelism,
            Parallelism::AUTO
        );
    }
}
