//! # ec-report — experiment reporting
//!
//! The paper's evaluation is a handful of figures (metric vs. number of groups
//! confirmed, runtime vs. number of groups) and tables (dataset statistics,
//! golden-record precision). This crate holds the small, dependency-free
//! plumbing the experiment harnesses in `ec-bench` and the `ec` CLI use to
//! present those results:
//!
//! * [`Series`] / [`Figure`] — named `(x, y)` curves grouped into a figure
//!   with axis labels, mirroring the paper's Figures 6–10.
//! * [`ascii_chart`] — renders a figure as a fixed-width ASCII line chart so
//!   results are readable in a terminal and in `EXPERIMENTS.md`.
//! * [`TextTable`] — aligned plain-text and Markdown tables for the paper's
//!   Tables 6 and 8.
//! * [`gnuplot_dat`] / [`csv_export`] — machine-readable exports for anyone
//!   who wants to re-plot the results with external tooling.
//!
//! Everything is deterministic and pure string manipulation; there is no I/O
//! in this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod export;
pub mod table;

pub use chart::{ascii_chart, ChartConfig};
pub use export::{csv_export, gnuplot_dat};
pub use table::TextTable;

use serde::{Deserialize, Serialize};

/// A named curve: a sequence of `(x, y)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label of the curve (e.g. `"Group"`, `"Single"`, `"Trifacta"`).
    pub name: String,
    /// The `(x, y)` points, in the order they were recorded.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from a name and points.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }

    /// Creates a series from integer x values (the usual "number of groups
    /// confirmed" axis).
    pub fn from_indexed(
        name: impl Into<String>,
        values: impl IntoIterator<Item = (usize, f64)>,
    ) -> Self {
        Series {
            name: name.into(),
            points: values.into_iter().map(|(x, y)| (x as f64, y)).collect(),
        }
    }

    /// The smallest and largest x values, or `None` for an empty series.
    pub fn x_range(&self) -> Option<(f64, f64)> {
        range(self.points.iter().map(|&(x, _)| x))
    }

    /// The smallest and largest y values, or `None` for an empty series.
    pub fn y_range(&self) -> Option<(f64, f64)> {
        range(self.points.iter().map(|&(_, y)| y))
    }

    /// The y value of the last point, if any — handy for "final recall after
    /// the full budget" summaries.
    pub fn final_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }

    /// Linear interpolation of y at the given x. Points outside the covered x
    /// range clamp to the first/last y. Returns `None` for an empty series.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let mut sorted = self.points.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        if x <= sorted[0].0 {
            return Some(sorted[0].1);
        }
        if x >= sorted[sorted.len() - 1].0 {
            return Some(sorted[sorted.len() - 1].1);
        }
        for w in sorted.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if x >= x0 && x <= x1 {
                if (x1 - x0).abs() < f64::EPSILON {
                    return Some(y0);
                }
                let t = (x - x0) / (x1 - x0);
                return Some(y0 + t * (y1 - y0));
            }
        }
        None
    }
}

/// A figure: one or more series sharing an x and y axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Figure title (e.g. `"Figure 7(b): recall on Address"`).
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// The curves of the figure.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series and returns the figure (builder style).
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Adds a series in place.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// The combined x range over all series.
    pub fn x_range(&self) -> Option<(f64, f64)> {
        range(
            self.series
                .iter()
                .flat_map(|s| s.points.iter().map(|&(x, _)| x)),
        )
    }

    /// The combined y range over all series.
    pub fn y_range(&self) -> Option<(f64, f64)> {
        range(
            self.series
                .iter()
                .flat_map(|s| s.points.iter().map(|&(_, y)| y)),
        )
    }

    /// Total number of points across all series.
    pub fn num_points(&self) -> usize {
        self.series.iter().map(|s| s.points.len()).sum()
    }
}

fn range(values: impl Iterator<Item = f64>) -> Option<(f64, f64)> {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut any = false;
    for v in values {
        if v.is_nan() {
            continue;
        }
        any = true;
        min = min.min(v);
        max = max.max(v);
    }
    if any {
        Some((min, max))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_ranges_and_final_value() {
        let s = Series::new("recall", vec![(0.0, 0.0), (50.0, 0.4), (100.0, 0.75)]);
        assert_eq!(s.x_range(), Some((0.0, 100.0)));
        assert_eq!(s.y_range(), Some((0.0, 0.75)));
        assert_eq!(s.final_y(), Some(0.75));
    }

    #[test]
    fn empty_series_has_no_range() {
        let s = Series::new("empty", vec![]);
        assert_eq!(s.x_range(), None);
        assert_eq!(s.y_range(), None);
        assert_eq!(s.final_y(), None);
        assert_eq!(s.y_at(1.0), None);
    }

    #[test]
    fn from_indexed_converts_budgets() {
        let s = Series::from_indexed("mcc", [(0usize, 0.0), (10, 0.5)]);
        assert_eq!(s.points, vec![(0.0, 0.0), (10.0, 0.5)]);
    }

    #[test]
    fn interpolation_is_linear_and_clamped() {
        let s = Series::new("r", vec![(0.0, 0.0), (100.0, 1.0)]);
        assert!((s.y_at(50.0).unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(s.y_at(-10.0), Some(0.0));
        assert_eq!(s.y_at(200.0), Some(1.0));
        // Unsorted input is handled.
        let s = Series::new("r", vec![(100.0, 1.0), (0.0, 0.0)]);
        assert!((s.y_at(25.0).unwrap() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn interpolation_with_duplicate_x_does_not_divide_by_zero() {
        let s = Series::new("r", vec![(1.0, 0.2), (1.0, 0.8)]);
        assert!(s.y_at(1.0).is_some());
    }

    #[test]
    fn figure_aggregates_ranges_over_series() {
        let fig = Figure::new("Figure 7(b)", "# of groups confirmed", "recall")
            .with_series(Series::new("Group", vec![(0.0, 0.0), (100.0, 0.75)]))
            .with_series(Series::new("Single", vec![(0.0, 0.0), (100.0, 0.1)]))
            .with_series(Series::new("Trifacta", vec![(0.0, 0.55), (100.0, 0.55)]));
        assert_eq!(fig.series.len(), 3);
        assert_eq!(fig.x_range(), Some((0.0, 100.0)));
        assert_eq!(fig.y_range(), Some((0.0, 0.75)));
        assert_eq!(fig.num_points(), 6);
    }

    #[test]
    fn nan_points_are_ignored_for_ranges() {
        let s = Series::new("noisy", vec![(0.0, f64::NAN), (1.0, 2.0)]);
        assert_eq!(s.y_range(), Some((2.0, 2.0)));
        assert_eq!(s.x_range(), Some((0.0, 1.0)));
    }

    #[test]
    fn empty_figure_has_no_range() {
        let fig = Figure::new("empty", "x", "y");
        assert_eq!(fig.x_range(), None);
        assert_eq!(fig.y_range(), None);
        assert_eq!(fig.num_points(), 0);
    }
}
