//! ASCII line charts.
//!
//! The experiment binaries print their curves directly to the terminal and
//! `EXPERIMENTS.md`; an eyeball-able chart is enough to compare the *shape* of
//! the reproduced figures against the paper (who wins, by how much, where the
//! curves flatten). Rendering is deterministic: the same figure always
//! produces the same characters.

use crate::Figure;

/// Rendering options for [`ascii_chart`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChartConfig {
    /// Width of the plot area in characters (excluding the y-axis gutter).
    pub width: usize,
    /// Height of the plot area in rows.
    pub height: usize,
    /// Force the y axis to start at zero even when all values are larger.
    pub y_from_zero: bool,
    /// Fixed upper bound of the y axis, e.g. `Some(1.0)` for metric plots.
    pub y_max: Option<f64>,
    /// Use a logarithmic y axis (for runtime plots spanning orders of
    /// magnitude, like the paper's Figure 9).
    pub log_y: bool,
}

impl Default for ChartConfig {
    fn default() -> Self {
        ChartConfig {
            width: 60,
            height: 16,
            y_from_zero: true,
            y_max: None,
            log_y: false,
        }
    }
}

impl ChartConfig {
    /// A config suited to precision/recall/MCC curves: y fixed to `[0, 1]`.
    pub fn metric() -> Self {
        ChartConfig {
            y_from_zero: true,
            y_max: Some(1.0),
            ..ChartConfig::default()
        }
    }

    /// A config suited to runtime curves: log-scale y axis.
    pub fn runtime() -> Self {
        ChartConfig {
            y_from_zero: false,
            log_y: true,
            ..ChartConfig::default()
        }
    }
}

/// The marker characters assigned to the first few series, in order.
const MARKERS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];

/// Renders a figure as a multi-line ASCII chart.
///
/// Each series gets a marker character (`*`, `+`, `o`, …) shown in the legend.
/// When two series occupy the same cell, the earlier series wins, which keeps
/// the chart readable when curves coincide. Empty figures render as a title
/// plus a note.
pub fn ascii_chart(figure: &Figure, config: &ChartConfig) -> String {
    let mut out = String::new();
    out.push_str(&figure.title);
    out.push('\n');

    let Some((x_min, x_max)) = figure.x_range() else {
        out.push_str("  (no data)\n");
        return out;
    };
    let (mut y_min, mut y_max) = figure.y_range().unwrap_or((0.0, 1.0));
    if config.y_from_zero && !config.log_y {
        y_min = y_min.min(0.0);
    }
    if let Some(forced) = config.y_max {
        y_max = y_max.max(forced);
    }
    if config.log_y {
        // Clamp to positive values for the log scale.
        y_min = y_min.max(1e-9);
        y_max = y_max.max(y_min * 10.0);
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }
    let x_span = if (x_max - x_min).abs() < f64::EPSILON {
        1.0
    } else {
        x_max - x_min
    };

    let width = config.width.max(10);
    let height = config.height.max(4);
    let mut grid = vec![vec![' '; width]; height];

    let y_pos = |y: f64| -> Option<usize> {
        let v = if config.log_y {
            if y <= 0.0 {
                return None;
            }
            (y.ln() - y_min.ln()) / (y_max.ln() - y_min.ln())
        } else {
            (y - y_min) / (y_max - y_min)
        };
        let v = v.clamp(0.0, 1.0);
        let row = ((1.0 - v) * (height - 1) as f64).round() as usize;
        Some(row.min(height - 1))
    };
    let x_pos = |x: f64| -> usize {
        let v = ((x - x_min) / x_span).clamp(0.0, 1.0);
        ((v * (width - 1) as f64).round() as usize).min(width - 1)
    };

    // Later series drawn first so that earlier (more important) series
    // overwrite them and stay visible.
    for (idx, series) in figure.series.iter().enumerate().rev() {
        let marker = MARKERS[idx % MARKERS.len()];
        // Connect consecutive points with interpolated cells so sparse
        // checkpoints still read as a curve.
        let mut pts: Vec<(f64, f64)> = series.points.clone();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        for w in pts.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let c0 = x_pos(x0);
            let c1 = x_pos(x1);
            let steps = c1.saturating_sub(c0).max(1);
            for s in 0..=steps {
                let t = s as f64 / steps as f64;
                let x = x0 + t * (x1 - x0);
                let y = y0 + t * (y1 - y0);
                if let Some(row) = y_pos(y) {
                    grid[row][x_pos(x)] = marker;
                }
            }
        }
        for &(x, y) in &pts {
            if let Some(row) = y_pos(y) {
                grid[row][x_pos(x)] = marker;
            }
        }
    }

    // Y-axis labels on a handful of rows.
    let label_for_row = |row: usize| -> f64 {
        let v = 1.0 - row as f64 / (height - 1) as f64;
        if config.log_y {
            (y_min.ln() + v * (y_max.ln() - y_min.ln())).exp()
        } else {
            y_min + v * (y_max - y_min)
        }
    };
    for (row, cells) in grid.iter().enumerate() {
        let labelled = row == 0 || row == height - 1 || row == height / 2;
        let gutter = if labelled {
            format!("{:>9.3} |", label_for_row(row))
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&gutter);
        out.extend(cells.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>9}  {:<width$.0}{:>0}\n",
        "",
        x_min,
        x_max,
        width = width.saturating_sub(x_max.to_string().len()).max(1)
    ));
    out.push_str(&format!(
        "{:>9}  x: {}   y: {}\n",
        "", figure.x_label, figure.y_label
    ));

    // Legend.
    out.push_str(&format!("{:>9}  ", ""));
    for (idx, series) in figure.series.iter().enumerate() {
        if idx > 0 {
            out.push_str("   ");
        }
        out.push(MARKERS[idx % MARKERS.len()]);
        out.push(' ');
        out.push_str(&series.name);
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Series;

    fn recall_figure() -> Figure {
        Figure::new(
            "Figure 7(b): recall on Address",
            "# of groups confirmed",
            "recall",
        )
        .with_series(Series::new(
            "Group",
            vec![(0.0, 0.0), (25.0, 0.4), (50.0, 0.6), (100.0, 0.75)],
        ))
        .with_series(Series::new("Single", vec![(0.0, 0.0), (100.0, 0.1)]))
        .with_series(Series::new("Trifacta", vec![(0.0, 0.55), (100.0, 0.55)]))
    }

    #[test]
    fn chart_contains_title_axes_and_legend() {
        let chart = ascii_chart(&recall_figure(), &ChartConfig::metric());
        assert!(chart.contains("Figure 7(b)"));
        assert!(chart.contains("x: # of groups confirmed"));
        assert!(chart.contains("y: recall"));
        assert!(chart.contains("* Group"));
        assert!(chart.contains("+ Single"));
        assert!(chart.contains("o Trifacta"));
    }

    #[test]
    fn chart_is_deterministic() {
        let a = ascii_chart(&recall_figure(), &ChartConfig::metric());
        let b = ascii_chart(&recall_figure(), &ChartConfig::metric());
        assert_eq!(a, b);
    }

    #[test]
    fn chart_has_requested_dimensions() {
        let config = ChartConfig {
            width: 40,
            height: 10,
            ..ChartConfig::metric()
        };
        let chart = ascii_chart(&recall_figure(), &config);
        let plot_rows: Vec<&str> = chart.lines().filter(|l| l.contains('|')).collect();
        assert_eq!(plot_rows.len(), 10);
        for row in plot_rows {
            let after_axis = row.split('|').nth(1).unwrap();
            assert_eq!(after_axis.chars().count(), 40);
        }
    }

    #[test]
    fn higher_values_are_drawn_on_higher_rows() {
        let fig =
            Figure::new("t", "x", "y").with_series(Series::new("s", vec![(0.0, 0.0), (10.0, 1.0)]));
        let chart = ascii_chart(&fig, &ChartConfig::metric());
        let rows: Vec<&str> = chart.lines().filter(|l| l.contains('|')).collect();
        let top_marker = rows.first().unwrap().rfind('*');
        let bottom_marker = rows.last().unwrap().find('*');
        // The maximum (y=1.0) is on the top row at the right, the minimum on
        // the bottom row at the left.
        assert!(top_marker.is_some());
        assert!(bottom_marker.is_some());
        assert!(top_marker.unwrap() > bottom_marker.unwrap());
    }

    #[test]
    fn empty_figure_renders_a_note() {
        let fig = Figure::new("nothing", "x", "y");
        let chart = ascii_chart(&fig, &ChartConfig::default());
        assert!(chart.contains("no data"));
    }

    #[test]
    fn log_scale_accepts_wide_ranges() {
        let fig = Figure::new("Figure 9(a)", "# of groups", "runtime in sec")
            .with_series(Series::new("Incremental", vec![(1.0, 1.6), (200.0, 40.0)]))
            .with_series(Series::new("OneShot", vec![(1.0, 4900.0), (200.0, 4900.0)]))
            .with_series(Series::new(
                "EarlyTerm",
                vec![(1.0, 1800.0), (200.0, 1800.0)],
            ));
        let chart = ascii_chart(&fig, &ChartConfig::runtime());
        assert!(chart.contains("Incremental"));
        // The log axis keeps both extremes on the canvas: the top label is at
        // least the max value and the bottom label at most the min value.
        assert!(chart.contains('*') && chart.contains('+'));
    }

    #[test]
    fn constant_series_does_not_panic() {
        let fig = Figure::new("flat", "x", "y")
            .with_series(Series::new("s", vec![(0.0, 0.5), (10.0, 0.5)]));
        let chart = ascii_chart(&fig, &ChartConfig::default());
        assert!(chart.contains('*'));
    }

    #[test]
    fn single_point_series_renders() {
        let fig = Figure::new("dot", "x", "y").with_series(Series::new("s", vec![(5.0, 0.3)]));
        let chart = ascii_chart(&fig, &ChartConfig::metric());
        assert!(chart.contains('*'));
    }

    #[test]
    fn more_series_than_markers_cycles_markers() {
        let mut fig = Figure::new("many", "x", "y");
        for i in 0..8 {
            fig.push(Series::new(format!("s{i}"), vec![(0.0, i as f64 / 10.0)]));
        }
        let chart = ascii_chart(&fig, &ChartConfig::metric());
        assert!(chart.contains("s7"));
    }

    #[test]
    fn tiny_dimensions_are_clamped() {
        let config = ChartConfig {
            width: 1,
            height: 1,
            ..ChartConfig::default()
        };
        let chart = ascii_chart(&recall_figure(), &config);
        assert!(
            chart.lines().count() >= 4,
            "clamped to a usable minimum size"
        );
    }
}
