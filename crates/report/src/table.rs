//! Aligned plain-text and Markdown tables.
//!
//! The paper's Tables 6 and 8 (and the per-experiment summaries in
//! `EXPERIMENTS.md`) are small tables of numbers; this module renders them
//! with aligned columns for the terminal and as GitHub-flavoured Markdown for
//! documentation.

use serde::{Deserialize, Serialize};

/// A simple table: a header row plus data rows of equal width.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} does not match header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Builder-style [`TextTable::push_row`].
    pub fn with_row<S: Into<String>>(mut self, row: impl IntoIterator<Item = S>) -> Self {
        self.push_row(row);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.header.len()
    }

    /// The header cells.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }

    /// Renders the table with space-aligned columns separated by two spaces,
    /// with a dashed rule under the header.
    pub fn to_plain_text(&self) -> String {
        let widths = self.column_widths();
        let mut out = String::new();
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<width$}", width = w))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as GitHub-flavoured Markdown. Pipe characters inside
    /// cells are escaped.
    pub fn to_markdown(&self) -> String {
        let escape = |s: &str| s.replace('|', "\\|");
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(" | "),
        );
        out.push_str(" |\n|");
        out.push_str(
            &self
                .header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|"),
        );
        out.push_str("|\n");
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(
                &row.iter()
                    .map(|c| escape(c))
                    .collect::<Vec<_>>()
                    .join(" | "),
            );
            out.push_str(" |\n");
        }
        out
    }

    /// Renders the table as RFC-4180 CSV (header row first, `\n` record
    /// terminators, fields quoted only when they contain a comma, quote, or
    /// line break) — the machine-readable export CI archives next to the
    /// plain-text rendering.
    pub fn to_csv(&self) -> String {
        fn push_record(out: &mut String, cells: &[String]) {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                crate::export::push_csv_field(out, cell);
            }
            out.push('\n');
        }
        let mut out = String::new();
        push_record(&mut out, &self.header);
        for row in &self.rows {
            push_record(&mut out, row);
        }
        out
    }
}

/// Formats a float with the given number of decimals, trimming `-0.000` to
/// `0.000` so tables stay tidy.
pub fn fmt_f64(value: f64, decimals: usize) -> String {
    let s = format!("{value:.decimals$}");
    if s.starts_with("-0.") && s[1..].chars().all(|c| c == '0' || c == '.') {
        s[1..].to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table6_like() -> TextTable {
        TextTable::new(["", "AuthorList", "Address", "JournalTitle"])
            .with_row(["avg cluster size", "26.9", "5.8", "1.8"])
            .with_row(["# of distinct value pairs", "51,538", "80,451", "81,350"])
            .with_row(["variant value pairs %", "26.5%", "18%", "74%"])
    }

    #[test]
    fn plain_text_aligns_columns() {
        let text = table6_like().to_plain_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        // The widest cell in column 0 sets the column width: every data row
        // starts its second column at the same offset.
        let offset = lines[3].find("51,538").unwrap();
        assert_eq!(lines[4].find("26.5%").unwrap(), offset);
        assert_eq!(lines[2].find("26.9").unwrap(), offset);
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let md = table6_like().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert!(lines[0].starts_with("| "));
        assert_eq!(lines[1], "|---|---|---|---|");
        assert_eq!(lines.len(), 5);
        assert!(lines[4].contains("74%"));
    }

    #[test]
    fn markdown_escapes_pipes() {
        let t = TextTable::new(["expr"]).with_row(["a | b"]);
        assert!(t.to_markdown().contains("a \\| b"));
    }

    #[test]
    fn csv_export_quotes_only_when_needed() {
        let csv = table6_like().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], ",AuthorList,Address,JournalTitle");
        assert_eq!(
            lines[2],
            "# of distinct value pairs,\"51,538\",\"80,451\",\"81,350\""
        );
        let tricky = TextTable::new(["a", "b"]).with_row(["say \"hi\"", "x\ny"]);
        assert_eq!(tricky.to_csv(), "a,b\n\"say \"\"hi\"\"\",\"x\ny\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn accessors() {
        let t = table6_like();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 4);
        assert_eq!(t.header()[1], "AuthorList");
        assert_eq!(t.rows()[0][0], "avg cluster size");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(["x", "y"]);
        let text = t.to_plain_text();
        assert_eq!(text.lines().count(), 2);
        let md = t.to_markdown();
        assert_eq!(md.lines().count(), 2);
    }

    #[test]
    fn unicode_width_is_by_chars_not_bytes() {
        let t = TextTable::new(["café", "x"]).with_row(["ab", "y"]);
        let text = t.to_plain_text();
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("café"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.754999, 3), "0.755");
        assert_eq!(fmt_f64(-0.0001, 3), "0.000");
        assert_eq!(fmt_f64(-0.5, 2), "-0.50");
        assert_eq!(fmt_f64(1.0, 0), "1");
    }
}
