//! Machine-readable exports of figures.
//!
//! The paper's plots were produced with gnuplot; [`gnuplot_dat`] writes the
//! classic whitespace-separated block-per-series `.dat` format so the
//! reproduced curves can be re-plotted with the same tooling, and
//! [`csv_export`] writes one wide CSV with a column per series for
//! spreadsheet users.

use crate::Figure;
use std::collections::BTreeSet;

/// Appends one CSV field to `out`, quoting (with doubled-quote escapes) only
/// when the field contains a comma, quote, or line break — the single quoting
/// rule shared by every CSV export in this crate.
pub(crate) fn push_csv_field(out: &mut String, field: &str) {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Serializes a figure as a gnuplot-friendly `.dat` text: one block per
/// series (`# name` comment, `x y` rows, blank line between blocks).
pub fn gnuplot_dat(figure: &Figure) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", figure.title));
    out.push_str(&format!("# x: {}  y: {}\n", figure.x_label, figure.y_label));
    for (i, series) in figure.series.iter().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push('\n');
        }
        out.push_str(&format!("# series: {}\n", series.name));
        for &(x, y) in &series.points {
            out.push_str(&format!("{x} {y}\n"));
        }
    }
    out
}

/// Serializes a figure as a wide CSV: the first column is `x`, then one
/// column per series. Series sampled at different x values are merged on the
/// union of x values; missing samples are left empty.
pub fn csv_export(figure: &Figure) -> String {
    let mut out = String::new();
    out.push('x');
    for series in &figure.series {
        out.push(',');
        push_csv_field(&mut out, &series.name);
    }
    out.push('\n');

    // The union of x values across series, in ascending order. Using the bit
    // pattern keeps f64 usable as a BTreeSet key; points are finite in
    // practice (experiment budgets and runtimes).
    let mut xs: BTreeSet<u64> = BTreeSet::new();
    for series in &figure.series {
        for &(x, _) in &series.points {
            if x.is_finite() {
                xs.insert(x.to_bits());
            }
        }
    }
    let xs: Vec<f64> = {
        let mut v: Vec<f64> = xs.into_iter().map(f64::from_bits).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    };
    for x in xs {
        out.push_str(&format!("{x}"));
        for series in &figure.series {
            out.push(',');
            if let Some(&(_, y)) = series
                .points
                .iter()
                .find(|&&(px, _)| (px - x).abs() < f64::EPSILON)
            {
                out.push_str(&format!("{y}"));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Series;

    fn figure() -> Figure {
        Figure::new("Figure 7(b)", "# of groups confirmed", "recall")
            .with_series(Series::new(
                "Group",
                vec![(0.0, 0.0), (50.0, 0.6), (100.0, 0.75)],
            ))
            .with_series(Series::new("Trifacta", vec![(0.0, 0.55), (100.0, 0.55)]))
    }

    #[test]
    fn gnuplot_blocks_per_series() {
        let dat = gnuplot_dat(&figure());
        assert!(dat.starts_with("# Figure 7(b)\n"));
        assert!(dat.contains("# series: Group\n0 0\n50 0.6\n100 0.75\n"));
        assert!(dat.contains("\n\n# series: Trifacta\n"));
        // Exactly one blank-line separator between the two blocks.
        assert_eq!(dat.matches("\n\n").count(), 1);
    }

    #[test]
    fn csv_merges_x_values_across_series() {
        let csv = csv_export(&figure());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,Group,Trifacta");
        assert_eq!(lines[1], "0,0,0.55");
        // x=50 only exists in the Group series: the Trifacta cell is empty.
        assert_eq!(lines[2], "50,0.6,");
        assert_eq!(lines[3], "100,0.75,0.55");
    }

    #[test]
    fn csv_quotes_series_names_with_commas() {
        let fig = Figure::new("t", "x", "y")
            .with_series(Series::new("a,b", vec![(1.0, 2.0)]))
            .with_series(Series::new("say \"hi\"", vec![(1.0, 3.0)]));
        let csv = csv_export(&fig);
        assert!(csv.lines().next().unwrap().contains("\"a,b\""));
        assert!(csv.lines().next().unwrap().contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn empty_figure_exports_are_header_only() {
        let fig = Figure::new("empty", "x", "y");
        assert_eq!(csv_export(&fig), "x\n");
        let dat = gnuplot_dat(&fig);
        assert_eq!(dat.lines().count(), 2);
    }

    #[test]
    fn non_finite_x_values_are_skipped_in_csv() {
        let fig = Figure::new("t", "x", "y")
            .with_series(Series::new("s", vec![(f64::NAN, 1.0), (1.0, 2.0)]));
        let csv = csv_export(&fig);
        assert_eq!(
            csv.lines().count(),
            2,
            "header plus the single finite point"
        );
    }
}
