//! Property-based tests for the reporting primitives: rendering must never
//! panic, must be deterministic, and the exports must stay structurally
//! consistent with the figure for arbitrary (finite) data.

use ec_report::{ascii_chart, csv_export, gnuplot_dat, ChartConfig, Figure, Series, TextTable};
use proptest::prelude::*;

fn finite_point() -> impl Strategy<Value = (f64, f64)> {
    (
        prop_oneof![Just(0.0), -1000.0..1000.0f64],
        prop_oneof![Just(0.0), -1000.0..1000.0f64],
    )
}

fn arb_series() -> impl Strategy<Value = Series> {
    (
        "[a-zA-Z ]{1,12}",
        proptest::collection::vec(finite_point(), 0..20),
    )
        .prop_map(|(name, points)| Series::new(name, points))
}

fn arb_figure() -> impl Strategy<Value = Figure> {
    proptest::collection::vec(arb_series(), 0..5).prop_map(|series| {
        let mut fig = Figure::new("prop figure", "x", "y");
        for s in series {
            fig.push(s);
        }
        fig
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ascii_chart_is_total_and_deterministic(fig in arb_figure()) {
        let a = ascii_chart(&fig, &ChartConfig::default());
        let b = ascii_chart(&fig, &ChartConfig::default());
        prop_assert_eq!(&a, &b);
        prop_assert!(a.contains("prop figure"));
        // Every plot row has the configured width.
        for line in a.lines().filter(|l| l.contains('|')) {
            let body = line.split('|').nth(1).unwrap();
            prop_assert_eq!(body.chars().count(), ChartConfig::default().width);
        }
    }

    #[test]
    fn metric_and_runtime_configs_never_panic(fig in arb_figure()) {
        let _ = ascii_chart(&fig, &ChartConfig::metric());
        let _ = ascii_chart(&fig, &ChartConfig::runtime());
    }

    #[test]
    fn csv_export_has_one_row_per_distinct_x(fig in arb_figure()) {
        let csv = csv_export(&fig);
        let mut xs: Vec<u64> = fig
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x.to_bits()))
            .collect();
        xs.sort_unstable();
        xs.dedup();
        prop_assert_eq!(csv.lines().count(), 1 + xs.len());
        // Every data line has exactly one cell per series plus the x cell.
        for line in csv.lines().skip(1) {
            prop_assert_eq!(line.split(',').count(), 1 + fig.series.len());
        }
    }

    #[test]
    fn gnuplot_export_preserves_every_point(fig in arb_figure()) {
        let dat = gnuplot_dat(&fig);
        let data_lines = dat.lines().filter(|l| !l.is_empty() && !l.starts_with('#')).count();
        prop_assert_eq!(data_lines, fig.num_points());
    }

    #[test]
    fn interpolation_stays_within_the_y_range(
        points in proptest::collection::vec((0.0..100.0f64, -5.0..5.0f64), 2..12),
        x in -10.0..110.0f64,
    ) {
        let series = Series::new("s", points);
        let (lo, hi) = series.y_range().unwrap();
        let y = series.y_at(x).unwrap();
        prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9, "{y} outside [{lo}, {hi}]");
    }

    #[test]
    fn tables_render_for_arbitrary_cell_text(
        header in proptest::collection::vec("[^|\r\n]{0,12}", 1..5),
        rows in proptest::collection::vec(proptest::collection::vec("[^\r\n]{0,16}", 1..5), 0..6),
    ) {
        let width = header.len();
        let mut table = TextTable::new(header);
        for row in rows {
            let mut row = row;
            row.resize(width, String::new());
            table.push_row(row);
        }
        let text = table.to_plain_text();
        prop_assert!(text.lines().count() >= 2);
        let md = table.to_markdown();
        prop_assert_eq!(md.lines().count(), 2 + table.num_rows());
        // Markdown rows never contain unescaped cell pipes beyond the column
        // separators: every line has exactly width + 1 unescaped pipes.
        for line in md.lines() {
            let unescaped = line.replace("\\|", "");
            prop_assert_eq!(unescaped.matches('|').count(), width + 1);
        }
    }
}
