//! # ec-metrics — evaluation metrics
//!
//! The paper measures standardization quality on a sample of labelled value
//! pairs (Table 7): a *variant* pair that becomes identical after updating the
//! clusters is a true positive, a variant pair that stays different is a false
//! negative, a *conflict* pair that becomes identical is a false positive, and
//! a conflict pair that stays different is a true negative. From these counts
//! it reports precision, recall and the Matthews correlation coefficient
//! (MCC), the latter because the two classes are heavily imbalanced.
//!
//! This crate computes those counts against a column's before/after values and
//! also provides the golden-record precision used by Table 8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ec_data::LabeledPair;
use serde::{Deserialize, Serialize};

/// Confusion counts for the standardization task (Table 7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionCounts {
    /// Variant pairs that became identical.
    pub tp: usize,
    /// Conflict pairs that became identical.
    pub fp: usize,
    /// Variant pairs that remained non-identical.
    pub fn_: usize,
    /// Conflict pairs that remained non-identical.
    pub tn: usize,
}

impl ConfusionCounts {
    /// Precision `TP / (TP + FP)`; defined as 1.0 when no pair became
    /// identical (no positive prediction was made, so none was wrong).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `TP / (TP + FN)`; 0.0 when there are no variant pairs.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// The Matthews correlation coefficient, in `[-1, 1]`; 0.0 when any
    /// marginal is empty (the usual convention).
    pub fn mcc(&self) -> f64 {
        let tp = self.tp as f64;
        let fp = self.fp as f64;
        let fn_ = self.fn_ as f64;
        let tn = self.tn as f64;
        let denom = ((tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_)).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            (tp * tn - fp * fn_) / denom
        }
    }

    /// Total number of evaluated pairs.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Merges two confusion counts.
    pub fn merge(&self, other: &ConfusionCounts) -> ConfusionCounts {
        ConfusionCounts {
            tp: self.tp + other.tp,
            fp: self.fp + other.fp,
            fn_: self.fn_ + other.fn_,
            tn: self.tn + other.tn,
        }
    }
}

/// Evaluates a standardization run: for every sampled labelled pair, checks
/// whether the two cells hold identical values in `updated` (the column values
/// after applying approved groups, grouped by cluster as returned by
/// `Dataset::column_values`).
pub fn evaluate_standardization(
    sample: &[LabeledPair],
    updated: &[Vec<String>],
) -> ConfusionCounts {
    let mut counts = ConfusionCounts::default();
    for pair in sample {
        let cluster = &updated[pair.cluster];
        let identical = cluster[pair.row_a] == cluster[pair.row_b];
        match (pair.is_variant, identical) {
            (true, true) => counts.tp += 1,
            (true, false) => counts.fn_ += 1,
            (false, true) => counts.fp += 1,
            (false, false) => counts.tn += 1,
        }
    }
    counts
}

/// Golden-record precision (Table 8): the fraction of clusters whose produced
/// golden value matches the ground-truth golden value. `None` produced values
/// (e.g. majority-consensus ties) count as misses, mirroring the paper's
/// treatment of clusters where MC "could not produce a golden value".
pub fn golden_record_precision(produced: &[Option<String>], truth: &[String]) -> f64 {
    assert_eq!(produced.len(), truth.len(), "cluster count mismatch");
    if produced.is_empty() {
        return 0.0;
    }
    let correct = produced
        .iter()
        .zip(truth)
        .filter(|(p, t)| p.as_deref() == Some(t.as_str()))
        .count();
    correct as f64 / produced.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_recall_mcc_basics() {
        let c = ConfusionCounts {
            tp: 8,
            fp: 2,
            fn_: 2,
            tn: 88,
        };
        assert!((c.precision() - 0.8).abs() < 1e-9);
        assert!((c.recall() - 0.8).abs() < 1e-9);
        assert!(c.mcc() > 0.7 && c.mcc() < 0.85);
        assert_eq!(c.total(), 100);
    }

    #[test]
    fn degenerate_cases() {
        let nothing = ConfusionCounts::default();
        assert_eq!(nothing.precision(), 1.0);
        assert_eq!(nothing.recall(), 0.0);
        assert_eq!(nothing.mcc(), 0.0);

        let perfect = ConfusionCounts {
            tp: 10,
            fp: 0,
            fn_: 0,
            tn: 10,
        };
        assert_eq!(perfect.precision(), 1.0);
        assert_eq!(perfect.recall(), 1.0);
        assert!((perfect.mcc() - 1.0).abs() < 1e-9);

        let inverted = ConfusionCounts {
            tp: 0,
            fp: 10,
            fn_: 10,
            tn: 0,
        };
        assert!((inverted.mcc() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_componentwise() {
        let a = ConfusionCounts {
            tp: 1,
            fp: 2,
            fn_: 3,
            tn: 4,
        };
        let b = ConfusionCounts {
            tp: 10,
            fp: 20,
            fn_: 30,
            tn: 40,
        };
        assert_eq!(
            a.merge(&b),
            ConfusionCounts {
                tp: 11,
                fp: 22,
                fn_: 33,
                tn: 44
            }
        );
    }

    #[test]
    fn evaluation_against_updated_column() {
        // Cluster 0: a variant pair that gets standardized, cluster 1: a
        // conflict pair that stays apart, cluster 2: a variant pair missed.
        let sample = vec![
            LabeledPair {
                cluster: 0,
                row_a: 0,
                row_b: 1,
                is_variant: true,
            },
            LabeledPair {
                cluster: 1,
                row_a: 0,
                row_b: 1,
                is_variant: false,
            },
            LabeledPair {
                cluster: 2,
                row_a: 0,
                row_b: 1,
                is_variant: true,
            },
        ];
        let updated = vec![
            vec!["Mary Lee".to_string(), "Mary Lee".to_string()],
            vec!["5th St".to_string(), "3rd Ave".to_string()],
            vec!["J. Smith".to_string(), "James Smith".to_string()],
        ];
        let c = evaluate_standardization(&sample, &updated);
        assert_eq!(
            c,
            ConfusionCounts {
                tp: 1,
                fp: 0,
                fn_: 1,
                tn: 1
            }
        );
        assert!((c.recall() - 0.5).abs() < 1e-9);
        assert_eq!(c.precision(), 1.0);
    }

    #[test]
    fn false_positives_lower_precision() {
        let sample = vec![
            LabeledPair {
                cluster: 0,
                row_a: 0,
                row_b: 1,
                is_variant: false,
            },
            LabeledPair {
                cluster: 0,
                row_a: 0,
                row_b: 2,
                is_variant: true,
            },
        ];
        let updated = vec![vec!["x".to_string(), "x".to_string(), "x".to_string()]];
        let c = evaluate_standardization(&sample, &updated);
        assert_eq!(c.fp, 1);
        assert_eq!(c.tp, 1);
        assert!((c.precision() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn golden_record_precision_counts_matches_and_treats_none_as_miss() {
        let produced = vec![
            Some("a".to_string()),
            None,
            Some("wrong".to_string()),
            Some("d".to_string()),
        ];
        let truth = vec![
            "a".to_string(),
            "b".to_string(),
            "c".to_string(),
            "d".to_string(),
        ];
        assert!((golden_record_precision(&produced, &truth) - 0.5).abs() < 1e-9);
        assert_eq!(golden_record_precision(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "cluster count mismatch")]
    fn golden_record_precision_shape_mismatch_panics() {
        let _ = golden_record_precision(&[None], &[]);
    }
}
