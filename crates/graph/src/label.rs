//! Label interning.
//!
//! Edge labels of transformation graphs are string functions. The same
//! function (e.g. `SubStr(MatchPos(TC,1,B), MatchPos(Tl,1,E))` or
//! `ConstantStr("St")`) appears on edges of many graphs, and the pivot-path
//! search compares paths and intersects inverted lists keyed by labels. To
//! make those operations cheap, string functions are hash-consed into dense
//! [`LabelId`]s by a [`LabelInterner`] that is shared by all graphs built for
//! one collection of candidate replacements.

use ec_dsl::StringFn;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A dense identifier for an interned string function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LabelId(pub u32);

impl LabelId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A hash-consing table mapping string functions to dense [`LabelId`]s.
#[derive(Debug, Default, Clone)]
pub struct LabelInterner {
    by_fn: HashMap<StringFn, LabelId>,
    by_id: Vec<StringFn>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `f`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, f: StringFn) -> LabelId {
        if let Some(&id) = self.by_fn.get(&f) {
            return id;
        }
        let id = LabelId(self.by_id.len() as u32);
        self.by_id.push(f.clone());
        self.by_fn.insert(f, id);
        id
    }

    /// Looks up an already-interned function without inserting.
    pub fn get(&self, f: &StringFn) -> Option<LabelId> {
        self.by_fn.get(f).copied()
    }

    /// Resolves an id back to its string function.
    ///
    /// # Panics
    /// Panics if the id was not produced by this interner.
    pub fn resolve(&self, id: LabelId) -> &StringFn {
        &self.by_id[id.index()]
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterates over all interned `(id, function)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &StringFn)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, f)| (LabelId(i as u32), f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_dsl::{Dir, PositionFn, Term};

    #[test]
    fn interning_is_idempotent() {
        let mut interner = LabelInterner::new();
        let f = StringFn::constant("St");
        let a = interner.intern(f.clone());
        let b = interner.intern(f.clone());
        assert_eq!(a, b);
        assert_eq!(interner.len(), 1);
        assert_eq!(interner.resolve(a), &f);
    }

    #[test]
    fn distinct_functions_get_distinct_ids() {
        let mut interner = LabelInterner::new();
        let a = interner.intern(StringFn::constant("a"));
        let b = interner.intern(StringFn::constant("b"));
        let c = interner.intern(StringFn::sub_str(
            PositionFn::match_pos(Term::Upper, 1, Dir::Begin),
            PositionFn::match_pos(Term::Upper, 1, Dir::End),
        ));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(interner.len(), 3);
    }

    #[test]
    fn get_does_not_insert() {
        let mut interner = LabelInterner::new();
        assert!(interner.get(&StringFn::constant("x")).is_none());
        assert!(interner.is_empty());
        let id = interner.intern(StringFn::constant("x"));
        assert_eq!(interner.get(&StringFn::constant("x")), Some(id));
    }

    #[test]
    fn iter_yields_all_labels_in_id_order() {
        let mut interner = LabelInterner::new();
        let ids: Vec<LabelId> = ["a", "b", "c"]
            .iter()
            .map(|s| interner.intern(StringFn::constant(*s)))
            .collect();
        let collected: Vec<LabelId> = interner.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, collected);
    }
}
