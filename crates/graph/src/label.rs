//! Label interning.
//!
//! Edge labels of transformation graphs are string functions. The same
//! function (e.g. `SubStr(MatchPos(TC,1,B), MatchPos(Tl,1,E))` or
//! `ConstantStr("St")`) appears on edges of many graphs, and the pivot-path
//! search compares paths and intersects inverted lists keyed by labels. To
//! make those operations cheap, string functions are hash-consed into dense
//! [`LabelId`]s by a [`LabelInterner`] that is shared by all graphs built for
//! one collection of candidate replacements.

use ec_dsl::StringFn;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// FNV-1a 64 as the interner's hasher. The label map sees hundreds of
/// thousands of small structural keys on both the graph-build and the
/// artifact-load path, where SipHash's per-key setup cost dominates the
/// actual mixing. Hash flooding is not a concern here: keys derive from the
/// dataset being consolidated, not from input crafted against this map.
#[derive(Debug, Clone)]
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[derive(Debug, Default, Clone)]
struct FnvBuild;

impl BuildHasher for FnvBuild {
    type Hasher = Fnv1a;

    fn build_hasher(&self) -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

/// A dense identifier for an interned string function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LabelId(pub u32);

impl LabelId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A hash-consing table mapping string functions to dense [`LabelId`]s.
#[derive(Debug, Default, Clone)]
pub struct LabelInterner {
    by_fn: HashMap<StringFn, LabelId, FnvBuild>,
    by_id: Vec<StringFn>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassembles an interner from functions listed in id order — the
    /// artifact-load path, which knows every label up front and would
    /// otherwise pay one incrementally-growing map insertion per label.
    /// Returns `None` if `fns` contains a duplicate.
    pub fn from_ordered(fns: Vec<StringFn>) -> Option<Self> {
        let mut by_fn = HashMap::with_capacity_and_hasher(fns.len(), FnvBuild);
        for (i, f) in fns.iter().enumerate() {
            if by_fn.insert(f.clone(), LabelId(i as u32)).is_some() {
                return None;
            }
        }
        Some(LabelInterner { by_fn, by_id: fns })
    }

    /// Interns `f`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, f: StringFn) -> LabelId {
        if let Some(&id) = self.by_fn.get(&f) {
            return id;
        }
        let id = LabelId(self.by_id.len() as u32);
        self.by_id.push(f.clone());
        self.by_fn.insert(f, id);
        id
    }

    /// Looks up an already-interned function without inserting.
    pub fn get(&self, f: &StringFn) -> Option<LabelId> {
        self.by_fn.get(f).copied()
    }

    /// Resolves an id back to its string function.
    ///
    /// # Panics
    /// Panics if the id was not produced by this interner.
    pub fn resolve(&self, id: LabelId) -> &StringFn {
        &self.by_id[id.index()]
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterates over all interned `(id, function)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &StringFn)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, f)| (LabelId(i as u32), f))
    }
}

/// The label set of one edge.
///
/// Almost three quarters of real edges carry a single label and most of the
/// rest only a handful, while artifact loads and graph builds materialize
/// hundreds of thousands of edges — one heap allocation per edge dominated
/// those paths. Lists of up to [`LabelList::INLINE`] ids therefore live
/// inline (at no size cost: the inline variant is no larger than a spilled
/// `Vec`), and longer lists spill to the heap. The representation is
/// private; the type dereferences to `[LabelId]` everywhere it is read.
#[derive(Debug, Clone)]
pub struct LabelList(Repr);

#[derive(Debug, Clone)]
enum Repr {
    Inline(u8, [LabelId; LabelList::INLINE]),
    Heap(Vec<LabelId>),
}

impl LabelList {
    /// Longest list stored without a heap allocation.
    pub const INLINE: usize = 6;

    /// An empty list.
    pub fn new() -> Self {
        LabelList(Repr::Inline(0, [LabelId(0); Self::INLINE]))
    }

    /// An empty list with room for `n` labels, taking its one heap
    /// allocation up front when `n` exceeds the inline capacity.
    pub fn with_capacity(n: usize) -> Self {
        if n <= Self::INLINE {
            Self::new()
        } else {
            LabelList(Repr::Heap(Vec::with_capacity(n)))
        }
    }

    /// Appends `label`, spilling to the heap when the inline buffer is full.
    pub fn push(&mut self, label: LabelId) {
        match &mut self.0 {
            Repr::Inline(len, buf) => {
                if (*len as usize) < Self::INLINE {
                    buf[*len as usize] = label;
                    *len += 1;
                } else {
                    let mut spilled = Vec::with_capacity(Self::INLINE * 2);
                    spilled.extend_from_slice(&buf[..]);
                    spilled.push(label);
                    self.0 = Repr::Heap(spilled);
                }
            }
            Repr::Heap(v) => v.push(label),
        }
    }

    /// Drops adjacent duplicates, like [`Vec::dedup`].
    pub fn dedup(&mut self) {
        match &mut self.0 {
            Repr::Inline(len, buf) => {
                let mut kept = 0usize;
                for i in 0..*len as usize {
                    if kept == 0 || buf[kept - 1] != buf[i] {
                        buf[kept] = buf[i];
                        kept += 1;
                    }
                }
                *len = kept as u8;
            }
            Repr::Heap(v) => v.dedup(),
        }
    }

    fn as_slice(&self) -> &[LabelId] {
        match &self.0 {
            Repr::Inline(len, buf) => &buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [LabelId] {
        match &mut self.0 {
            Repr::Inline(len, buf) => &mut buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }
}

impl Extend<LabelId> for LabelList {
    fn extend<I: IntoIterator<Item = LabelId>>(&mut self, iter: I) {
        match &mut self.0 {
            // Heap lists take `Vec::extend`'s specialized bulk path; inline
            // lists push one by one (at most INLINE items before a spill).
            Repr::Heap(v) => v.extend(iter),
            Repr::Inline(..) => {
                for label in iter {
                    self.push(label);
                }
            }
        }
    }
}

impl Default for LabelList {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<LabelId>> for LabelList {
    fn from(v: Vec<LabelId>) -> Self {
        if v.len() <= Self::INLINE {
            let mut list = LabelList::new();
            for &l in &v {
                list.push(l);
            }
            list
        } else {
            LabelList(Repr::Heap(v))
        }
    }
}

impl std::ops::Deref for LabelList {
    type Target = [LabelId];

    fn deref(&self) -> &[LabelId] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for LabelList {
    fn deref_mut(&mut self) -> &mut [LabelId] {
        self.as_mut_slice()
    }
}

impl PartialEq for LabelList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for LabelList {}

impl<'a> IntoIterator for &'a LabelList {
    type Item = &'a LabelId;
    type IntoIter = std::slice::Iter<'a, LabelId>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<'a> IntoIterator for &'a mut LabelList {
    type Item = &'a mut LabelId;
    type IntoIter = std::slice::IterMut<'a, LabelId>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_mut_slice().iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_dsl::{Dir, PositionFn, Term};

    #[test]
    fn interning_is_idempotent() {
        let mut interner = LabelInterner::new();
        let f = StringFn::constant("St");
        let a = interner.intern(f.clone());
        let b = interner.intern(f.clone());
        assert_eq!(a, b);
        assert_eq!(interner.len(), 1);
        assert_eq!(interner.resolve(a), &f);
    }

    #[test]
    fn distinct_functions_get_distinct_ids() {
        let mut interner = LabelInterner::new();
        let a = interner.intern(StringFn::constant("a"));
        let b = interner.intern(StringFn::constant("b"));
        let c = interner.intern(StringFn::sub_str(
            PositionFn::match_pos(Term::Upper, 1, Dir::Begin),
            PositionFn::match_pos(Term::Upper, 1, Dir::End),
        ));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(interner.len(), 3);
    }

    #[test]
    fn get_does_not_insert() {
        let mut interner = LabelInterner::new();
        assert!(interner.get(&StringFn::constant("x")).is_none());
        assert!(interner.is_empty());
        let id = interner.intern(StringFn::constant("x"));
        assert_eq!(interner.get(&StringFn::constant("x")), Some(id));
    }

    #[test]
    fn from_ordered_matches_interning_and_rejects_duplicates() {
        let fns = vec![
            StringFn::constant("a"),
            StringFn::constant("b"),
            StringFn::sub_str(
                PositionFn::match_pos(Term::Upper, 1, Dir::Begin),
                PositionFn::match_pos(Term::Upper, 1, Dir::End),
            ),
        ];
        let interner = LabelInterner::from_ordered(fns.clone()).unwrap();
        assert_eq!(interner.len(), fns.len());
        for (i, f) in fns.iter().enumerate() {
            assert_eq!(interner.get(f), Some(LabelId(i as u32)));
            assert_eq!(interner.resolve(LabelId(i as u32)), f);
        }

        let dup = vec![
            StringFn::constant("a"),
            StringFn::constant("b"),
            StringFn::constant("a"),
        ];
        assert!(LabelInterner::from_ordered(dup).is_none());
    }

    #[test]
    fn label_list_spills_and_dedups_like_a_vec() {
        // Stays inline through INLINE pushes, spills on the next one, and
        // always reads back like the equivalent Vec.
        let mut list = LabelList::new();
        let mut reference = Vec::new();
        for i in 0..(LabelList::INLINE as u32 + 3) {
            list.push(LabelId(i / 2)); // adjacent duplicates
            reference.push(LabelId(i / 2));
            assert_eq!(&list[..], &reference[..]);
        }
        reference.dedup();
        list.dedup();
        assert_eq!(&list[..], &reference[..]);
        assert_eq!(list, LabelList::from(reference.clone()));

        let mut inline = LabelList::from(vec![LabelId(7), LabelId(7), LabelId(3)]);
        inline.dedup();
        assert_eq!(&inline[..], &[LabelId(7), LabelId(3)]);
        for l in inline.iter_mut() {
            *l = LabelId(l.0 + 1);
        }
        assert_eq!(&inline[..], &[LabelId(8), LabelId(4)]);
        assert!(LabelList::with_capacity(64).is_empty());
    }

    #[test]
    fn iter_yields_all_labels_in_id_order() {
        let mut interner = LabelInterner::new();
        let ids: Vec<LabelId> = ["a", "b", "c"]
            .iter()
            .map(|s| interner.intern(StringFn::constant(*s)))
            .collect();
        let collected: Vec<LabelId> = interner.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, collected);
    }
}
