//! # ec-graph — transformation graphs
//!
//! Given a *candidate replacement* `s → t` (two non-identical values drawn
//! from the same cluster), every transformation program consistent with the
//! replacement can be encoded in a single directed acyclic graph — the
//! *transformation graph* of Definition 2 in the paper. Nodes are positions of
//! the output string `t`, an edge `(i, j)` corresponds to the substring
//! `t[i..j)`, and the edge's labels are the string functions that produce that
//! substring when applied to `s`. A path from the first to the last node whose
//! edges each contribute one label is a *transformation path*, and corresponds
//! one-to-one to a consistent program (Theorem 4.2).
//!
//! This crate provides:
//!
//! * [`Replacement`] — a candidate replacement `lhs → rhs`;
//! * [`LabelInterner`] / [`LabelId`] — hash-consing of string functions so
//!   that graphs, the inverted index and path comparison work on integers;
//! * [`TransformationGraph`] and [`GraphBuilder`] — the graph itself and the
//!   construction algorithm of Appendix C (with the affix labels of
//!   Appendix D and the static-order pruning of Appendix E);
//! * [`Structure`] / [`structure_of`] — the character-class structure
//!   signatures of Section 7.2 used to pre-partition replacements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod label;
pub mod parallel;
pub mod pool;
pub mod replacement;
pub mod structure;

pub use builder::{ConstantPolicy, Edge, GraphBuilder, GraphConfig, TransformationGraph};
pub use label::{LabelId, LabelInterner, LabelList};
pub use parallel::Parallelism;
pub use pool::{PoolTask, WorkerPool};
pub use replacement::Replacement;
pub use structure::{structure_of, ReplacementStructure, Structure, StructureToken};
