//! A shared work-stealing worker pool for the sharded stages and the server.
//!
//! Before this module existed every sharded stage (candidate generation,
//! graph preparation, pivot-path search) spawned *scoped* threads per batch —
//! cheap for one-shot CLI runs, wasteful for long-lived processes like
//! `ec serve`, where the incremental grouper re-spawned a handful of threads
//! for every speculative batch of every request. [`WorkerPool`] keeps a fixed
//! set of long-lived workers instead:
//!
//! * an **injected queue** receives jobs submitted from outside the pool;
//! * each worker owns a **deque** for jobs submitted *from* that worker
//!   (nested fan-out), which idle workers **steal** from;
//! * jobs are **panic-isolated**: a panicking job never kills its worker —
//!   batch panics are captured and re-raised in the submitting thread,
//!   detached-job panics are counted and dropped.
//!
//! Batches ([`WorkerPool::run`]) block the submitting thread, but the
//! submitter *participates*: it claims unclaimed tasks of its own batch while
//! waiting, so a batch submitted from inside a pool worker (a server
//! connection handler fanning out a pivot-path search, say) can always make
//! progress even when every worker is busy — the pool is deadlock-free by
//! construction.
//!
//! Because every sharded stage is bit-identical for *any* thread count, the
//! number of pool workers never affects results; it only trades wall-clock
//! time for cores. Stages therefore share one process-wide pool ([`shared`]),
//! sized on first use (`ec serve --threads` pins it via [`configure_shared`]).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::time::Instant;

/// A detached job: runs once on some worker, result discarded.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Registry handles for the pool's runtime signals — exactly the ones that
/// would have caught the PR 6 LIFO starvation in minutes instead of a day:
/// queue depth, steal traffic, submit-path split, and how long jobs wait
/// versus run.
struct PoolMetrics {
    /// Jobs currently sitting in the injector or a worker deque.
    queue_depth: ec_obs::Gauge,
    /// Jobs taken from another worker's deque.
    steals: ec_obs::Counter,
    /// Jobs pushed onto the submitting worker's own LIFO deque.
    submit_lifo: ec_obs::Counter,
    /// Jobs pushed onto the shared FIFO injector.
    submit_fifo: ec_obs::Counter,
    /// Time from submit to dequeue.
    queue_seconds: ec_obs::Histogram,
    /// Time a job spends executing on its worker.
    wall_seconds: ec_obs::Histogram,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        queue_depth: ec_obs::gauge(
            "ec_pool_queue_depth",
            "Jobs waiting in the shared pool's injector and worker deques.",
        ),
        steals: ec_obs::counter(
            "ec_pool_steals_total",
            "Jobs taken from another worker's deque.",
        ),
        submit_lifo: ec_obs::counter_with(
            "ec_pool_submit_total",
            "Jobs submitted to the pool, by queue path.",
            &[("path", "lifo")],
        ),
        submit_fifo: ec_obs::counter_with(
            "ec_pool_submit_total",
            "Jobs submitted to the pool, by queue path.",
            &[("path", "fifo")],
        ),
        queue_seconds: ec_obs::histogram(
            "ec_pool_task_queue_seconds",
            "Time pool jobs wait between submit and dequeue.",
            ec_obs::Unit::Seconds,
            ec_obs::LATENCY_BUCKETS_US,
        ),
        wall_seconds: ec_obs::histogram(
            "ec_pool_task_wall_seconds",
            "Time pool jobs spend executing on a worker.",
            ec_obs::Unit::Seconds,
            ec_obs::LATENCY_BUCKETS_US,
        ),
    })
}

/// A queued job plus its submit time (for the queue-wait histogram).
struct Queued {
    job: Job,
    submitted: Instant,
}

impl Queued {
    fn new(job: Job) -> Self {
        Queued {
            job,
            submitted: Instant::now(),
        }
    }
}

/// One task of a [`WorkerPool::run`] batch.
pub type PoolTask<R> = Box<dyn FnOnce() -> R + Send + 'static>;

/// Queues plus the sleep/wake coordination shared by all workers of a pool.
struct PoolShared {
    /// Jobs submitted from threads outside the pool.
    injector: Mutex<VecDeque<Queued>>,
    /// Per-worker deques for jobs submitted from inside the pool; idle
    /// workers steal from the front.
    worker_queues: Vec<Mutex<VecDeque<Queued>>>,
    /// Guards the wake generation: bumped (under the lock) on every push so a
    /// worker that scanned all queues empty can detect a concurrent push and
    /// re-scan instead of sleeping through it.
    generation: Mutex<u64>,
    /// Signalled (under `generation`) on every push and on shutdown.
    wake: Condvar,
    shutdown: AtomicBool,
    /// Detached jobs whose panic was swallowed (observability only).
    detached_panics: AtomicUsize,
    /// Jobs executed per worker (used by the fairness tests).
    executed: Vec<AtomicUsize>,
}

std::thread_local! {
    /// Which pool (and worker slot) the current thread belongs to, if any.
    static WORKER: std::cell::RefCell<Option<(Weak<PoolShared>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

impl PoolShared {
    /// Pushes a job: onto the current worker's own deque when called from
    /// inside this pool, onto the injector otherwise; then wakes sleepers.
    fn push(self: &Arc<Self>, job: Job) {
        let own_slot = WORKER.with(|w| {
            w.borrow().as_ref().and_then(|(pool, idx)| {
                let same = pool
                    .upgrade()
                    .is_some_and(|strong| Arc::ptr_eq(&strong, self));
                same.then_some(*idx)
            })
        });
        let metrics = pool_metrics();
        match own_slot {
            Some(idx) => {
                metrics.submit_lifo.inc();
                self.worker_queues[idx]
                    .lock()
                    .unwrap()
                    .push_back(Queued::new(job));
            }
            None => {
                metrics.submit_fifo.inc();
                self.injector.lock().unwrap().push_back(Queued::new(job));
            }
        }
        metrics.queue_depth.add(1);
        let mut generation = self.generation.lock().unwrap();
        *generation += 1;
        self.wake.notify_all();
    }

    /// Pushes a job onto the shared injector regardless of the calling
    /// thread; then wakes sleepers. The own-deque shortcut in
    /// [`PoolShared::push`] is wrong for a job that re-submits *itself*
    /// (a server connection yielding its worker): the deque is popped
    /// LIFO, so the worker would take the same job straight back and
    /// starve everything queued behind it.
    fn push_injected(&self, job: Job) {
        let metrics = pool_metrics();
        metrics.submit_fifo.inc();
        self.injector.lock().unwrap().push_back(Queued::new(job));
        metrics.queue_depth.add(1);
        let mut generation = self.generation.lock().unwrap();
        *generation += 1;
        self.wake.notify_all();
    }

    /// Claims the next job: own deque first (most recently pushed), then a
    /// steal sweep over the other workers' deques (oldest first), then the
    /// injector. `slot` is `None` for non-worker threads (they only steal).
    fn find_job(&self, slot: Option<usize>) -> Option<Queued> {
        if let Some(idx) = slot {
            if let Some(job) = self.worker_queues[idx].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        for (idx, queue) in self.worker_queues.iter().enumerate() {
            if Some(idx) == slot {
                continue;
            }
            if let Some(job) = queue.lock().unwrap().pop_front() {
                pool_metrics().steals.inc();
                return Some(job);
            }
        }
        self.injector.lock().unwrap().pop_front()
    }

    fn worker_loop(self: Arc<Self>, slot: usize) {
        WORKER.with(|w| *w.borrow_mut() = Some((Arc::downgrade(&self), slot)));
        loop {
            // Snapshot the generation *before* scanning so a push that the
            // scan raced past is caught by the re-check below.
            let seen = *self.generation.lock().unwrap();
            if let Some(queued) = self.find_job(Some(slot)) {
                let metrics = pool_metrics();
                metrics.queue_depth.sub(1);
                metrics
                    .queue_seconds
                    .observe_duration(queued.submitted.elapsed());
                self.executed[slot].fetch_add(1, Ordering::Relaxed);
                let started = Instant::now();
                (queued.job)();
                metrics.wall_seconds.observe_duration(started.elapsed());
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let mut generation = self.generation.lock().unwrap();
            while *generation == seen && !self.shutdown.load(Ordering::Acquire) {
                generation = self.wake.wait(generation).unwrap();
            }
        }
        WORKER.with(|w| *w.borrow_mut() = None);
    }
}

/// One batch in flight: its unclaimed tasks, its result slots and the
/// completion signal the submitter waits on.
struct BatchState<R> {
    pending: Mutex<VecDeque<(usize, PoolTask<R>)>>,
    results: Mutex<Vec<Option<std::thread::Result<R>>>>,
    finished: Mutex<usize>,
    done: Condvar,
}

impl<R: Send + 'static> BatchState<R> {
    fn new(total: usize) -> Self {
        BatchState {
            pending: Mutex::new(VecDeque::with_capacity(total)),
            results: Mutex::new((0..total).map(|_| None).collect()),
            finished: Mutex::new(0),
            done: Condvar::new(),
        }
    }

    /// Claims and runs one unclaimed task of this batch; false when every
    /// task is already claimed. Panics are captured into the result slot.
    fn run_one(&self) -> bool {
        let Some((index, task)) = self.pending.lock().unwrap().pop_front() else {
            return false;
        };
        let outcome = catch_unwind(AssertUnwindSafe(task));
        self.results.lock().unwrap()[index] = Some(outcome);
        let mut finished = self.finished.lock().unwrap();
        *finished += 1;
        self.done.notify_all();
        true
    }
}

/// A fixed-size pool of long-lived worker threads with an injected queue and
/// per-worker work-stealing deques. See the module docs for the full design.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(VecDeque::new()),
            worker_queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            generation: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            detached_panics: AtomicUsize::new(0),
            executed: (0..threads).map(|_| AtomicUsize::new(0)).collect(),
        });
        let handles = (0..threads)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ec-pool-{slot}"))
                    .spawn(move || shared.worker_loop(slot))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.worker_queues.len()
    }

    /// Submits a detached job. A panicking job is swallowed (the worker
    /// survives) and counted in [`WorkerPool::detached_panics`].
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let shared = Arc::clone(&self.shared);
        self.shared.push(Box::new(move || {
            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                shared.detached_panics.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    /// Submits a detached job that always joins the back of the shared
    /// FIFO injector, even from inside a pool worker. [`WorkerPool::spawn`]
    /// prefers the calling worker's own LIFO deque — right for nested
    /// batch work (locality), wrong for a job that re-queues itself to
    /// *give up* the worker: LIFO would hand the worker straight back and
    /// starve every other waiting job.
    pub fn spawn_fifo(&self, job: impl FnOnce() + Send + 'static) {
        let shared = Arc::clone(&self.shared);
        self.shared.push_injected(Box::new(move || {
            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                shared.detached_panics.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    /// Number of detached jobs that panicked so far.
    pub fn detached_panics(&self) -> usize {
        self.shared.detached_panics.load(Ordering::Relaxed)
    }

    /// Jobs executed per worker since the pool started (fairness probes).
    pub fn executed_per_worker(&self) -> Vec<usize> {
        self.shared
            .executed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Runs `tasks` to completion and returns their results in task order.
    ///
    /// The submitting thread participates: while any task of the batch is
    /// unclaimed it claims and runs tasks itself, and only blocks once every
    /// task is claimed by some thread. A batch may therefore be submitted
    /// from *inside* a pool worker without risk of deadlock — a claimed task
    /// is always actively being executed by somebody.
    ///
    /// If any task panicked, the first panic (in task order) is re-raised
    /// here after the whole batch has finished; the workers themselves
    /// survive.
    pub fn run<R: Send + 'static>(&self, tasks: Vec<PoolTask<R>>) -> Vec<R> {
        let total = tasks.len();
        match total {
            0 => return Vec::new(),
            // A lone task gains nothing from the queues.
            1 => return tasks.into_iter().map(|t| t()).collect(),
            _ => {}
        }
        let state = Arc::new(BatchState::new(total));
        state
            .pending
            .lock()
            .unwrap()
            .extend(tasks.into_iter().enumerate());
        // One claim ticket per task beyond the one the submitter starts on;
        // a ticket that finds the batch fully claimed is a cheap no-op.
        for _ in 1..total {
            let state = Arc::clone(&state);
            self.shared.push(Box::new(move || {
                state.run_one();
            }));
        }
        while state.run_one() {}
        let mut finished = state.finished.lock().unwrap();
        while *finished < total {
            finished = state.done.wait(finished).unwrap();
        }
        drop(finished);
        let collected: Vec<std::thread::Result<R>> = state
            .results
            .lock()
            .unwrap()
            .iter_mut()
            .map(|slot| slot.take().expect("finished batch has all results"))
            .collect();
        let mut out = Vec::with_capacity(total);
        let mut panic_payload = None;
        for result in collected {
            match result {
                Ok(value) => out.push(value),
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panic_payload {
            resume_unwind(payload);
        }
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.generation.lock().unwrap();
            self.shared.wake.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

static SHARED: OnceLock<WorkerPool> = OnceLock::new();

/// The process-wide pool every sharded stage runs on, created on first use
/// with [`crate::Parallelism::AUTO`]'s thread count (`EC_THREADS` or the
/// machine, clamped). The worker count never affects results — every sharded
/// stage is bit-identical for any thread count — so one pool can serve
/// stages configured with different [`crate::Parallelism`] values at once.
pub fn shared() -> &'static WorkerPool {
    SHARED.get_or_init(|| WorkerPool::new(crate::Parallelism::AUTO.threads()))
}

/// Sizes the shared pool to `threads` workers (0 = auto) if it has not been
/// created yet, and returns it. The first caller wins: once any stage has
/// used the pool its size is pinned, so long-lived processes (`ec serve`)
/// should call this during startup, before any consolidation work runs.
pub fn configure_shared(threads: usize) -> &'static WorkerPool {
    SHARED.get_or_init(|| {
        if threads == 0 {
            WorkerPool::new(crate::Parallelism::AUTO.threads())
        } else {
            WorkerPool::new(threads)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::time::Duration;

    fn task<R: Send + 'static>(f: impl FnOnce() -> R + Send + 'static) -> PoolTask<R> {
        Box::new(f)
    }

    #[test]
    fn batch_results_come_back_in_task_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<PoolTask<usize>> = (0..64).map(|i| task(move || i * 2)).collect();
        let results = pool.run(tasks);
        assert_eq!(results, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_batches() {
        let pool = WorkerPool::new(2);
        assert!(pool.run::<usize>(Vec::new()).is_empty());
        assert_eq!(pool.run(vec![task(|| 7usize)]), vec![7]);
    }

    #[test]
    fn work_is_stolen_across_workers() {
        // Slow tasks submitted in one batch must not all run on one thread:
        // the claim tickets land in the injector and every idle worker (plus
        // the submitter) picks one up.
        let pool = WorkerPool::new(4);
        let tasks: Vec<PoolTask<std::thread::ThreadId>> = (0..8)
            .map(|_| {
                task(|| {
                    std::thread::sleep(Duration::from_millis(40));
                    std::thread::current().id()
                })
            })
            .collect();
        let threads: HashSet<_> = pool.run(tasks).into_iter().collect();
        assert!(
            threads.len() >= 2,
            "8 x 40ms tasks on 4 workers + submitter must overlap: {threads:?}"
        );
    }

    #[test]
    fn nested_batches_on_worker_deques_are_stolen() {
        // A batch submitted from inside a worker pushes its tickets onto that
        // worker's own deque; other workers must steal them.
        let pool = Arc::new(WorkerPool::new(4));
        let inner_pool = Arc::clone(&pool);
        let outer: Vec<PoolTask<usize>> = vec![task(move || {
            let tasks: Vec<PoolTask<std::thread::ThreadId>> = (0..8)
                .map(|_| {
                    task(|| {
                        std::thread::sleep(Duration::from_millis(40));
                        std::thread::current().id()
                    })
                })
                .collect();
            let threads: HashSet<_> = inner_pool.run(tasks).into_iter().collect();
            threads.len()
        })];
        let distinct = pool.run(outer)[0];
        assert!(
            distinct >= 2,
            "nested 8 x 40ms tasks must be stolen off the submitting worker's deque"
        );
        let executed = pool.executed_per_worker();
        assert!(
            executed.iter().filter(|&&n| n > 0).count() >= 2,
            "at least two workers must have executed jobs: {executed:?}"
        );
    }

    #[test]
    fn batch_panics_propagate_but_workers_survive() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<PoolTask<usize>> = (0..6)
            .map(|i| {
                task(move || {
                    if i == 3 {
                        panic!("task 3 exploded");
                    }
                    i
                })
            })
            .collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| pool.run(tasks)));
        let payload = outcome.expect_err("the batch panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(message.contains("exploded"), "{message}");
        // The pool still works afterwards.
        let results = pool.run((0..8).map(|i| task(move || i + 1)).collect::<Vec<_>>());
        assert_eq!(results.iter().sum::<usize>(), 36);
    }

    #[test]
    fn detached_panics_are_isolated_and_counted() {
        let pool = WorkerPool::new(1);
        pool.spawn(|| panic!("detached job panicked"));
        // The job runs asynchronously; wait for the swallowed panic to land.
        for _ in 0..400 {
            if pool.detached_panics() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.detached_panics(), 1);
        // A follow-up batch proves the lone worker survived the panic.
        let results = pool.run((0..4).map(|i| task(move || i)).collect::<Vec<_>>());
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deeply_nested_batches_complete_on_a_tiny_pool() {
        // With 1 worker, every level of nesting relies on submitter
        // participation — this deadlocks unless claimed-task progress is
        // guaranteed.
        let pool = Arc::new(WorkerPool::new(1));
        fn nest(pool: &Arc<WorkerPool>, depth: usize) -> usize {
            if depth == 0 {
                return 1;
            }
            let tasks: Vec<PoolTask<usize>> = (0..2)
                .map(|_| {
                    let pool = Arc::clone(pool);
                    task(move || nest(&pool, depth - 1))
                })
                .collect();
            pool.run(tasks).into_iter().sum()
        }
        assert_eq!(nest(&pool, 4), 16);
    }

    #[test]
    fn spawn_fifo_from_a_worker_queues_behind_the_injector() {
        // A job that re-submits itself to give up the worker must land
        // *behind* jobs already waiting in the injector; `spawn` would put
        // it on the worker's own LIFO deque and it would run first again.
        use std::sync::mpsc;
        let pool = Arc::new(WorkerPool::new(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        let (started_tx, started_rx) = mpsc::channel();
        let (go_tx, go_rx) = mpsc::channel::<()>();
        let (done_tx, done_rx) = mpsc::channel();
        {
            let pool = Arc::clone(&pool);
            let order = Arc::clone(&order);
            let done_tx = done_tx.clone();
            pool.clone().spawn(move || {
                started_tx.send(()).unwrap();
                go_rx.recv().unwrap();
                // The injector now holds "waiting"; a fair re-queue of
                // "yielded" must run after it.
                let order2 = Arc::clone(&order);
                pool.spawn_fifo(move || {
                    order2.lock().unwrap().push("yielded");
                    done_tx.send(()).unwrap();
                });
            });
        }
        started_rx.recv().unwrap();
        {
            let order = Arc::clone(&order);
            pool.spawn(move || order.lock().unwrap().push("waiting"));
        }
        go_tx.send(()).unwrap();
        done_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(*order.lock().unwrap(), vec!["waiting", "yielded"]);
    }

    #[test]
    fn shared_pool_is_a_singleton() {
        let a = shared() as *const WorkerPool;
        let b = configure_shared(3) as *const WorkerPool;
        assert_eq!(a, b, "configure after first use returns the same pool");
        assert!(shared().threads() >= 1);
    }
}
