//! Candidate replacements.
//!
//! A replacement `lhs → rhs` (Section 3, Step 1) states that the string `lhs`
//! may be replaced by the string `rhs` at the places it was generated from.
//! Replacements are directional: `lhs → rhs` and `rhs → lhs` are distinct
//! candidates (both are generated when two non-identical values co-occur in a
//! cluster), and each has its own transformation graph.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A candidate replacement `lhs → rhs`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Replacement {
    /// The left-hand side (the string that would be replaced).
    pub lhs: Arc<str>,
    /// The right-hand side (the string it would be replaced with).
    pub rhs: Arc<str>,
}

impl Replacement {
    /// Creates a replacement.
    ///
    /// # Panics
    /// Panics if `lhs == rhs` (a replacement must relate two *different*
    /// strings) or if `rhs` is empty (the transformation graph of an empty
    /// output string has no edges and cannot be grouped).
    pub fn new(lhs: impl AsRef<str>, rhs: impl AsRef<str>) -> Self {
        let lhs = lhs.as_ref();
        let rhs = rhs.as_ref();
        assert!(
            lhs != rhs,
            "a replacement must relate two different strings"
        );
        assert!(
            !rhs.is_empty(),
            "the right-hand side of a replacement must be non-empty"
        );
        Replacement {
            lhs: Arc::from(lhs),
            rhs: Arc::from(rhs),
        }
    }

    /// Fallible constructor: returns `None` when `lhs == rhs` or `rhs` is
    /// empty instead of panicking.
    pub fn try_new(lhs: impl AsRef<str>, rhs: impl AsRef<str>) -> Option<Self> {
        let lhs = lhs.as_ref();
        let rhs = rhs.as_ref();
        if lhs == rhs || rhs.is_empty() {
            None
        } else {
            Some(Replacement {
                lhs: Arc::from(lhs),
                rhs: Arc::from(rhs),
            })
        }
    }

    /// The reverse replacement `rhs → lhs`, when `lhs` is non-empty.
    pub fn reversed(&self) -> Option<Replacement> {
        if self.lhs.is_empty() {
            None
        } else {
            Some(Replacement {
                lhs: Arc::clone(&self.rhs),
                rhs: Arc::clone(&self.lhs),
            })
        }
    }

    /// Left-hand side as `&str`.
    pub fn lhs(&self) -> &str {
        &self.lhs
    }

    /// Right-hand side as `&str`.
    pub fn rhs(&self) -> &str {
        &self.rhs
    }
}

impl fmt::Display for Replacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} -> {:?}", self.lhs, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let r = Replacement::new("Mary Lee", "Lee, Mary");
        assert_eq!(r.lhs(), "Mary Lee");
        assert_eq!(r.rhs(), "Lee, Mary");
        assert_eq!(r.to_string(), "\"Mary Lee\" -> \"Lee, Mary\"");
    }

    #[test]
    fn reversed() {
        let r = Replacement::new("a", "b");
        let rev = r.reversed().unwrap();
        assert_eq!(rev.lhs(), "b");
        assert_eq!(rev.rhs(), "a");
        assert_eq!(rev.reversed().unwrap(), r);
    }

    #[test]
    fn reversed_of_empty_lhs_is_none() {
        let r = Replacement::new("", "b");
        assert!(r.reversed().is_none());
    }

    #[test]
    #[should_panic(expected = "different")]
    fn identical_sides_panic() {
        let _ = Replacement::new("x", "x");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_rhs_panics() {
        let _ = Replacement::new("x", "");
    }

    #[test]
    fn try_new() {
        assert!(Replacement::try_new("x", "x").is_none());
        assert!(Replacement::try_new("x", "").is_none());
        assert!(Replacement::try_new("x", "y").is_some());
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Replacement::new("a", "b");
        let b = Replacement::new("a", "c");
        assert!(a < b);
    }
}
