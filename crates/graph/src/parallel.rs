//! The parallelism knob shared by the pipeline's sharded stages.
//!
//! Candidate generation (`ec-replace`), graph preparation and pivot-path
//! search (`ec-grouping`) all shard their work across scoped worker threads.
//! [`Parallelism`] is the single configuration value they consult: a fixed
//! thread count, or *auto* — resolve from the `EC_THREADS` environment
//! variable when set, otherwise from [`std::thread::available_parallelism`].
//!
//! Every sharded stage is required to produce **bit-identical output** for
//! every `Parallelism` value; the knob only trades wall-clock time for cores.

use serde::{Deserialize, Serialize};

/// Environment variable consulted by [`Parallelism::AUTO`].
pub const EC_THREADS_ENV: &str = "EC_THREADS";

/// Upper clamp for auto-resolved thread counts; explicit settings may exceed
/// it.
const MAX_AUTO_THREADS: usize = 8;

/// Number of worker threads a sharded stage may use.
///
/// The inner value is the configured thread count, with `0` meaning *auto*
/// (resolve at use time from `EC_THREADS` or the machine). Constructed via
/// [`Parallelism::AUTO`], [`Parallelism::SEQUENTIAL`] or
/// [`Parallelism::fixed`]; `From<usize>` maps `0` to auto, which is what the
/// CLI's `--threads 0` default relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Parallelism(usize);

impl Parallelism {
    /// Resolve the thread count at use time: `EC_THREADS` when set and valid,
    /// otherwise the machine's available parallelism (clamped to 8).
    pub const AUTO: Parallelism = Parallelism(0);

    /// Exactly one thread: the sharded stages run their plain sequential
    /// code paths with no worker threads spawned.
    pub const SEQUENTIAL: Parallelism = Parallelism(1);

    /// Exactly `n` threads (`n` is clamped to at least 1).
    pub fn fixed(n: usize) -> Self {
        Parallelism(n.max(1))
    }

    /// The resolved thread count (always at least 1).
    pub fn threads(self) -> usize {
        if self.0 > 0 {
            return self.0;
        }
        if let Ok(v) = std::env::var(EC_THREADS_ENV) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, MAX_AUTO_THREADS)
    }

    /// The number of shards to split `items` units of work into: the resolved
    /// thread count, but never more shards than items and never zero.
    pub fn shards(self, items: usize) -> usize {
        self.threads().min(items).max(1)
    }

    /// True when [`Parallelism::shards`] would be 1 for any workload — i.e.
    /// the stage runs on the calling thread.
    pub fn is_sequential(self) -> bool {
        self.threads() == 1
    }

    /// Runs one task per shard and returns the results in task order.
    ///
    /// Zero or one task runs inline on the calling thread; larger batches run
    /// on the process-wide work-stealing pool ([`crate::pool::shared`])
    /// instead of spawning scoped threads per call. The number of pool
    /// workers is independent of this `Parallelism` value — the knob decides
    /// how many *shards* a stage cuts its work into, and since every sharded
    /// stage is bit-identical for any shard count, sharing one pool across
    /// stages (and server connections) never changes results.
    pub fn run_tasks<R: Send + 'static>(self, tasks: Vec<crate::pool::PoolTask<R>>) -> Vec<R> {
        if tasks.len() <= 1 {
            return tasks.into_iter().map(|t| t()).collect();
        }
        crate::pool::shared().run(tasks)
    }

    /// Runs nested subtasks — a batch submitted from *inside* an already
    /// sharded stage (the intra-search waves of the pivot engine, say) — and
    /// returns the results in task order.
    ///
    /// Unlike [`Parallelism::run_tasks`], which assumes its caller already
    /// cut the work into at most `threads()` shards, this honors the knob
    /// directly: a sequential setting runs every task inline on the calling
    /// thread, anything else puts the batch on the shared pool (safe at any
    /// nesting depth — the submitter participates, so nested batches never
    /// deadlock). Callers must keep task *decomposition* independent of this
    /// value; only the scheduling may differ, so results stay bit-identical.
    pub fn run_nested<R: Send + 'static>(self, tasks: Vec<crate::pool::PoolTask<R>>) -> Vec<R> {
        if tasks.len() <= 1 || self.is_sequential() {
            return tasks.into_iter().map(|t| t()).collect();
        }
        crate::pool::shared().run(tasks)
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::AUTO
    }
}

impl From<usize> for Parallelism {
    /// `0` means auto; anything else is a fixed thread count.
    fn from(n: usize) -> Self {
        Parallelism(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_counts_resolve_to_themselves() {
        assert_eq!(Parallelism::fixed(4).threads(), 4);
        assert_eq!(Parallelism::fixed(0).threads(), 1, "fixed clamps to 1");
        assert_eq!(Parallelism::SEQUENTIAL.threads(), 1);
        assert!(Parallelism::SEQUENTIAL.is_sequential());
    }

    #[test]
    fn shards_never_exceed_items_and_never_vanish() {
        let p = Parallelism::fixed(8);
        assert_eq!(p.shards(3), 3);
        assert_eq!(p.shards(100), 8);
        assert_eq!(p.shards(0), 1);
    }

    #[test]
    fn run_nested_is_identical_inline_and_pooled() {
        let tasks = |n: usize| -> Vec<crate::pool::PoolTask<usize>> {
            (0..n)
                .map(|i| Box::new(move || i * 3) as crate::pool::PoolTask<usize>)
                .collect()
        };
        let expected: Vec<usize> = (0..5).map(|i| i * 3).collect();
        assert_eq!(Parallelism::SEQUENTIAL.run_nested(tasks(5)), expected);
        assert_eq!(Parallelism::fixed(4).run_nested(tasks(5)), expected);
        assert!(Parallelism::fixed(4).run_nested(tasks(0)).is_empty());
    }

    #[test]
    fn auto_resolves_to_at_least_one_thread() {
        assert!(Parallelism::AUTO.threads() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::AUTO);
        assert_eq!(Parallelism::from(0), Parallelism::AUTO);
        assert_eq!(Parallelism::from(3), Parallelism::fixed(3));
    }
}
